/// Numerically stable softmax of a logit slice.
///
/// Returns a probability vector summing to 1 (up to floating-point error).
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// In-place variant of [`softmax`].
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn softmax_in_place(values: &mut [f64]) {
    assert!(!values.is_empty(), "softmax of empty slice");
    let max = values
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, omg_core::float::fmax);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in values.iter_mut() {
        *v /= sum;
    }
}

/// Cross-entropy loss `-ln p[target]`, clamped away from `ln 0`.
///
/// # Panics
///
/// Panics if `target` is out of range for `probs`.
pub fn cross_entropy(probs: &[f64], target: usize) -> f64 {
    assert!(target < probs.len(), "target class out of range");
    -probs[target].max(1e-12).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let p = softmax(&[5.0; 4]);
        for v in &p {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn softmax_empty_panics() {
        softmax(&[]);
    }

    #[test]
    fn cross_entropy_basics() {
        assert!(cross_entropy(&[1.0, 0.0], 0) < 1e-10);
        assert!(cross_entropy(&[0.5, 0.5], 0) > 0.0);
        // Clamped: never infinite.
        assert!(cross_entropy(&[0.0, 1.0], 0).is_finite());
    }

    #[test]
    fn cross_entropy_prefers_confident_correct() {
        let confident = cross_entropy(&[0.9, 0.1], 0);
        let unsure = cross_entropy(&[0.6, 0.4], 0);
        assert!(confident < unsure);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_bad_target() {
        cross_entropy(&[0.5, 0.5], 2);
    }

    #[test]
    fn softmax_keeps_nan_visible_in_any_order() {
        let mut a = [0.0, f64::NAN];
        let mut b = [f64::NAN, 0.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        // The fmax reduction never drops the NaN operand, so a poisoned
        // logit poisons the distribution instead of passing as a
        // confident class — regardless of where in the slice it sits.
        assert!(a.iter().chain(&b).all(|v| v.is_nan()));
    }
}
