//! Uncertainty scores over predicted class distributions.
//!
//! These are the classical active-learning acquisition signals (Settles
//! 2009) that the paper uses as baselines; BAL competes against
//! least-confidence sampling in §5.4. All functions score *uncertainty*:
//! higher means the model is less sure, so batch selection takes the
//! highest-scoring points.

/// Least-confidence uncertainty: `1 - max_c p(c)`.
///
/// The paper's "uncertainty sampling with 'least confident'" baseline
/// ranks by exactly this quantity.
///
/// # Panics
///
/// Panics if `probs` is empty.
pub fn least_confidence(probs: &[f64]) -> f64 {
    assert!(!probs.is_empty(), "empty probability vector");
    1.0 - probs
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, omg_core::float::fmax)
}

/// Margin uncertainty: `1 - (p(best) - p(second best))`.
///
/// # Panics
///
/// Panics if `probs` has fewer than two entries.
pub fn margin(probs: &[f64]) -> f64 {
    assert!(probs.len() >= 2, "margin needs at least two classes");
    let mut best = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    for &p in probs {
        if p > best {
            second = best;
            best = p;
        } else if p > second {
            second = p;
        }
    }
    1.0 - (best - second)
}

/// Shannon entropy in nats.
///
/// # Panics
///
/// Panics if `probs` is empty.
pub fn entropy(probs: &[f64]) -> f64 {
    assert!(!probs.is_empty(), "empty probability vector");
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_confidence_ordering() {
        assert!(least_confidence(&[0.5, 0.5]) > least_confidence(&[0.9, 0.1]));
        assert!((least_confidence(&[1.0, 0.0]) - 0.0).abs() < 1e-12);
        assert!((least_confidence(&[0.25; 4]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn margin_ordering() {
        assert!(margin(&[0.5, 0.5]) > margin(&[0.9, 0.1]));
        assert!((margin(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((margin(&[1.0, 0.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn margin_uses_top_two_of_many() {
        // Best 0.5, second 0.3 -> margin score 0.8.
        assert!((margin(&[0.5, 0.3, 0.2]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        assert!((entropy(&[1.0, 0.0]) - 0.0).abs() < 1e-12);
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - (4.0f64).ln()).abs() < 1e-12);
        // Uniform maximizes entropy.
        assert!(entropy(&[0.7, 0.1, 0.1, 0.1]) < uniform);
    }

    #[test]
    fn all_scores_agree_on_certain_vs_uncertain() {
        let certain = [0.99, 0.005, 0.005];
        let uncertain = [0.34, 0.33, 0.33];
        assert!(least_confidence(&certain) < least_confidence(&uncertain));
        assert!(margin(&certain) < margin(&uncertain));
        assert!(entropy(&certain) < entropy(&uncertain));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn least_confidence_empty_panics() {
        least_confidence(&[]);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn margin_single_class_panics() {
        margin(&[1.0]);
    }

    #[test]
    fn least_confidence_surfaces_nan_in_any_position() {
        // f64::max would drop the NaN (answer 0.1); fmax keeps it
        // visible wherever it appears in the fold.
        assert!(least_confidence(&[0.4, f64::NAN, 0.9]).is_nan());
        assert!(least_confidence(&[f64::NAN, 0.9, 0.4]).is_nan());
    }
}
