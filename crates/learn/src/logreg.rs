use rand::Rng;

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::loss::{cross_entropy, softmax};
use crate::optim::Sgd;

/// Multinomial (softmax) logistic regression trained with mini-batch SGD.
///
/// This is the trainable head used throughout the simulated detector: the
/// model is small enough to retrain in milliseconds, which is what lets the
/// active-learning experiments run hundreds of retraining rounds, yet it is
/// a real gradient-trained model — data selection genuinely changes what it
/// learns, which is the property the paper's experiments depend on.
///
/// # Example
///
/// ```
/// use omg_learn::{Dataset, SoftmaxRegression};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut d = Dataset::new(1);
/// for i in 0..20 {
///     let x = i as f64 / 10.0 - 1.0;
///     d.push(vec![x], usize::from(x > 0.0));
/// }
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = SoftmaxRegression::new(1, 2, 0.5);
/// for _ in 0..200 { model.train_epoch(&d, 8, &mut rng); }
/// assert_eq!(model.predict(&[0.9]), 1);
/// assert_eq!(model.predict(&[-0.9]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    dim: usize,
    classes: usize,
    /// Row-major `classes × dim` weight matrix.
    weights: Vec<f64>,
    bias: Vec<f64>,
    w_opt: Sgd,
    b_opt: Sgd,
}

impl SoftmaxRegression {
    /// Creates a zero-initialized model.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `classes < 2`, or `lr <= 0`.
    pub fn new(dim: usize, classes: usize, lr: f64) -> Self {
        assert!(dim > 0, "need at least one feature");
        assert!(classes >= 2, "need at least two classes");
        Self {
            dim,
            classes,
            weights: vec![0.0; classes * dim],
            bias: vec![0.0; classes],
            w_opt: Sgd::new(classes * dim, lr, 0.0),
            b_opt: Sgd::new(classes, lr, 0.0),
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Replaces the learning rate of both parameter groups (e.g. high for
    /// pretraining, low for fine-tuning).
    pub fn set_lr(&mut self, lr: f64) {
        self.w_opt.set_lr(lr);
        self.b_opt.set_lr(lr);
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Raw logits for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        (0..self.classes)
            .map(|c| dot(&self.weights[c * self.dim..(c + 1) * self.dim], x) + self.bias[c])
            .collect()
    }

    /// Class probabilities for one feature vector.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax(&self.logits(x))
    }

    /// Most probable class.
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Runs one epoch of weighted mini-batch SGD over `data` in a random
    /// order; returns the mean cross-entropy over the epoch.
    ///
    /// Example weights scale each example's gradient — weak labels are fed
    /// in with weights below 1 to reflect their noise.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, if `data` is empty, if feature
    /// dimensions mismatch, or if a label is out of range.
    pub fn train_epoch<R: Rng>(&mut self, data: &Dataset, batch_size: usize, rng: &mut R) -> f64 {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert_eq!(data.dim(), self.dim, "feature dimension mismatch");
        let order = data.shuffled_indices(rng);
        let mut total_loss = 0.0;
        for chunk in order.chunks(batch_size) {
            total_loss += self.train_batch(data, chunk);
        }
        total_loss / data.len() as f64
    }

    /// Runs one gradient step on the given example indices; returns the
    /// summed cross-entropy of the batch (pre-update).
    pub fn train_batch(&mut self, data: &Dataset, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let mut gw = vec![0.0; self.classes * self.dim];
        let mut gb = vec![0.0; self.classes];
        let mut loss = 0.0;
        let scale = 1.0 / indices.len() as f64;
        for &i in indices {
            let x = data.features(i);
            let y = data.label(i);
            assert!(y < self.classes, "label {y} out of range");
            let w = data.weight(i);
            let p = self.predict_proba(x);
            loss += w * cross_entropy(&p, y);
            for c in 0..self.classes {
                let err = w * (p[c] - if c == y { 1.0 } else { 0.0 }) * scale;
                gb[c] += err;
                for (gwv, xv) in gw[c * self.dim..(c + 1) * self.dim].iter_mut().zip(x) {
                    *gwv += err * xv;
                }
            }
        }
        self.w_opt.step(&mut self.weights, &gw);
        self.b_opt.step(&mut self.bias, &gb);
        loss
    }

    /// Mean cross-entropy of the model on `data` (no updates).
    pub fn eval_loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..data.len())
            .map(|i| cross_entropy(&self.predict_proba(data.features(i)), data.label(i)))
            .sum();
        total / data.len() as f64
    }

    /// Classification accuracy on `data`.
    pub fn eval_accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let hits = (0..data.len())
            .filter(|&i| self.predict(data.features(i)) == data.label(i))
            .count();
        hits as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize) -> Dataset {
        // Two Gaussian-ish blobs on a line, trivially separable.
        let mut d = Dataset::new(2);
        for i in 0..n {
            let t = (i % 10) as f64 / 10.0;
            d.push(vec![2.0 + t, 1.0], 1);
            d.push(vec![-2.0 - t, 1.0], 0);
        }
        d
    }

    #[test]
    fn untrained_model_is_uniform() {
        let m = SoftmaxRegression::new(3, 4, 0.1);
        let p = m.predict_proba(&[1.0, -1.0, 0.5]);
        for v in &p {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn training_reduces_loss_and_fits_separable_data() {
        let data = separable(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = SoftmaxRegression::new(2, 2, 0.5);
        let before = m.eval_loss(&data);
        for _ in 0..50 {
            m.train_epoch(&data, 16, &mut rng);
        }
        let after = m.eval_loss(&data);
        assert!(after < before, "loss should fall: {before} -> {after}");
        assert!((m.eval_accuracy(&data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_class_problem() {
        let mut d = Dataset::new(2);
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.05;
            d.push(vec![1.0 + jitter, 0.0], 0);
            d.push(vec![0.0, 1.0 + jitter], 1);
            d.push(vec![-1.0 - jitter, -1.0], 2);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = SoftmaxRegression::new(2, 3, 0.5);
        for _ in 0..100 {
            m.train_epoch(&d, 10, &mut rng);
        }
        assert_eq!(m.predict(&[1.2, 0.0]), 0);
        assert_eq!(m.predict(&[0.0, 1.2]), 1);
        assert_eq!(m.predict(&[-1.2, -1.2]), 2);
    }

    #[test]
    fn zero_weight_examples_do_not_learn() {
        let mut d = Dataset::new(1);
        for _ in 0..20 {
            d.push_weighted(vec![1.0], 1, 0.0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = SoftmaxRegression::new(1, 2, 0.5);
        for _ in 0..20 {
            m.train_epoch(&d, 4, &mut rng);
        }
        // Still uniform: the weighted gradient was always zero.
        let p = m.predict_proba(&[1.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eval_on_empty_dataset_is_zero() {
        let m = SoftmaxRegression::new(1, 2, 0.1);
        let d = Dataset::new(1);
        assert_eq!(m.eval_loss(&d), 0.0);
        assert_eq!(m.eval_accuracy(&d), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let mut d = Dataset::new(1);
        d.push(vec![1.0], 5);
        let mut m = SoftmaxRegression::new(1, 2, 0.1);
        m.train_batch(&d, &[0]);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_rejected() {
        SoftmaxRegression::new(1, 1, 0.1);
    }

    #[test]
    fn predict_resolves_probability_ties_deterministically() {
        let m = SoftmaxRegression::new(3, 4, 0.1);
        // Untrained logits are all zero — a 4-way tie. `max_by` under
        // the total order keeps the last maximal class; pin it so a
        // refactor to an order-sensitive rule fails here.
        assert_eq!(m.predict(&[1.0, -1.0, 0.5]), 3);
        // A poisoned feature poisons every probability identically, and
        // the all-NaN tie resolves the same way instead of panicking.
        let x = [f64::NAN, 0.0, 0.0];
        assert!(m.predict_proba(&x).iter().all(|v| v.is_nan()));
        assert_eq!(m.predict(&x), 3);
    }
}
