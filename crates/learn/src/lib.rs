//! Pure-Rust ML substrate for the `omg` workspace.
//!
//! The paper's experiments continuously *retrain* models (SSD for
//! detection, a ResNet for ECG classification) on newly labeled or weakly
//! labeled data. Mature Rust inference/training stacks for those exact
//! architectures do not exist, so this crate provides genuinely trainable
//! replacements that exercise the same code paths at laptop scale:
//!
//! * [`Matrix`] — minimal dense linear algebra (row-major `f64`).
//! * [`SoftmaxRegression`] — multinomial logistic regression trained with
//!   mini-batch SGD; used as the trainable head of the simulated detector.
//! * [`Mlp`] — a multi-layer perceptron with ReLU hidden layers, softmax
//!   output, and backprop; used as the ECG rhythm classifier.
//! * [`optim`] — SGD (with momentum) and Adam optimizers.
//! * [`uncertainty`] — least-confidence / margin / entropy scores, the
//!   competing data-selection signals of the paper's active-learning
//!   baselines ("uncertainty sampling with least confident", §5.4).
//! * [`Dataset`] — feature/label storage with shuffling, splits, and
//!   mini-batching.
//!
//! # Example: learn XOR with a small MLP
//!
//! ```
//! use omg_learn::{Dataset, Mlp, MlpConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut data = Dataset::new(2);
//! for (x, y, label) in [(0., 0., 0), (0., 1., 1), (1., 0., 1), (1., 1., 0)] {
//!     data.push(vec![x, y], label);
//! }
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut mlp = Mlp::new(MlpConfig { input_dim: 2, hidden: vec![8], classes: 2, lr: 0.5 }, &mut rng);
//! for _ in 0..2000 { mlp.train_epoch(&data, 4, &mut rng); }
//! assert_eq!(mlp.predict(&[0.0, 1.0]), 1);
//! assert_eq!(mlp.predict(&[1.0, 1.0]), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod linalg;
mod logreg;
mod loss;
mod mlp;
pub mod optim;
pub mod uncertainty;

pub use dataset::Dataset;
pub use linalg::Matrix;
pub use logreg::SoftmaxRegression;
pub use loss::{cross_entropy, softmax, softmax_in_place};
pub use mlp::{Mlp, MlpConfig};
