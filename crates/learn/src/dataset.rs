use rand::seq::SliceRandom;
use rand::Rng;

/// An in-memory labeled dataset: dense feature vectors plus class labels
/// and optional per-example weights (used to down-weight noisy weak
/// labels).
///
/// # Example
///
/// ```
/// use omg_learn::Dataset;
///
/// let mut d = Dataset::new(2);
/// d.push(vec![0.0, 1.0], 1);
/// d.push_weighted(vec![1.0, 0.0], 0, 0.5);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.label(0), 1);
/// assert_eq!(d.weight(1), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    weights: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset for feature vectors of length `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self {
            dim,
            features: Vec::new(),
            labels: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Appends an example with weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.dim()`.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        self.push_weighted(features, label, 1.0);
    }

    /// Appends an example with an explicit weight.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.dim()` or the weight is negative
    /// or non-finite.
    pub fn push_weighted(&mut self, features: Vec<f64>, label: usize, weight: f64) {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative"
        );
        self.features.push(features);
        self.labels.push(label);
        self.weights.push(weight);
    }

    /// Appends every example of `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.dim, other.dim, "feature dimension mismatch");
        self.features.extend(other.features.iter().cloned());
        self.labels.extend_from_slice(&other.labels);
        self.weights.extend_from_slice(&other.weights);
    }

    /// Features of example `i`.
    pub fn features(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of example `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Weight of example `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Largest label value plus one (0 for an empty dataset) — a lower
    /// bound on the number of classes.
    pub fn num_classes_seen(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Returns a random permutation of example indices.
    pub fn shuffled_indices<R: Rng>(&self, rng: &mut R) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx
    }

    /// Splits into two datasets; the first receives `fraction` of the
    /// examples (in current order; shuffle first for a random split).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let cut = (self.len() as f64 * fraction).round() as usize;
        let mut a = Dataset::new(self.dim);
        let mut b = Dataset::new(self.dim);
        for i in 0..self.len() {
            let target = if i < cut { &mut a } else { &mut b };
            target.push_weighted(self.features[i].clone(), self.labels[i], self.weights[i]);
        }
        (a, b)
    }

    /// Returns a dataset containing only the given example indices.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.dim);
        for &i in indices {
            out.push_weighted(self.features[i].clone(), self.labels[i], self.weights[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(vec![i as f64, (10 - i) as f64], i % 3);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = sample();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.features(3), &[3.0, 7.0]);
        assert_eq!(d.label(4), 1);
        assert_eq!(d.weight(0), 1.0);
        assert_eq!(d.num_classes_seen(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dim_panics() {
        Dataset::new(3).push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_panics() {
        Dataset::new(1).push_weighted(vec![0.0], 0, -1.0);
    }

    #[test]
    fn split_fractions() {
        let d = sample();
        let (a, b) = d.split(0.7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        // First element of b is original index 7.
        assert_eq!(b.features(0), &[7.0, 3.0]);
    }

    #[test]
    fn split_extremes() {
        let d = sample();
        let (a, b) = d.split(0.0);
        assert!(a.is_empty());
        assert_eq!(b.len(), 10);
        let (a, b) = d.split(1.0);
        assert_eq!(a.len(), 10);
        assert!(b.is_empty());
    }

    #[test]
    fn subset_picks_rows() {
        let d = sample();
        let s = d.subset(&[9, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.features(0), &[9.0, 1.0]);
        assert_eq!(s.features(1), &[0.0, 10.0]);
    }

    #[test]
    fn shuffled_indices_is_permutation() {
        let d = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let mut idx = d.shuffled_indices(&mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn empty_dataset_classes() {
        assert_eq!(Dataset::new(1).num_classes_seen(), 0);
    }
}
