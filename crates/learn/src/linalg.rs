/// A dense row-major matrix of `f64`.
///
/// Deliberately minimal: the workspace's models are small (tens of features,
/// a few classes), so a naive implementation is both fast enough and easy
/// to audit.
///
/// # Example
///
/// ```
/// use omg_learn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0);
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        // PANIC: in bounds by the assert; data holds rows * cols.
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows);
        // PANIC: r + 1 <= rows, so the slice stays inside data.
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of all elements.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_rejects_bad_length() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.get(0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.add_scaled(&b, 3.0);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "unequal")]
    fn dot_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
