use rand::Rng;

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::loss::{cross_entropy, softmax};
use crate::optim::Sgd;

/// Configuration for a multi-layer perceptron.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths (may be empty for a linear model).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// SGD learning rate.
    pub lr: f64,
}

/// One dense layer: `out = W x + b` with a ReLU applied on hidden layers.
#[derive(Debug, Clone)]
struct Layer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    w: Vec<f64>,
    b: Vec<f64>,
    w_opt: Sgd,
    b_opt: Sgd,
}

impl Layer {
    fn new<R: Rng>(in_dim: usize, out_dim: usize, lr: f64, rng: &mut R) -> Self {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            w_opt: Sgd::new(in_dim * out_dim, lr, 0.9),
            b_opt: Sgd::new(out_dim, lr, 0.9),
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.out_dim)
            .map(|o| dot(&self.w[o * self.in_dim..(o + 1) * self.in_dim], x) + self.b[o])
            .collect()
    }
}

/// A feed-forward network with ReLU hidden layers and a softmax output,
/// trained with momentum SGD and cross-entropy loss.
///
/// Plays the role of the paper's ECG classifier (Rajpurkar et al. 2019):
/// a model that genuinely improves with more labeled or weakly labeled
/// windows, so active learning and weak supervision have a real objective.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates a randomly initialized network.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`, `classes < 2`, any hidden width is zero,
    /// or `lr <= 0`.
    pub fn new<R: Rng>(config: MlpConfig, rng: &mut R) -> Self {
        assert!(config.input_dim > 0, "need at least one input feature");
        assert!(config.classes >= 2, "need at least two classes");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let mut layers = Vec::new();
        let mut prev = config.input_dim;
        for &h in &config.hidden {
            layers.push(Layer::new(prev, h, config.lr, rng));
            prev = h;
        }
        layers.push(Layer::new(prev, config.classes, config.lr, rng));
        Self { config, layers }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Replaces the learning rate of every layer (e.g. to fine-tune at a
    /// lower rate than pretraining).
    pub fn set_lr(&mut self, lr: f64) {
        for layer in &mut self.layers {
            layer.w_opt.set_lr(lr);
            layer.b_opt.set_lr(lr);
        }
    }

    /// Forward pass returning every layer's pre-activation and activation;
    /// the final activation is the softmax probability vector.
    fn forward_full(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut cur = x.to_vec();
        let n = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(&cur);
            if li + 1 < n {
                for v in z.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            activations.push(z.clone());
            cur = z;
        }
        let probs = softmax(&cur);
        (activations, probs)
    }

    /// Class probabilities for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != config.input_dim`.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.config.input_dim, "feature dimension mismatch");
        self.forward_full(x).1
    }

    /// Most probable class.
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// One epoch of weighted mini-batch SGD; returns mean cross-entropy.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, `data` is empty, dimensions mismatch,
    /// or a label is out of range.
    pub fn train_epoch<R: Rng>(&mut self, data: &Dataset, batch_size: usize, rng: &mut R) -> f64 {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert_eq!(
            data.dim(),
            self.config.input_dim,
            "feature dimension mismatch"
        );
        let order = data.shuffled_indices(rng);
        let mut total = 0.0;
        for chunk in order.chunks(batch_size) {
            total += self.train_batch(data, chunk);
        }
        total / data.len() as f64
    }

    /// One gradient step on the given indices; returns summed loss
    /// (pre-update).
    pub fn train_batch(&mut self, data: &Dataset, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let n_layers = self.layers.len();
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut loss = 0.0;
        let scale = 1.0 / indices.len() as f64;
        for &i in indices {
            let x = data.features(i);
            let y = data.label(i);
            assert!(y < self.config.classes, "label {y} out of range");
            let weight = data.weight(i);
            let (acts, probs) = self.forward_full(x);
            loss += weight * cross_entropy(&probs, y);
            // Output delta: softmax + cross-entropy.
            let mut delta: Vec<f64> = probs
                .iter()
                .enumerate()
                .map(|(c, &p)| weight * scale * (p - if c == y { 1.0 } else { 0.0 }))
                .collect();
            // Backpropagate through layers in reverse.
            for li in (0..n_layers).rev() {
                let input = &acts[li];
                let layer = &self.layers[li];
                for (o, &dv) in delta.iter().enumerate().take(layer.out_dim) {
                    gb[li][o] += dv;
                    let row = &mut gw[li][o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (g, xv) in row.iter_mut().zip(input) {
                        *g += dv * xv;
                    }
                }
                if li > 0 {
                    // delta for previous layer, gated by its ReLU.
                    let mut prev = vec![0.0; layer.in_dim];
                    for (o, &dv) in delta.iter().enumerate().take(layer.out_dim) {
                        let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                        for (p, wv) in prev.iter_mut().zip(row) {
                            *p += dv * wv;
                        }
                    }
                    for (p, a) in prev.iter_mut().zip(&acts[li]) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    delta = prev;
                }
            }
        }
        for (li, layer) in self.layers.iter_mut().enumerate() {
            layer.w_opt.step(&mut layer.w, &gw[li]);
            layer.b_opt.step(&mut layer.b, &gb[li]);
        }
        loss
    }

    /// Mean cross-entropy on `data` (no updates).
    pub fn eval_loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        (0..data.len())
            .map(|i| cross_entropy(&self.predict_proba(data.features(i)), data.label(i)))
            .sum::<f64>()
            / data.len() as f64
    }

    /// Classification accuracy on `data`.
    pub fn eval_accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let hits = (0..data.len())
            .filter(|&i| self.predict(data.features(i)) == data.label(i))
            .count();
        hits as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..10 {
            d.push(vec![0.0, 0.0], 0);
            d.push(vec![0.0, 1.0], 1);
            d.push(vec![1.0, 0.0], 1);
            d.push(vec![1.0, 1.0], 0);
        }
        d
    }

    #[test]
    fn probabilities_form_a_simplex() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(
            MlpConfig {
                input_dim: 3,
                hidden: vec![5],
                classes: 4,
                lr: 0.1,
            },
            &mut rng,
        );
        let p = mlp.predict_proba(&[0.5, -1.0, 2.0]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn learns_xor() {
        let data = xor_data();
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![8],
                classes: 2,
                lr: 0.1,
            },
            &mut rng,
        );
        for _ in 0..500 {
            mlp.train_epoch(&data, 8, &mut rng);
        }
        assert!(
            (mlp.eval_accuracy(&data) - 1.0).abs() < 1e-9,
            "xor not learned"
        );
    }

    #[test]
    fn loss_decreases_during_training() {
        let data = xor_data();
        let mut rng = StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![8],
                classes: 2,
                lr: 0.1,
            },
            &mut rng,
        );
        let before = mlp.eval_loss(&data);
        for _ in 0..100 {
            mlp.train_epoch(&data, 8, &mut rng);
        }
        assert!(mlp.eval_loss(&data) < before);
    }

    #[test]
    fn linear_mlp_without_hidden_layers_works() {
        let mut d = Dataset::new(1);
        for i in 0..40 {
            let x = i as f64 / 20.0 - 1.0;
            d.push(vec![x], usize::from(x > 0.0));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(
            MlpConfig {
                input_dim: 1,
                hidden: vec![],
                classes: 2,
                lr: 0.5,
            },
            &mut rng,
        );
        for _ in 0..200 {
            mlp.train_epoch(&d, 8, &mut rng);
        }
        assert!(mlp.eval_accuracy(&d) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = xor_data();
        let build = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut mlp = Mlp::new(
                MlpConfig {
                    input_dim: 2,
                    hidden: vec![4],
                    classes: 2,
                    lr: 0.1,
                },
                &mut rng,
            );
            for _ in 0..20 {
                mlp.train_epoch(&data, 8, &mut rng);
            }
            mlp.predict_proba(&[1.0, 0.0])
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![],
                classes: 2,
                lr: 0.1,
            },
            &mut rng,
        );
        mlp.predict_proba(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![],
                classes: 1,
                lr: 0.1,
            },
            &mut rng,
        );
    }

    #[test]
    fn predict_stays_total_when_probabilities_poison() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(
            MlpConfig {
                input_dim: 3,
                hidden: vec![],
                classes: 3,
                lr: 0.1,
            },
            &mut rng,
        );
        let x = [f64::NAN, 0.0, 1.0];
        // A NaN feature must poison the whole distribution (fmax in the
        // softmax never drops it) and argmax must stay total: same
        // class on every call, no panic.
        assert!(m.predict_proba(&x).iter().all(|v| v.is_nan()));
        assert_eq!(m.predict(&x), m.predict(&x));
    }
}
