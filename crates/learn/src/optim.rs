//! First-order optimizers over flat parameter slices.
//!
//! Each optimizer owns its state (momentum / moment estimates) for a single
//! parameter tensor; models hold one optimizer per tensor.

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer for a parameter tensor of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(len: usize, lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: vec![0.0; len],
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Replaces the learning rate (e.g. for a decay schedule).
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite());
        self.lr = lr;
    }

    /// Applies one update: `params -= lr * (momentum-averaged grads)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the construction length.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "parameter length changed"
        );
        assert_eq!(params.len(), grads.len(), "grad length mismatch");
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] + grads[i];
            params[i] -= self.lr * self.velocity[i];
        }
    }
}

/// Adam (Kingma & Ba, 2015) with the standard bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an Adam optimizer with the customary defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(len: usize, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Applies one Adam update.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the construction length.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length changed");
        assert_eq!(params.len(), grads.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 with gradient 2(x - 3).
    fn quad_grad(x: f64) -> f64 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(1, 0.1, 0.0);
        let mut x = [0.0];
        for _ in 0..100 {
            let g = [quad_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-4, "got {}", x[0]);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f64, steps: usize| {
            let mut opt = Sgd::new(1, 0.01, momentum);
            let mut x = [0.0];
            for _ in 0..steps {
                let g = [quad_grad(x[0])];
                opt.step(&mut x, &g);
            }
            (x[0] - 3.0).abs()
        };
        assert!(run(0.9, 60) < run(0.0, 60));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(1, 0.3);
        let mut x = [0.0];
        for _ in 0..300 {
            let g = [quad_grad(x[0])];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "got {}", x[0]);
    }

    #[test]
    fn zero_grad_is_a_fixed_point_for_sgd() {
        let mut opt = Sgd::new(2, 0.1, 0.0);
        let mut x = [1.0, -2.0];
        opt.step(&mut x, &[0.0, 0.0]);
        assert_eq!(x, [1.0, -2.0]);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut opt = Sgd::new(1, 0.1, 0.0);
        opt.set_lr(0.2);
        assert_eq!(opt.lr(), 0.2);
        let mut x = [0.0];
        opt.step(&mut x, &[1.0]);
        assert!((x[0] + 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_zero_lr() {
        Sgd::new(1, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "grad length")]
    fn sgd_rejects_mismatched_grads() {
        Sgd::new(2, 0.1, 0.0).step(&mut [0.0, 0.0], &[1.0]);
    }
}
