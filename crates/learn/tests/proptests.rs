//! Property-based tests for the ML substrate.

use omg_learn::uncertainty::{entropy, least_confidence, margin};
use omg_learn::{softmax, Dataset, SoftmaxRegression};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_logits() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-20.0f64..20.0, 2..8)
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(logits in arb_logits()) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_preserves_argmax(logits in arb_logits()) {
        let p = softmax(&logits);
        let arg = |xs: &[f64]| {
            xs.iter().enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i).unwrap()
        };
        prop_assert_eq!(arg(&logits), arg(&p));
    }

    #[test]
    fn uncertainty_scores_are_bounded(logits in arb_logits()) {
        let p = softmax(&logits);
        let lc = least_confidence(&p);
        prop_assert!((0.0..=1.0).contains(&lc));
        let m = margin(&p);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
        let h = entropy(&p);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (p.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn logreg_probabilities_always_valid(
        features in proptest::collection::vec(-10.0f64..10.0, 4),
        steps in 0usize..30,
    ) {
        let mut d = Dataset::new(4);
        d.push(vec![1.0, 0.0, 0.0, 0.0], 0);
        d.push(vec![0.0, 1.0, 0.0, 0.0], 1);
        d.push(vec![0.0, 0.0, 1.0, 0.0], 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = SoftmaxRegression::new(4, 3, 0.5);
        for _ in 0..steps {
            m.train_epoch(&d, 2, &mut rng);
        }
        let p = m.predict_proba(&features);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_on_separable_data_never_diverges(seed in 0u64..50) {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            let t = i as f64 * 0.1;
            d.push(vec![1.0 + t, 0.5], 1);
            d.push(vec![-1.0 - t, 0.5], 0);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SoftmaxRegression::new(2, 2, 0.3);
        let mut last = f64::INFINITY;
        for _ in 0..30 {
            last = m.train_epoch(&d, 8, &mut rng);
        }
        prop_assert!(last.is_finite());
        prop_assert!(m.eval_accuracy(&d) >= 0.9);
    }
}
