//! Order statistics and small-sample summaries used by the experiment
//! harness: percentile ranks (Figure 3), means ± standard errors
//! (Figures 4/5/9 report multi-trial averages), proportions (Table 3),
//! and bootstrap confidence intervals.

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (`n - 1` denominator); `0.0` for fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean (`s / sqrt(n)`); `0.0` for fewer than two
/// samples.
pub fn std_err(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        0.0
    } else {
        std_dev(xs) / (xs.len() as f64).sqrt()
    }
}

/// The `q`-th quantile (`q` in `[0, 1]`) with linear interpolation between
/// order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(omg_core::float::total_order);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The percentile rank of `x` within `population`: the percentage of
/// population values that are `<= x`, in `[0, 100]`.
///
/// This is the statistic of the paper's Figure 3 ("the percentile of
/// confidence among all the boxes"). Returns `0.0` for an empty
/// population.
pub fn percentile_rank(population: &[f64], x: f64) -> f64 {
    if population.is_empty() {
        return 0.0;
    }
    let below = population.iter().filter(|&&v| v <= x).count();
    100.0 * below as f64 / population.len() as f64
}

/// A proportion with its numerator and denominator retained, used for
/// precision reporting (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub hits: usize,
    /// Number of trials.
    pub total: usize,
}

impl Proportion {
    /// The proportion as a fraction in `[0, 1]`; `0.0` when `total == 0`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// The proportion as a percentage.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

/// Counts how many items satisfy `pred` and returns the proportion.
pub fn proportion<T>(items: &[T], pred: impl Fn(&T) -> bool) -> Proportion {
    Proportion {
        hits: items.iter().filter(|x| pred(x)).count(),
        total: items.len(),
    }
}

/// Percentile bootstrap confidence interval for the mean.
///
/// Resamples `xs` with replacement `resamples` times using a deterministic
/// xorshift generator seeded by `seed`, and returns the
/// `(lo_quantile, hi_quantile)` of the resampled means.
///
/// # Panics
///
/// Panics if `xs` is empty or the quantile bounds are invalid.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    lo_q: f64,
    hi_q: f64,
    seed: u64,
) -> (f64, f64) {
    assert!(!xs.is_empty(), "bootstrap of empty slice");
    assert!(lo_q < hi_q, "lower quantile must be below upper quantile");
    // A tiny xorshift64* generator keeps this module dependency-free.
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..xs.len() {
            let idx = (next() % xs.len() as u64) as usize;
            sum += xs[idx];
        }
        means.push(sum / xs.len() as f64);
    }
    (quantile(&means, lo_q), quantile(&means, hi_q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stderr() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_err(&xs) - (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(std_err(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // Order independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(quantile(&shuffled, 0.5), quantile(&xs, 0.5));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn percentile_rank_basic() {
        let pop: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile_rank(&pop, 94.0) - 94.0).abs() < 1e-12);
        assert_eq!(percentile_rank(&pop, 0.0), 0.0);
        assert_eq!(percentile_rank(&pop, 1000.0), 100.0);
        assert_eq!(percentile_rank(&[], 5.0), 0.0);
    }

    #[test]
    fn proportion_counts() {
        let xs = [1, 2, 3, 4, 5, 6];
        let p = proportion(&xs, |&x| x % 2 == 0);
        assert_eq!(p.hits, 3);
        assert_eq!(p.total, 6);
        assert!((p.fraction() - 0.5).abs() < 1e-12);
        assert!((p.percent() - 50.0).abs() < 1e-12);
        let empty: [i32; 0] = [];
        assert_eq!(proportion(&empty, |_| true).fraction(), 0.0);
    }

    #[test]
    fn bootstrap_ci_contains_true_mean_for_tight_data() {
        let xs = vec![10.0; 50];
        let (lo, hi) = bootstrap_mean_ci(&xs, 200, 0.025, 0.975, 42);
        assert_eq!(lo, 10.0);
        assert_eq!(hi, 10.0);
    }

    #[test]
    fn bootstrap_ci_is_ordered_and_reasonable() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let (lo, hi) = bootstrap_mean_ci(&xs, 500, 0.025, 0.975, 7);
        assert!(lo <= hi);
        let m = mean(&xs);
        assert!(lo <= m && m <= hi, "CI [{lo}, {hi}] should contain {m}");
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&xs, 100, 0.1, 0.9, 5);
        let b = bootstrap_mean_ci(&xs, 100, 0.1, 0.9, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_is_deterministic_with_nan_present() {
        let xs = [2.0, f64::NAN, 1.0];
        let ys = [f64::NAN, 1.0, 2.0];
        // NaN sorts above every real under the total order: lower
        // quantiles stay NaN-free and identical for any input order,
        // and the poison surfaces only at the top.
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&ys, 0.5), 2.0);
        assert!(quantile(&ys, 1.0).is_nan());
    }
}
