//! Evaluation substrate for the `omg` workspace.
//!
//! Implements the metrics the paper reports:
//!
//! * **mAP** for object detection (Figures 4 and 9, Table 4) via
//!   [`DetectionEvaluator`]: greedy confidence-ordered matching at an IoU
//!   threshold and all-point interpolated average precision, the convention
//!   used by MS-COCO-style evaluation at a fixed IoU.
//! * **Accuracy / confusion matrices** for classification (Figure 5,
//!   Table 4) via [`ConfusionMatrix`] and [`accuracy`].
//! * **Order statistics** ([`stats`]) — percentile ranks for the
//!   high-confidence-error analysis (Figure 3), means and standard errors
//!   for multi-trial experiment reporting, and bootstrap confidence
//!   intervals.
//! * **Precision of assertions** (Table 3) is a straight proportion and is
//!   computed with [`stats::proportion`].
//! * A fixed-width [`table::Table`] renderer shared by every experiment
//!   binary in `omg-bench`.
//!
//! # Example: two-frame mAP
//!
//! ```
//! use omg_eval::{DetectionEvaluator, GtBox, ScoredBox};
//! use omg_geom::BBox2D;
//!
//! let mut ev = DetectionEvaluator::new(0.5);
//! let gt = GtBox { bbox: BBox2D::new(0.0, 0.0, 10.0, 10.0)?, class: 0 };
//! let hit = ScoredBox { bbox: BBox2D::new(1.0, 1.0, 11.0, 11.0)?, class: 0, score: 0.9 };
//! ev.add_frame(&[hit], &[gt.clone()]);
//! ev.add_frame(&[], &[gt]); // a miss
//! assert!((ev.map() - 0.5).abs() < 1e-9);
//! # Ok::<(), omg_geom::GeomError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ap;
mod classification;
mod detection;
pub mod stats;
pub mod table;

pub use ap::{average_precision, PrPoint};
pub use classification::{accuracy, ConfusionMatrix};
pub use detection::{match_frame, DetectionEvaluator, FrameMatch, GtBox, MatchOutcome, ScoredBox};
