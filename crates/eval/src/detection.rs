use std::collections::BTreeMap;

use omg_geom::BBox2D;

use crate::ap::average_precision;

/// A detector output: a box, a class label, and a confidence score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredBox {
    /// Detected bounding box.
    pub bbox: BBox2D,
    /// Predicted class index.
    pub class: usize,
    /// Confidence in `[0, 1]`.
    pub score: f64,
}

/// A ground-truth annotation: a box and its class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Annotated bounding box.
    pub bbox: BBox2D,
    /// True class index.
    pub class: usize,
}

/// The outcome of matching one detection against a frame's ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// Matched a previously unmatched ground-truth box of the same class.
    TruePositive {
        /// Index into the frame's ground-truth slice.
        gt_index: usize,
    },
    /// No available same-class ground truth overlapped enough.
    FalsePositive,
}

impl MatchOutcome {
    /// Whether this outcome is a true positive.
    pub fn is_tp(&self) -> bool {
        matches!(self, MatchOutcome::TruePositive { .. })
    }
}

/// Per-frame matching result: one outcome per detection (in input order)
/// plus the indices of unmatched (missed) ground-truth boxes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMatch {
    /// Outcome for each detection, aligned with the input slice.
    pub outcomes: Vec<MatchOutcome>,
    /// Ground-truth indices that no detection matched (false negatives).
    pub missed_gt: Vec<usize>,
}

/// Greedy confidence-ordered matching of detections to ground truth.
///
/// Detections are visited in descending score order; each claims the
/// unmatched same-class ground-truth box with the highest IoU, provided
/// that IoU is at least `iou_threshold`. This is the standard matching rule
/// of PASCAL-VOC/COCO-style evaluation.
pub fn match_frame(dets: &[ScoredBox], gts: &[GtBox], iou_threshold: f64) -> FrameMatch {
    let mut order: Vec<usize> = (0..dets.len()).collect();
    order.sort_by(|&a, &b| dets[b].score.total_cmp(&dets[a].score).then(a.cmp(&b)));
    let mut gt_taken = vec![false; gts.len()];
    let mut outcomes = vec![MatchOutcome::FalsePositive; dets.len()];
    for &di in &order {
        let det = &dets[di];
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            if gt_taken[gi] || gt.class != det.class {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou >= iou_threshold && best.map_or(true, |(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        if let Some((gi, _)) = best {
            gt_taken[gi] = true;
            outcomes[di] = MatchOutcome::TruePositive { gt_index: gi };
        }
    }
    let missed_gt = (0..gts.len()).filter(|&g| !gt_taken[g]).collect();
    FrameMatch {
        outcomes,
        missed_gt,
    }
}

/// Accumulates detections and ground truth over many frames and computes
/// per-class average precision and mAP.
///
/// Classes that never appear in the ground truth are excluded from the mean
/// (detections on such classes still count as false positives of that class
/// but contribute no AP term), matching common practice.
#[derive(Debug, Clone)]
pub struct DetectionEvaluator {
    iou_threshold: f64,
    /// Per class: (score, is_tp) for every detection seen.
    records: BTreeMap<usize, Vec<(f64, bool)>>,
    /// Per class: number of ground-truth boxes seen.
    gt_counts: BTreeMap<usize, usize>,
    frames: usize,
}

impl DetectionEvaluator {
    /// Creates an evaluator matching at the given IoU threshold
    /// (the paper's detection experiments use `0.5`).
    ///
    /// # Panics
    ///
    /// Panics if `iou_threshold` is not in `(0, 1]`.
    pub fn new(iou_threshold: f64) -> Self {
        assert!(
            iou_threshold > 0.0 && iou_threshold <= 1.0,
            "iou threshold must be in (0, 1], got {iou_threshold}"
        );
        Self {
            iou_threshold,
            records: BTreeMap::new(),
            gt_counts: BTreeMap::new(),
            frames: 0,
        }
    }

    /// Adds one frame's detections and ground truth.
    pub fn add_frame(&mut self, dets: &[ScoredBox], gts: &[GtBox]) {
        let m = match_frame(dets, gts, self.iou_threshold);
        for (det, outcome) in dets.iter().zip(&m.outcomes) {
            self.records
                .entry(det.class)
                .or_default()
                .push((det.score, outcome.is_tp()));
        }
        for gt in gts {
            *self.gt_counts.entry(gt.class).or_insert(0) += 1;
        }
        self.frames += 1;
    }

    /// Number of frames accumulated so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Average precision for each class with at least one ground-truth box.
    pub fn ap_per_class(&self) -> BTreeMap<usize, f64> {
        self.gt_counts
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(&class, &n_gt)| {
                let recs = self.records.get(&class).map(Vec::as_slice).unwrap_or(&[]);
                (class, average_precision(recs, n_gt))
            })
            .collect()
    }

    /// Mean average precision over classes present in the ground truth,
    /// in `[0, 1]`. Returns `0.0` when no ground truth has been added.
    pub fn map(&self) -> f64 {
        let aps = self.ap_per_class();
        if aps.is_empty() {
            0.0
        } else {
            aps.values().sum::<f64>() / aps.len() as f64
        }
    }

    /// mAP expressed in percent (the unit in the paper's Figures 4/9 and
    /// Table 4).
    pub fn map_percent(&self) -> f64 {
        self.map() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, s: f64) -> BBox2D {
        BBox2D::new(x, y, x + s, y + s).unwrap()
    }

    fn det(x: f64, y: f64, s: f64, class: usize, score: f64) -> ScoredBox {
        ScoredBox {
            bbox: bb(x, y, s),
            class,
            score,
        }
    }

    fn gt(x: f64, y: f64, s: f64, class: usize) -> GtBox {
        GtBox {
            bbox: bb(x, y, s),
            class,
        }
    }

    #[test]
    fn perfect_detection_is_tp() {
        let m = match_frame(
            &[det(0.0, 0.0, 10.0, 0, 0.9)],
            &[gt(0.0, 0.0, 10.0, 0)],
            0.5,
        );
        assert_eq!(m.outcomes, vec![MatchOutcome::TruePositive { gt_index: 0 }]);
        assert!(m.missed_gt.is_empty());
    }

    #[test]
    fn wrong_class_is_fp_and_gt_missed() {
        let m = match_frame(
            &[det(0.0, 0.0, 10.0, 1, 0.9)],
            &[gt(0.0, 0.0, 10.0, 0)],
            0.5,
        );
        assert_eq!(m.outcomes, vec![MatchOutcome::FalsePositive]);
        assert_eq!(m.missed_gt, vec![0]);
    }

    #[test]
    fn each_gt_matched_at_most_once() {
        // Two detections on the same GT: only the higher-scoring one is TP.
        let dets = [det(0.0, 0.0, 10.0, 0, 0.8), det(0.5, 0.5, 10.0, 0, 0.9)];
        let m = match_frame(&dets, &[gt(0.0, 0.0, 10.0, 0)], 0.5);
        assert!(!m.outcomes[0].is_tp());
        assert!(m.outcomes[1].is_tp());
    }

    #[test]
    fn higher_score_claims_higher_iou_gt() {
        let dets = [det(0.0, 0.0, 10.0, 0, 0.9)];
        let gts = [gt(0.0, 0.0, 10.0, 0), gt(3.0, 3.0, 10.0, 0)];
        let m = match_frame(&dets, &gts, 0.3);
        assert_eq!(m.outcomes[0], MatchOutcome::TruePositive { gt_index: 0 });
        assert_eq!(m.missed_gt, vec![1]);
    }

    #[test]
    fn below_threshold_is_fp() {
        // IoU ≈ 0.143 < 0.5.
        let m = match_frame(
            &[det(5.0, 5.0, 10.0, 0, 0.9)],
            &[gt(0.0, 0.0, 10.0, 0)],
            0.5,
        );
        assert_eq!(m.outcomes, vec![MatchOutcome::FalsePositive]);
    }

    #[test]
    fn evaluator_perfect_map_is_one() {
        let mut ev = DetectionEvaluator::new(0.5);
        for i in 0..5 {
            let x = i as f64 * 20.0;
            ev.add_frame(&[det(x, 0.0, 10.0, 0, 0.9)], &[gt(x, 0.0, 10.0, 0)]);
        }
        assert!((ev.map() - 1.0).abs() < 1e-12);
        assert_eq!(ev.frames(), 5);
    }

    #[test]
    fn evaluator_half_recall() {
        let mut ev = DetectionEvaluator::new(0.5);
        ev.add_frame(&[det(0.0, 0.0, 10.0, 0, 0.9)], &[gt(0.0, 0.0, 10.0, 0)]);
        ev.add_frame(&[], &[gt(0.0, 0.0, 10.0, 0)]);
        assert!((ev.map() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_averages_over_classes() {
        let mut ev = DetectionEvaluator::new(0.5);
        // Class 0 perfect, class 1 completely missed.
        ev.add_frame(
            &[det(0.0, 0.0, 10.0, 0, 0.9)],
            &[gt(0.0, 0.0, 10.0, 0), gt(50.0, 50.0, 10.0, 1)],
        );
        assert!((ev.map() - 0.5).abs() < 1e-12);
        let aps = ev.ap_per_class();
        assert!((aps[&0] - 1.0).abs() < 1e-12);
        assert!((aps[&1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn classes_without_gt_are_excluded() {
        let mut ev = DetectionEvaluator::new(0.5);
        // A false positive on class 7, GT only for class 0.
        ev.add_frame(
            &[det(0.0, 0.0, 10.0, 0, 0.9), det(50.0, 0.0, 10.0, 7, 0.8)],
            &[gt(0.0, 0.0, 10.0, 0)],
        );
        let aps = ev.ap_per_class();
        assert_eq!(aps.len(), 1);
        assert!(aps.contains_key(&0));
    }

    #[test]
    fn empty_evaluator_is_zero() {
        let ev = DetectionEvaluator::new(0.5);
        assert_eq!(ev.map(), 0.0);
        assert_eq!(ev.map_percent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "iou threshold")]
    fn bad_threshold_panics() {
        DetectionEvaluator::new(0.0);
    }

    #[test]
    fn false_positives_lower_map() {
        let mut clean = DetectionEvaluator::new(0.5);
        let mut noisy = DetectionEvaluator::new(0.5);
        for i in 0..10 {
            let x = i as f64 * 30.0;
            let d = det(x, 0.0, 10.0, 0, 0.9);
            let g = gt(x, 0.0, 10.0, 0);
            clean.add_frame(&[d], &[g]);
            // The noisy evaluator also sees a high-confidence FP each frame.
            noisy.add_frame(&[d, det(x, 100.0, 10.0, 0, 0.95)], &[g]);
        }
        assert!(noisy.map() < clean.map());
    }

    #[test]
    fn equal_score_detections_match_in_index_order() {
        let m = match_frame(
            &[det(0.0, 0.0, 10.0, 0, 0.7), det(0.0, 0.0, 10.0, 0, 0.7)],
            &[gt(0.0, 0.0, 10.0, 0)],
            0.5,
        );
        // Tied confidences visit earlier detections first, so detection
        // 0 always claims the box and detection 1 is the duplicate.
        assert_eq!(m.outcomes[0], MatchOutcome::TruePositive { gt_index: 0 });
        assert_eq!(m.outcomes[1], MatchOutcome::FalsePositive);
    }
}
