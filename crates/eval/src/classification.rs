/// Fraction of positions where `predicted[i] == actual[i]`.
///
/// Returns `0.0` for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "predicted and actual must be the same length"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// A dense confusion matrix over `n` classes.
///
/// Rows are actual classes, columns are predicted classes.
///
/// # Example
///
/// ```
/// use omg_eval::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.count(0, 1), 1);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an `n × n` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "confusion matrix needs at least one class");
        Self {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n
    }

    /// Records one `(actual, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n && predicted < self.n, "class out of range");
        // PANIC: in bounds by the assert; counts holds n * n.
        self.counts[actual * self.n + predicted] += 1;
    }

    /// Records a batch of observations.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or contain out-of-range
    /// classes.
    pub fn record_all(&mut self, actual: &[usize], predicted: &[usize]) {
        assert_eq!(actual.len(), predicted.len());
        for (&a, &p) in actual.iter().zip(predicted) {
            self.record(a, p);
        }
    }

    /// Count of observations with the given actual and predicted classes.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        // PANIC: documented accessor contract — classes < n.
        self.counts[actual * self.n + predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass over total); `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.n).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Precision for one class: `TP / (TP + FP)`; `0.0` if never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let predicted: u64 = (0..self.n).map(|a| self.count(a, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class: `TP / (TP + FN)`; `0.0` if the class never
    /// occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let actual: u64 = (0..self.n).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score for one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 scores (macro-F1), the headline
    /// metric of the CINC17 challenge that the paper's ECG task is built on.
    pub fn macro_f1(&self) -> f64 {
        (0..self.n).map(|c| self.f1(c)).sum::<f64>() / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[1, 1, 1]), 0.0);
        assert!((accuracy(&[0, 1, 1, 0], &[0, 1, 0, 1]) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn accuracy_length_mismatch() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record_all(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let mut cm = ConfusionMatrix::new(2);
        // Class 1: TP=2, FP=1 (actual 0 predicted 1), FN=1.
        cm.record_all(&[1, 1, 1, 0], &[1, 1, 0, 1]);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_class_metrics_are_zero() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn macro_f1_averages_classes() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record_all(&[0, 1], &[0, 1]);
        assert!((cm.macro_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        ConfusionMatrix::new(0);
    }
}
