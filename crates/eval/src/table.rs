//! A minimal fixed-width text table renderer.
//!
//! Every experiment binary in `omg-bench` prints its results through this
//! type so that regenerated tables have a consistent, diffable layout.

use std::fmt;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (default for text).
    Left,
    /// Right-aligned (default for numbers).
    Right,
}

/// A simple fixed-width table.
///
/// # Example
///
/// ```
/// use omg_eval::table::Table;
///
/// let mut t = Table::new(vec!["assertion", "precision"]);
/// t.row(vec!["flicker".to_string(), "96%".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("flicker"));
/// assert!(s.contains("precision"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Sets per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of
    /// columns.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let pad = |s: &str, w: usize, a: Align| -> String {
            let len = s.chars().count();
            let space = " ".repeat(w.saturating_sub(len));
            match a {
                Align::Left => format!("{s}{space}"),
                Align::Right => format!("{space}{s}"),
            }
        };
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| pad(h, widths[i], Align::Left))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| pad(c, widths[i], self.aligns[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimal places — a convenience
/// for building table rows.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_rows() {
        let mut t = Table::new(vec!["a", "b"]).with_title("Table X");
        t.row(vec!["foo".into(), "1".into()]);
        t.row(vec!["barbaz".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.starts_with("Table X\n"));
        assert!(s.contains("| a      | b  |"));
        assert!(s.contains("| foo    | 1  |"));
        assert!(s.contains("| barbaz | 22 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn right_alignment() {
        let mut t = Table::new(vec!["n"]).with_aligns(vec![Align::Right]);
        t.row(vec!["7".into()]);
        t.row(vec!["123".into()]);
        let s = t.to_string();
        assert!(s.contains("|   7 |"));
        assert!(s.contains("| 123 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(1.0, 1), "1.0");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["col"]);
        let s = t.to_string();
        assert!(s.contains("| col |"));
        assert!(t.is_empty());
    }
}
