/// One point on a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall in `[0, 1]`.
    pub recall: f64,
    /// Precision in `[0, 1]`.
    pub precision: f64,
}

/// All-point interpolated average precision.
///
/// `records` holds `(score, is_true_positive)` for every detection of one
/// class across the whole evaluation set; `n_gt` is the number of
/// ground-truth boxes of that class. Records are sorted by descending score
/// internally, the precision envelope is applied (each precision value is
/// replaced by the maximum precision at any equal-or-higher recall), and
/// the area under the resulting step function is returned.
///
/// Returns `0.0` when `n_gt == 0` or there are no records.
pub fn average_precision(records: &[(f64, bool)], n_gt: usize) -> f64 {
    if n_gt == 0 || records.is_empty() {
        return 0.0;
    }
    let curve = pr_curve(records, n_gt);
    area_under_envelope(&curve)
}

/// The raw precision-recall curve (one point per detection, in descending
/// score order). Exposed so experiments can plot or inspect the curve, not
/// just its area (C-INTERMEDIATE).
pub fn pr_curve(records: &[(f64, bool)], n_gt: usize) -> Vec<PrPoint> {
    let mut sorted: Vec<(f64, bool)> = records.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut out = Vec::with_capacity(sorted.len());
    for (_, is_tp) in sorted {
        if is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        out.push(PrPoint {
            recall: tp as f64 / n_gt as f64,
            precision: tp as f64 / (tp + fp) as f64,
        });
    }
    out
}

/// Area under the precision envelope of a PR curve (all-point
/// interpolation as used by PASCAL VOC 2010+ and COCO).
fn area_under_envelope(curve: &[PrPoint]) -> f64 {
    if curve.is_empty() {
        return 0.0;
    }
    // Envelope: precision at recall r is max precision at recall >= r.
    let mut env: Vec<PrPoint> = curve.to_vec();
    // PANIC: i + 1 <= len - 1 by the saturating_sub'd range bound.
    for i in (0..env.len().saturating_sub(1)).rev() {
        env[i].precision = env[i].precision.max(env[i + 1].precision);
    }
    let mut area = 0.0;
    let mut prev_recall = 0.0;
    for p in &env {
        if p.recall > prev_recall {
            area += (p.recall - prev_recall) * p.precision;
            prev_recall = p.recall;
        }
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_ap_one() {
        let recs = vec![(0.9, true), (0.8, true), (0.7, true)];
        assert!((average_precision(&recs, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_false_positives_give_zero() {
        let recs = vec![(0.9, false), (0.8, false)];
        assert_eq!(average_precision(&recs, 5), 0.0);
    }

    #[test]
    fn no_gt_gives_zero() {
        assert_eq!(average_precision(&[(0.9, true)], 0), 0.0);
        assert_eq!(average_precision(&[], 3), 0.0);
    }

    #[test]
    fn known_small_case() {
        // TP, FP, TP with 2 GT:
        //   after det1: r=0.5, p=1.0
        //   after det2: r=0.5, p=0.5
        //   after det3: r=1.0, p=2/3
        // Envelope: p(0..0.5]=1.0, p(0.5..1.0]=2/3 -> AP = 0.5*1 + 0.5*2/3.
        let recs = vec![(0.9, true), (0.8, false), (0.7, true)];
        let expected = 0.5 + 0.5 * (2.0 / 3.0);
        assert!((average_precision(&recs, 2) - expected).abs() < 1e-12);
    }

    #[test]
    fn missed_gt_caps_recall() {
        // One TP but two GT: AP = 0.5.
        let recs = vec![(0.9, true)];
        assert!((average_precision(&recs, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn input_order_does_not_matter() {
        let a = vec![(0.9, true), (0.8, false), (0.7, true)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(average_precision(&a, 2), average_precision(&b, 2));
    }

    #[test]
    fn better_ranking_gives_higher_ap() {
        // Same outcomes, but errors ranked above hits in the second case.
        let good = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let bad = vec![(0.9, false), (0.8, false), (0.2, true), (0.1, true)];
        assert!(average_precision(&good, 2) > average_precision(&bad, 2));
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let recs = vec![(0.9, true), (0.8, false), (0.7, true), (0.6, true)];
        let curve = pr_curve(&recs, 3);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert_eq!(curve.len(), 4);
    }

    #[test]
    fn ap_is_bounded() {
        let recs = vec![(0.9, true), (0.5, false), (0.4, true), (0.2, false)];
        let ap = average_precision(&recs, 4);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn nan_scores_sort_first_and_never_panic() {
        let recs = [(f64::NAN, false), (0.5, true)];
        let fwd = pr_curve(&recs, 1);
        let rev = pr_curve(&[recs[1], recs[0]], 1);
        // +NaN is the greatest confidence under the total order, so the
        // poisoned record leads the curve in either input order.
        assert_eq!(fwd, rev);
        assert_eq!(fwd[0].precision, 0.0);
        assert_eq!(fwd[1].recall, 1.0);
    }
}
