//! Property-based tests for the evaluation substrate.

use omg_eval::stats::{mean, percentile_rank, quantile};
use omg_eval::{average_precision, match_frame, DetectionEvaluator, GtBox, ScoredBox};
use omg_geom::BBox2D;
use proptest::prelude::*;

fn arb_records() -> impl Strategy<Value = Vec<(f64, bool)>> {
    proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..50)
}

proptest! {
    #[test]
    fn ap_is_bounded(records in arb_records(), extra_gt in 0usize..10) {
        let tp = records.iter().filter(|r| r.1).count();
        let n_gt = tp + extra_gt;
        if n_gt > 0 {
            let ap = average_precision(&records, n_gt);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        }
    }

    #[test]
    fn ap_perfect_prefix_dominates(records in arb_records()) {
        // Moving all TPs to the top scores can only raise AP.
        let tp = records.iter().filter(|r| r.1).count();
        if tp == 0 { return Ok(()); }
        let n = records.len();
        let sorted_best: Vec<(f64, bool)> = (0..n)
            .map(|i| (1.0 - i as f64 / n as f64, i < tp))
            .collect();
        let base = average_precision(&records, tp);
        let best = average_precision(&sorted_best, tp);
        prop_assert!(best + 1e-9 >= base);
    }

    #[test]
    fn matching_never_double_books_gt(
        seeds in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..20.0, 0.0f64..1.0, 0usize..3), 0..20),
        gt_seeds in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..20.0, 0usize..3), 0..10),
    ) {
        let dets: Vec<ScoredBox> = seeds.iter().map(|&(x, y, s, c, k)| ScoredBox {
            bbox: BBox2D::new(x, y, x + s, y + s).unwrap(),
            class: k,
            score: c,
        }).collect();
        let gts: Vec<GtBox> = gt_seeds.iter().map(|&(x, y, s, k)| GtBox {
            bbox: BBox2D::new(x, y, x + s, y + s).unwrap(),
            class: k,
        }).collect();
        let m = match_frame(&dets, &gts, 0.5);
        prop_assert_eq!(m.outcomes.len(), dets.len());
        // No GT matched twice.
        let mut used = std::collections::HashSet::new();
        for o in &m.outcomes {
            if let omg_eval::MatchOutcome::TruePositive { gt_index } = o {
                prop_assert!(used.insert(*gt_index), "gt matched twice");
                // Matched pairs share the class and clear the threshold.
                prop_assert!(gts[*gt_index].class == dets[m.outcomes.iter().position(|x| x == o).unwrap()].class);
            }
        }
        // TP count + missed count == GT count.
        prop_assert_eq!(used.len() + m.missed_gt.len(), gts.len());
    }

    #[test]
    fn map_of_perfect_detector_is_one(
        frames in proptest::collection::vec(
            proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0, 5.0f64..20.0, 0usize..3), 1..5),
            1..10)
    ) {
        let mut ev = DetectionEvaluator::new(0.5);
        for frame in &frames {
            let gts: Vec<GtBox> = frame.iter().map(|&(x, y, s, k)| GtBox {
                bbox: BBox2D::new(x, y, x + s, y + s).unwrap(),
                class: k,
            }).collect();
            let dets: Vec<ScoredBox> = gts.iter().map(|g| ScoredBox {
                bbox: g.bbox,
                class: g.class,
                score: 0.9,
            }).collect();
            ev.add_frame(&dets, &gts);
        }
        // Echoing GT exactly yields mAP 1 regardless of box layout: every
        // detection overlaps its own GT at IoU 1 and greedy matching pairs
        // them all (identical boxes may swap partners, which is harmless).
        prop_assert!((ev.map() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_within_range(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), q in 0.0f64..1.0) {
        let v = quantile(&xs, q);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn percentile_rank_monotone(xs in proptest::collection::vec(-100f64..100.0, 1..100),
                                a in -100f64..100.0, b in -100f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile_rank(&xs, lo) <= percentile_rank(&xs, hi));
    }

    #[test]
    fn mean_is_within_extremes(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}
