//! Property tests for the spatial grid index and the indexed matchers.
//!
//! A crowded-scene strategy (dense duplicate clusters + uniform clutter)
//! drives every public matcher — NMS, association pairs, duplicate
//! triples, agreement counting — and asserts bit-for-bit equality with
//! the O(n²) reference scans; a fixed ladder covers sizes 0/1/2/100/1000
//! deterministically; adversarial shapes (all-identical boxes, zero-area
//! boxes, giant boxes straddling many cells) get their own generators;
//! and the grid's candidate/radius/nearest queries are checked against
//! brute force.

use omg_geom::grid::GridIndex2D;
use omg_geom::{matchers, reference, BBox2D};
use proptest::prelude::*;

/// A generated crowded scene: boxes plus the per-box scores and classes
/// the matchers consume.
#[derive(Debug, Clone)]
struct Scene {
    boxes: Vec<BBox2D>,
    scores: Vec<f64>,
    classes: Vec<usize>,
}

/// Dense clusters + uniform clutter, up to `max_boxes` boxes: a few
/// cluster anchors, and each box either piles onto an anchor (the
/// duplicate pattern) or lands anywhere in the scene.
fn crowded_scene(max_boxes: usize) -> impl Strategy<Value = Scene> {
    (
        proptest::collection::vec((0.0f64..900.0, 0.0f64..500.0), 1..6),
        proptest::collection::vec(
            (
                any::<u64>(),
                any::<bool>(),
                -9.0f64..9.0,
                -9.0f64..9.0,
                12.0f64..70.0,
                10.0f64..55.0,
                0usize..3,
                0.0f64..1.0,
            ),
            0..max_boxes + 1,
        ),
    )
        .prop_map(|(anchors, specs)| {
            let mut scene = Scene {
                boxes: Vec::new(),
                scores: Vec::new(),
                classes: Vec::new(),
            };
            for (which, clustered, dx, dy, w, h, class, score) in specs {
                let (cx, cy) = if clustered {
                    let (ax, ay) = anchors[which as usize % anchors.len()];
                    (ax + dx, ay + dy)
                } else {
                    // Reuse the offsets as uniform clutter coordinates.
                    ((dx + 9.0) * 50.0, (dy + 9.0) * 28.0)
                };
                scene
                    .boxes
                    .push(BBox2D::new(cx, cy, cx + w, cy + h).unwrap());
                scene.scores.push(score);
                scene.classes.push(class);
            }
            scene
        })
}

/// Asserts every public matcher equals its reference twin on `scene`
/// (with `others` as the second side of the two-set matchers).
fn assert_matchers_equal_reference(scene: &Scene, others: &[BBox2D], thr: f64) {
    let Scene {
        boxes,
        scores,
        classes,
    } = scene;
    assert_eq!(
        matchers::nms_indices(boxes, scores, thr),
        reference::nms_indices(boxes, scores, thr),
        "nms_indices diverged (n={}, thr={thr})",
        boxes.len()
    );
    assert_eq!(
        matchers::nms_indices_per_class(boxes, scores, classes, thr),
        reference::nms_indices_per_class(boxes, scores, classes, thr),
        "nms_indices_per_class diverged (n={}, thr={thr})",
        boxes.len()
    );
    assert_eq!(
        matchers::iou_pairs(boxes, others, thr),
        reference::iou_pairs(boxes, others, thr),
        "iou_pairs diverged (n={}, m={}, thr={thr})",
        boxes.len(),
        others.len()
    );
    assert_eq!(
        matchers::overlap_triples(boxes, classes, thr),
        reference::overlap_triples(boxes, classes, thr),
        "overlap_triples diverged (n={}, thr={thr})",
        boxes.len()
    );
    assert_eq!(
        matchers::count_unmatched(boxes, others, thr),
        reference::count_unmatched(boxes, others, thr),
        "count_unmatched diverged (n={}, m={}, thr={thr})",
        boxes.len(),
        others.len()
    );
}

/// Deterministic crowded scene for the fixed size ladder (tiny LCG so
/// the 1000-box case needs no proptest machinery): 40% of boxes in
/// 5-box clusters, the rest clutter.
fn lcg_scene(seed: u64, n: usize) -> Scene {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut scene = Scene {
        boxes: Vec::new(),
        scores: Vec::new(),
        classes: Vec::new(),
    };
    while scene.boxes.len() < n {
        let in_cluster = scene.boxes.len() < (n * 2) / 5;
        let members = if in_cluster {
            5.min(n - scene.boxes.len())
        } else {
            1
        };
        let ax = next() * 1200.0;
        let ay = next() * 700.0;
        let class = (next() * 3.0) as usize;
        for _ in 0..members {
            let x = ax + next() * 12.0;
            let y = ay + next() * 12.0;
            let w = 20.0 + next() * 60.0;
            let h = 15.0 + next() * 50.0;
            scene.boxes.push(BBox2D::new(x, y, x + w, y + h).unwrap());
            scene.scores.push(next());
            scene.classes.push(class);
        }
    }
    scene
}

/// The fixed size ladder from the issue: 0, 1, 2 (edge cases), 100
/// (below the index cutoff — dispatch must fall back), 1000 (well above
/// it — the grid path runs for every matcher).
#[test]
fn size_ladder_agrees_with_reference() {
    for n in [0usize, 1, 2, 100, 1000] {
        let scene = lcg_scene(n as u64 + 1, n);
        let others = lcg_scene(n as u64 + 101, n).boxes;
        for thr in [0.3, 0.5] {
            assert_matchers_equal_reference(&scene, &others, thr);
        }
    }
}

proptest! {
    /// The headline property: on arbitrary crowded scenes and
    /// thresholds, indexed == reference for all five matchers. Sizes
    /// reach past `INDEX_MIN` so the grid path itself is exercised.
    #[test]
    fn crowded_scenes_agree_with_reference(
        scene in crowded_scene(160),
        others in crowded_scene(150),
        thr in 0.05f64..0.9,
    ) {
        assert_matchers_equal_reference(&scene, &others.boxes, thr);
    }

    /// Adversarial: every box identical, all in the same few cells.
    /// (Triples are covered by a deterministic 150-box unit test in
    /// `matchers` — C(n,3) blows up the reference under proptest.)
    #[test]
    fn all_identical_boxes_agree_at_any_count(
        n in 0usize..150,
        x in -50.0f64..400.0,
        y in -50.0f64..400.0,
        s in 0.5f64..80.0,
        thr in 0.05f64..0.9,
    ) {
        let boxes = vec![BBox2D::new(x, y, x + s, y + s).unwrap(); n];
        let scores: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % 1.0).collect();
        prop_assert_eq!(
            matchers::nms_indices(&boxes, &scores, thr),
            reference::nms_indices(&boxes, &scores, thr)
        );
        prop_assert_eq!(
            matchers::iou_pairs(&boxes, &boxes, thr),
            reference::iou_pairs(&boxes, &boxes, thr)
        );
        prop_assert_eq!(
            matchers::count_unmatched(&boxes, &boxes, thr),
            reference::count_unmatched(&boxes, &boxes, thr)
        );
    }

    /// Adversarial: zero-area (point) boxes mixed into a real scene.
    /// Degenerate boxes have IoU 0 with everything, so they survive NMS
    /// and never match — on both paths.
    #[test]
    fn zero_area_boxes_mixed_in_agree(
        mut scene in crowded_scene(140),
        points in proptest::collection::vec((0.0f64..900.0, 0.0f64..500.0), 1..30),
        thr in 0.05f64..0.9,
    ) {
        for (px, py) in points {
            scene.boxes.push(BBox2D::new(px, py, px, py).unwrap());
            scene.scores.push(0.9);
            scene.classes.push(0);
        }
        let others = scene.boxes.clone();
        assert_matchers_equal_reference(&scene, &others, thr);
    }

    /// Adversarial: giant boxes straddling most of the grid's cells on
    /// top of a crowded scene.
    #[test]
    fn giant_boxes_straddling_many_cells_agree(
        mut scene in crowded_scene(140),
        giants in proptest::collection::vec(
            (-100.0f64..100.0, -100.0f64..100.0, 500.0f64..1200.0, 350.0f64..800.0),
            1..5,
        ),
        thr in 0.05f64..0.9,
    ) {
        for (x, y, w, h) in giants {
            scene.boxes.push(BBox2D::new(x, y, x + w, y + h).unwrap());
            scene.scores.push(0.5);
            scene.classes.push(1);
        }
        let others = scene.boxes.clone();
        assert_matchers_equal_reference(&scene, &others, thr);
    }

    /// The grid's core contract: `candidates_overlapping` returns
    /// exactly the AABB-intersecting boxes, ascending, no duplicates.
    #[test]
    fn grid_candidates_are_exactly_the_intersecting_set(
        scene in crowded_scene(120),
        qx in -150.0f64..1000.0,
        qy in -150.0f64..600.0,
        qw in 0.0f64..500.0,
        qh in 0.0f64..400.0,
    ) {
        prop_assume!(!scene.boxes.is_empty());
        let grid = GridIndex2D::build(&scene.boxes);
        let query = BBox2D::new(qx, qy, qx + qw, qy + qh).unwrap();
        let mut got = Vec::new();
        grid.candidates_overlapping(&query, &mut got);
        let want: Vec<usize> = scene
            .boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// `within_radius` equals the brute-force center-in-disk scan.
    #[test]
    fn grid_radius_query_matches_brute_force(
        scene in crowded_scene(120),
        cx in -100.0f64..1000.0,
        cy in -100.0f64..600.0,
        r in 0.0f64..400.0,
    ) {
        prop_assume!(!scene.boxes.is_empty());
        let grid = GridIndex2D::build(&scene.boxes);
        let mut got = Vec::new();
        grid.within_radius(cx, cy, r, &mut got);
        let want: Vec<usize> = scene
            .boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                let (bx, by) = b.center();
                (bx - cx).powi(2) + (by - cy).powi(2) <= r * r
            })
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// `nearest` equals the brute-force sort by `(distance², id)`.
    #[test]
    fn grid_nearest_matches_brute_force(
        scene in crowded_scene(120),
        cx in -100.0f64..1000.0,
        cy in -100.0f64..600.0,
        k in 0usize..20,
    ) {
        prop_assume!(!scene.boxes.is_empty());
        let grid = GridIndex2D::build(&scene.boxes);
        let got = grid.nearest(cx, cy, k);
        let mut by_dist: Vec<(f64, usize)> = scene
            .boxes
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let (bx, by) = b.center();
                ((bx - cx).powi(2) + (by - cy).powi(2), i)
            })
            .collect();
        by_dist.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let want: Vec<usize> = by_dist.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, want);
    }
}
