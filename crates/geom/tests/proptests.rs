//! Property-based tests for the geometry substrate.

use omg_geom::{BBox2D, BBox3D, CameraIntrinsics, CameraModel, Vec3};
use proptest::prelude::*;

fn arb_box() -> impl Strategy<Value = BBox2D> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        0.01f64..300.0,
        0.01f64..300.0,
    )
        .prop_map(|(x, y, w, h)| BBox2D::new(x, y, x + w, y + h).unwrap())
}

fn arb_box3d() -> impl Strategy<Value = BBox3D> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.1f64..10.0,
        0.1f64..10.0,
        0.1f64..5.0,
        -3.2f64..3.2,
    )
        .prop_map(|(x, y, l, w, h, yaw)| {
            BBox3D::new(Vec3::new(x, y, h / 2.0), Vec3::new(l, w, h), yaw).unwrap()
        })
}

proptest! {
    #[test]
    fn iou_is_bounded(a in arb_box(), b in arb_box()) {
        let v = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn iou_is_symmetric(a in arb_box(), b in arb_box()) {
        prop_assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
    }

    #[test]
    fn iou_with_self_is_one(a in arb_box()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_never_exceeds_either_area(a in arb_box(), b in arb_box()) {
        let inter = a.intersection_area(&b);
        prop_assert!(inter <= a.area() + 1e-9);
        prop_assert!(inter <= b.area() + 1e-9);
        prop_assert!(inter >= 0.0);
    }

    #[test]
    fn union_bounds_contains_both(a in arb_box(), b in arb_box()) {
        let u = a.union_bounds(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
    }

    #[test]
    fn translation_preserves_iou(a in arb_box(), b in arb_box(),
                                 dx in -50.0f64..50.0, dy in -50.0f64..50.0) {
        let before = a.iou(&b);
        let after = a.translated(dx, dy).iou(&b.translated(dx, dy));
        prop_assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn lerp_stays_between_endpoints(a in arb_box(), b in arb_box(), t in 0.0f64..1.0) {
        let m = a.lerp(&b, t);
        let hull = a.union_bounds(&b);
        prop_assert!(hull.contains_box(&m));
    }

    #[test]
    fn overlap_fraction_bounded(a in arb_box(), b in arb_box()) {
        let f = a.overlap_fraction(&b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
    }

    #[test]
    fn bev_iou_bounded_and_symmetric(a in arb_box3d(), b in arb_box3d()) {
        let ab = a.iou_bev_aabb(&b);
        let ba = b.iou_bev_aabb(&a);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn bev_iou_equals_footprint_aabb_iou(a in arb_box3d(), b in arb_box3d()) {
        // iou_bev_aabb is by definition the IoU of the two corner-derived
        // footprint AABBs, so its fast reject must never disagree with
        // the footprint math at any yaw (a radius-based reject once
        // zeroed yawed near-overlaps here).
        let expected = a.footprint_aabb().iou(&b.footprint_aabb());
        prop_assert!((a.iou_bev_aabb(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn box3d_corners_preserve_volume_extent(b in arb_box3d()) {
        // The diagonal of the corner cloud must equal the box diagonal.
        let cs = b.corners();
        let mut max_d: f64 = 0.0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                max_d = max_d.max(cs[i].distance(&cs[j]));
            }
        }
        let s = b.size();
        let diag = (s.x * s.x + s.y * s.y + s.z * s.z).sqrt();
        prop_assert!((max_d - diag).abs() < 1e-9);
    }

    #[test]
    fn projection_u_monotone_in_lateral_offset(yoff in -20.0f64..20.0) {
        // Moving a point left (+Y) always moves its pixel left (smaller u).
        let cam = CameraModel::new(
            CameraIntrinsics::centered(1000.0, 1920.0, 1080.0).unwrap(),
            Vec3::new(0.0, 0.0, 1.5),
            0.0,
        );
        let (u0, _) = cam.project_point(Vec3::new(30.0, yoff, 1.5)).unwrap();
        let (u1, _) = cam.project_point(Vec3::new(30.0, yoff + 1.0, 1.5)).unwrap();
        prop_assert!(u1 < u0);
    }

    #[test]
    fn nms_output_is_subset_and_conflict_free(
        seeds in proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0, 5.0f64..40.0, 0.0f64..1.0), 1..30)
    ) {
        let boxes: Vec<BBox2D> = seeds
            .iter()
            .map(|&(x, y, s, _)| BBox2D::new(x, y, x + s, y + s).unwrap())
            .collect();
        let scores: Vec<f64> = seeds.iter().map(|&(_, _, _, c)| c).collect();
        let kept = omg_geom::nms::nms_indices(&boxes, &scores, 0.5);
        // Subset, unique.
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), kept.len());
        prop_assert!(kept.iter().all(|&i| i < boxes.len()));
        // No two kept boxes exceed the IoU threshold.
        for (ai, &i) in kept.iter().enumerate() {
            for &j in kept.iter().skip(ai + 1) {
                prop_assert!(boxes[i].iou(&boxes[j]) <= 0.5 + 1e-12);
            }
        }
    }
}
