//! Indexed box matchers and the backend toggle.
//!
//! Every pairwise matcher in the workspace — NMS, tracker association,
//! duplicate-cluster detection, fusion agreement — routes through this
//! module. Each matcher has two implementations producing **bit-for-bit
//! identical** output:
//!
//! * an *indexed* path (default) that builds a [`GridIndex2D`] and only
//!   scores candidate pairs whose AABBs intersect — near-linear in
//!   crowded scenes;
//! * the O(n²) *reference* path in [`crate::reference`].
//!
//! # Why candidate lookup is exact, not approximate
//!
//! A pair can only match when its IoU clears a positive threshold, and
//! positive IoU requires intersecting AABBs — exactly the pairs the grid
//! returns (see [`crate::grid`]). The indexed matchers therefore compute
//! the very same IoU values on the very same surviving pairs, in the
//! same deterministic order, as the reference scans. When that argument
//! does not hold — a zero or negative threshold, where even disjoint
//! pairs "match" — the matchers detect it and fall back to the
//! reference automatically.
//!
//! # The backend toggle
//!
//! [`set_backend`] / [`with_backend`] switch the whole process between
//! the two paths. This exists for verification and benchmarking: the
//! equivalence suite runs entire scenario engines under both backends
//! and asserts identical severities, and `exp_throughput --crowded`
//! records both timing curves. Production code never needs to touch it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::grid::GridIndex2D;
use crate::{reference, BBox2D};

/// Below this many boxes the matchers skip the grid and run the
/// reference scan directly: building an index costs more than the IoU
/// calls it would save. On the crowded benchmark the crossover sits
/// between 100 and 300 boxes per frame (`exp_throughput --crowded`), so
/// 128 keeps every measured density at least as fast as the reference.
/// (Both paths are exact, so this is purely a performance cutoff.)
pub const INDEX_MIN: usize = 128;

/// Which matcher implementation the process is using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchBackend {
    /// Spatial-grid candidate lookup (the default).
    Indexed,
    /// The O(n²) pairwise scans in [`crate::reference`].
    Reference,
}

/// Process-global backend flag; `false` = indexed (the default).
static USE_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Serializes [`with_backend`] sections so concurrent equivalence tests
/// cannot observe each other's toggles.
static BACKEND_GUARD: Mutex<()> = Mutex::new(());

/// The currently selected matcher backend.
pub fn backend() -> MatchBackend {
    if USE_REFERENCE.load(Ordering::SeqCst) {
        MatchBackend::Reference
    } else {
        MatchBackend::Indexed
    }
}

/// Selects the matcher backend process-wide.
///
/// Prefer [`with_backend`] in tests — it scopes and restores the
/// setting, and serializes against other togglers.
pub fn set_backend(b: MatchBackend) {
    USE_REFERENCE.store(b == MatchBackend::Reference, Ordering::SeqCst);
}

/// Runs `f` with the given backend selected, restoring the previous
/// backend afterwards (also on panic). Sections are serialized by a
/// global lock so parallel tests toggling backends cannot interleave;
/// worker threads spawned inside `f` observe the selected backend.
///
/// Not reentrant: calling `with_backend` inside `f` deadlocks.
pub fn with_backend<R>(b: MatchBackend, f: impl FnOnce() -> R) -> R {
    let _guard = BACKEND_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(MatchBackend);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_backend(self.0);
        }
    }
    let _restore = Restore(backend());
    set_backend(b);
    f()
}

/// Whether the indexed path may be used for a matcher whose predicate is
/// `iou >= thr` (`strict = false`) or `iou > thr` (`strict = true`):
/// matching must imply a positive-area intersection, or grid candidate
/// lookup would miss "matching" disjoint pairs. NaN thresholds fail both
/// conditions and fall back to the reference.
fn threshold_indexable(thr: f64, strict: bool) -> bool {
    if strict {
        thr >= 0.0
    } else {
        thr > 0.0
    }
}

/// Greedy NMS over scored boxes; see [`crate::nms::nms_indices`] for the
/// contract. Dispatches between the grid-indexed path and
/// [`reference::nms_indices`] by backend, input size, and threshold.
///
/// # Panics
///
/// Panics if `boxes` and `scores` have different lengths.
pub fn nms_indices(boxes: &[BBox2D], scores: &[f64], iou_threshold: f64) -> Vec<usize> {
    assert_eq!(
        boxes.len(),
        scores.len(),
        "boxes and scores must be the same length"
    );
    if backend() == MatchBackend::Reference
        || boxes.len() < INDEX_MIN
        || !threshold_indexable(iou_threshold, true)
    {
        return reference::nms_indices(boxes, scores, iou_threshold);
    }
    let grid = GridIndex2D::build(boxes);
    let mut kept_flag = vec![false; boxes.len()];
    let mut kept: Vec<usize> = Vec::new();
    let mut cands: Vec<usize> = Vec::new();
    // PANIC: every subscript below is an index from score_order (a
    // permutation of 0..len) or from GridIndex2D built over these same
    // boxes, so it is structurally in bounds.
    for i in reference::score_order(scores) {
        grid.candidates_overlapping(&boxes[i], &mut cands);
        let suppressed = cands
            .iter()
            .any(|&k| kept_flag[k] && boxes[k].iou(&boxes[i]) > iou_threshold);
        if !suppressed {
            kept_flag[i] = true;
            kept.push(i);
        }
    }
    kept
}

/// Class-aware greedy NMS; see [`crate::nms::nms_indices_per_class`].
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn nms_indices_per_class(
    boxes: &[BBox2D],
    scores: &[f64],
    classes: &[usize],
    iou_threshold: f64,
) -> Vec<usize> {
    assert_eq!(
        boxes.len(),
        scores.len(),
        "boxes and scores must be the same length"
    );
    assert_eq!(
        boxes.len(),
        classes.len(),
        "boxes and classes must be the same length"
    );
    if backend() == MatchBackend::Reference
        || boxes.len() < INDEX_MIN
        || !threshold_indexable(iou_threshold, true)
    {
        return reference::nms_indices_per_class(boxes, scores, classes, iou_threshold);
    }
    let grid = GridIndex2D::build(boxes);
    let mut kept_flag = vec![false; boxes.len()];
    let mut kept: Vec<usize> = Vec::new();
    let mut cands: Vec<usize> = Vec::new();
    // PANIC: indices come from score_order (permutation of 0..len) and
    // GridIndex2D over these boxes; `classes` length is asserted equal
    // above, so all subscripts are in bounds.
    for i in reference::score_order(scores) {
        grid.candidates_overlapping(&boxes[i], &mut cands);
        let suppressed = cands.iter().any(|&k| {
            kept_flag[k] && classes[k] == classes[i] && boxes[k].iou(&boxes[i]) > iou_threshold
        });
        if !suppressed {
            kept_flag[i] = true;
            kept.push(i);
        }
    }
    kept
}

/// All `(iou, anchor_idx, query_idx)` pairs with IoU at or above
/// `iou_threshold`, sorted by ascending `(anchor_idx, query_idx)` —
/// identical to [`reference::iou_pairs`] in content *and* order (the
/// grid returns candidates in ascending index order). The tracker's
/// greedy detection-to-track association consumes this.
pub fn iou_pairs(
    anchors: &[BBox2D],
    queries: &[BBox2D],
    iou_threshold: f64,
) -> Vec<(f64, usize, usize)> {
    if backend() == MatchBackend::Reference
        || anchors.len() * queries.len() < INDEX_MIN * INDEX_MIN
        || !threshold_indexable(iou_threshold, false)
    {
        return reference::iou_pairs(anchors, queries, iou_threshold);
    }
    let grid = GridIndex2D::build(queries);
    let mut pairs = Vec::new();
    let mut cands: Vec<usize> = Vec::new();
    for (ai, a) in anchors.iter().enumerate() {
        grid.candidates_overlapping(a, &mut cands);
        for &qi in &cands {
            // PANIC: qi comes from GridIndex2D built over `queries`.
            let iou = a.iou(&queries[qi]);
            if iou >= iou_threshold {
                pairs.push((iou, ai, qi));
            }
        }
    }
    pairs
}

/// Counts triples `i < j < k` of same-class boxes that pairwise overlap
/// at or above `iou_threshold` (the `multibox` duplicate-cluster
/// condition); identical to [`reference::overlap_triples`].
///
/// # Panics
///
/// Panics if `boxes` and `classes` have different lengths.
pub fn overlap_triples(boxes: &[BBox2D], classes: &[usize], iou_threshold: f64) -> usize {
    assert_eq!(
        boxes.len(),
        classes.len(),
        "boxes and classes must be the same length"
    );
    if backend() == MatchBackend::Reference
        || boxes.len() < INDEX_MIN
        || !threshold_indexable(iou_threshold, false)
    {
        return reference::overlap_triples(boxes, classes, iou_threshold);
    }
    let grid = GridIndex2D::build(boxes);
    let mut triples = 0;
    let mut cands: Vec<usize> = Vec::new();
    let mut nbrs: Vec<usize> = Vec::new();
    // PANIC: i ranges over 0..boxes.len(), j comes from GridIndex2D
    // over these boxes, and `classes` length is asserted equal above.
    for i in 0..boxes.len() {
        grid.candidates_overlapping(&boxes[i], &mut cands);
        // Neighbors of i with a larger index: each triple is counted
        // exactly once, anchored at its smallest member.
        nbrs.clear();
        for &j in &cands {
            if j > i && classes[j] == classes[i] && boxes[i].iou(&boxes[j]) >= iou_threshold {
                nbrs.push(j);
            }
        }
        // PANIC: nbrs holds grid indices; a < nbrs.len() so the range
        // slice and the j/k subscripts are in bounds.
        for (a, &j) in nbrs.iter().enumerate() {
            for &k in &nbrs[a + 1..] {
                if boxes[j].iou(&boxes[k]) >= iou_threshold {
                    triples += 1;
                }
            }
        }
    }
    triples
}

/// Counts the queries that overlap **no** target at or above
/// `iou_threshold` (the `no_overlap` sensor-agreement predicate over a
/// batch); identical to [`reference::count_unmatched`].
pub fn count_unmatched(queries: &[BBox2D], targets: &[BBox2D], iou_threshold: f64) -> usize {
    if backend() == MatchBackend::Reference
        || queries.len() * targets.len() < INDEX_MIN * INDEX_MIN
        || !threshold_indexable(iou_threshold, false)
    {
        return reference::count_unmatched(queries, targets, iou_threshold);
    }
    let grid = GridIndex2D::build(targets);
    let mut cands: Vec<usize> = Vec::new();
    let mut unmatched = 0;
    for q in queries {
        grid.candidates_overlapping(q, &mut cands);
        // PANIC: t comes from GridIndex2D built over `targets`.
        if cands.iter().all(|&t| q.iou(&targets[t]) < iou_threshold) {
            unmatched += 1;
        }
    }
    unmatched
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic scene generator (tiny LCG; geom has no dev-deps).
    fn scene(seed: u64, n: usize, span: f64, size: f64) -> Vec<BBox2D> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let x = next() * span;
                let y = next() * span;
                let w = size * (0.5 + next());
                let h = size * (0.5 + next());
                BBox2D::new(x, y, x + w, y + h).unwrap()
            })
            .collect()
    }

    fn scores_for(boxes: &[BBox2D], seed: u64) -> Vec<f64> {
        (0..boxes.len())
            .map(|i| ((i as u64).wrapping_mul(seed) % 1000) as f64 / 1000.0)
            .collect()
    }

    #[test]
    fn backend_toggle_roundtrip() {
        assert_eq!(backend(), MatchBackend::Indexed);
        let got = with_backend(MatchBackend::Reference, backend);
        assert_eq!(got, MatchBackend::Reference);
        assert_eq!(backend(), MatchBackend::Indexed, "restored after scope");
    }

    #[test]
    fn indexed_matchers_match_reference_on_crowded_scene() {
        let boxes = scene(7, 300, 500.0, 20.0);
        let scores = scores_for(&boxes, 13);
        let classes: Vec<usize> = (0..boxes.len()).map(|i| i % 3).collect();
        let others = scene(8, 250, 500.0, 20.0);

        assert_eq!(
            nms_indices(&boxes, &scores, 0.5),
            reference::nms_indices(&boxes, &scores, 0.5)
        );
        assert_eq!(
            nms_indices_per_class(&boxes, &scores, &classes, 0.5),
            reference::nms_indices_per_class(&boxes, &scores, &classes, 0.5)
        );
        assert_eq!(
            iou_pairs(&boxes, &others, 0.1),
            reference::iou_pairs(&boxes, &others, 0.1)
        );
        assert_eq!(
            overlap_triples(&boxes, &classes, 0.3),
            reference::overlap_triples(&boxes, &classes, 0.3)
        );
        assert_eq!(
            count_unmatched(&boxes, &others, 0.1),
            reference::count_unmatched(&boxes, &others, 0.1)
        );
    }

    #[test]
    fn degenerate_thresholds_fall_back_to_reference() {
        // iou >= 0.0 matches even disjoint pairs; the indexed path must
        // not be used, and results must still agree with the reference.
        // Sized above INDEX_MIN so the threshold guard (not the size
        // cutoff) is what forces the fallback.
        let a = scene(1, 150, 300.0, 10.0);
        let b = scene(2, 150, 300.0, 10.0);
        assert_eq!(
            iou_pairs(&a, &b, 0.0).len(),
            a.len() * b.len(),
            "zero threshold keeps every pair"
        );
        assert_eq!(count_unmatched(&a, &b, 0.0), 0);
        assert_eq!(
            nms_indices(&a, &scores_for(&a, 3), -1.0),
            reference::nms_indices(&a, &scores_for(&a, 3), -1.0)
        );
        assert_eq!(
            iou_pairs(&a, &b, f64::NAN),
            reference::iou_pairs(&a, &b, f64::NAN)
        );
    }

    #[test]
    fn reference_backend_forces_pairwise_path() {
        let boxes = scene(5, 200, 400.0, 15.0);
        let scores = scores_for(&boxes, 17);
        let indexed = nms_indices(&boxes, &scores, 0.5);
        let via_reference = with_backend(MatchBackend::Reference, || {
            nms_indices(&boxes, &scores, 0.5)
        });
        assert_eq!(indexed, via_reference);
    }

    #[test]
    fn all_identical_boxes_agree() {
        // Above INDEX_MIN so the indexed path runs with every box in
        // the same handful of cells.
        let boxes = vec![BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap(); 150];
        let scores = scores_for(&boxes, 11);
        let classes = vec![0usize; 150];
        assert_eq!(
            nms_indices(&boxes, &scores, 0.5),
            reference::nms_indices(&boxes, &scores, 0.5)
        );
        assert_eq!(
            overlap_triples(&boxes, &classes, 0.3),
            reference::overlap_triples(&boxes, &classes, 0.3)
        );
        // C(150, 3) identical-box triples.
        assert_eq!(overlap_triples(&boxes, &classes, 0.3), 551_300);
    }

    #[test]
    fn zero_area_boxes_agree() {
        let mut boxes = scene(9, 160, 200.0, 12.0);
        for i in 0..40 {
            let p = f64::from(i) * 3.0;
            boxes.push(BBox2D::new(p, p, p, p).unwrap());
        }
        let scores = scores_for(&boxes, 19);
        let classes = vec![0usize; boxes.len()];
        assert_eq!(
            nms_indices(&boxes, &scores, 0.5),
            reference::nms_indices(&boxes, &scores, 0.5)
        );
        assert_eq!(
            overlap_triples(&boxes, &classes, 0.3),
            reference::overlap_triples(&boxes, &classes, 0.3)
        );
    }
}
