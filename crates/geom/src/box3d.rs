use crate::{BBox2D, GeomError, Vec3};

/// An oriented 3D bounding box: center, size, and yaw about the up (Z) axis.
///
/// This is the box parameterization used by LIDAR object detectors such as
/// Second/PointPillars (the paper's AV models): the box is axis-aligned in
/// its own frame, rotated by `yaw` about Z, and translated to `center`.
///
/// # Example
///
/// ```
/// use omg_geom::{BBox3D, Vec3};
///
/// let b = BBox3D::new(Vec3::new(10.0, 0.0, 1.0), Vec3::new(4.0, 2.0, 1.6), 0.0)?;
/// assert_eq!(b.volume(), 4.0 * 2.0 * 1.6);
/// assert_eq!(b.corners().len(), 8);
/// # Ok::<(), omg_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox3D {
    center: Vec3,
    /// Full extents along the box's local (length, width, height) axes.
    size: Vec3,
    yaw: f64,
}

impl BBox3D {
    /// Creates an oriented 3D box.
    ///
    /// `size` holds full extents `(length, width, height)`; all must be
    /// non-negative and finite. `yaw` is the rotation about the up axis in
    /// radians.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidBox`] on negative or non-finite extents
    /// or a non-finite yaw/center.
    pub fn new(center: Vec3, size: Vec3, yaw: f64) -> Result<Self, GeomError> {
        let finite = [center.x, center.y, center.z, size.x, size.y, size.z, yaw]
            .iter()
            .all(|v| v.is_finite());
        if !finite {
            return Err(GeomError::InvalidBox {
                detail: "non-finite 3d box parameters".to_string(),
            });
        }
        if size.x < 0.0 || size.y < 0.0 || size.z < 0.0 {
            return Err(GeomError::InvalidBox {
                detail: format!("negative extents ({}, {}, {})", size.x, size.y, size.z),
            });
        }
        Ok(Self { center, size, yaw })
    }

    /// Box center in world coordinates.
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Full extents `(length, width, height)` in the box's local frame.
    pub fn size(&self) -> Vec3 {
        self.size
    }

    /// Yaw about the up axis, radians.
    pub fn yaw(&self) -> f64 {
        self.yaw
    }

    /// Box volume.
    pub fn volume(&self) -> f64 {
        self.size.x * self.size.y * self.size.z
    }

    /// The eight corners in world coordinates.
    ///
    /// Order: the four bottom corners counter-clockwise, then the four top
    /// corners in the same XY order.
    pub fn corners(&self) -> [Vec3; 8] {
        let hx = self.size.x / 2.0;
        let hy = self.size.y / 2.0;
        let hz = self.size.z / 2.0;
        let locals = [
            Vec3::new(hx, hy, -hz),
            Vec3::new(-hx, hy, -hz),
            Vec3::new(-hx, -hy, -hz),
            Vec3::new(hx, -hy, -hz),
            Vec3::new(hx, hy, hz),
            Vec3::new(-hx, hy, hz),
            Vec3::new(-hx, -hy, hz),
            Vec3::new(hx, -hy, hz),
        ];
        locals.map(|p| p.rotated_z(self.yaw) + self.center)
    }

    /// Translates the box by `delta`.
    pub fn translated(&self, delta: Vec3) -> BBox3D {
        BBox3D {
            center: self.center + delta,
            ..*self
        }
    }

    /// Returns a copy with the given yaw.
    pub fn with_yaw(&self, yaw: f64) -> BBox3D {
        BBox3D { yaw, ..*self }
    }

    /// Bird's-eye-view IoU using the axis-aligned footprints of the two
    /// boxes (an approximation that ignores yaw, adequate for the mostly
    /// axis-aligned traffic the AV simulator generates).
    pub fn iou_bev_aabb(&self, other: &BBox3D) -> f64 {
        // Fast reject before the corner math, per axis against the
        // footprint AABB half-extents: a box yawed by `yaw` has an
        // axis-aligned footprint of half-width (|sx·cos| + |sy·sin|)/2
        // and half-height (|sx·sin| + |sy·cos|)/2 — the same extents the
        // corner fold below recovers, so the comparison is against the
        // quantity the IoU is actually computed over (a radius-based
        // reject is unsound here: the footprint AABB of a yawed box
        // extends beyond the rotated rectangle's half-diagonal disk).
        // The relative margin keeps the reject conservative against
        // ulp-level rounding differences from the corner-derived
        // extents: a false accept falls through to the exact math, a
        // false reject would change results.
        let (sin_a, cos_a) = self.yaw.sin_cos();
        let (sin_b, cos_b) = other.yaw.sin_cos();
        let hxa = ((self.size.x * cos_a).abs() + (self.size.y * sin_a).abs()) / 2.0;
        let hya = ((self.size.x * sin_a).abs() + (self.size.y * cos_a).abs()) / 2.0;
        let hxb = ((other.size.x * cos_b).abs() + (other.size.y * sin_b).abs()) / 2.0;
        let hyb = ((other.size.x * sin_b).abs() + (other.size.y * cos_b).abs()) / 2.0;
        let dx = (self.center.x - other.center.x).abs();
        let dy = (self.center.y - other.center.y).abs();
        const MARGIN: f64 = 1.0 + 1e-9;
        if dx > (hxa + hxb) * MARGIN || dy > (hya + hyb) * MARGIN {
            return 0.0;
        }
        let fp = |b: &BBox3D| {
            let cs = b.corners();
            let xs = cs.iter().map(|c| c.x);
            let ys = cs.iter().map(|c| c.y);
            (
                xs.clone().fold(f64::INFINITY, omg_core::float::fmin),
                ys.clone().fold(f64::INFINITY, omg_core::float::fmin),
                xs.fold(f64::NEG_INFINITY, omg_core::float::fmax),
                ys.fold(f64::NEG_INFINITY, omg_core::float::fmax),
            )
        };
        let (ax1, ay1, ax2, ay2) = fp(self);
        let (bx1, by1, bx2, by2) = fp(other);
        let iw = (ax2.min(bx2) - ax1.max(bx1)).max(0.0);
        let ih = (ay2.min(by2) - ay1.max(by1)).max(0.0);
        let inter = iw * ih;
        let a = (ax2 - ax1) * (ay2 - ay1);
        let b = (bx2 - bx1) * (by2 - by1);
        let union = a + b - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Distance between box centers.
    pub fn center_distance(&self, other: &BBox3D) -> f64 {
        self.center.distance(&other.center)
    }

    /// The axis-aligned bird's-eye-view footprint: the tightest 2D box
    /// (world X × Y) containing all eight corners. This is the AABB the
    /// BEV spatial index files 3D boxes under, and the same footprint
    /// [`BBox3D::iou_bev_aabb`] intersects.
    pub fn footprint_aabb(&self) -> BBox2D {
        let cs = self.corners();
        let (mut x1, mut y1) = (f64::INFINITY, f64::INFINITY);
        let (mut x2, mut y2) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for c in cs {
            x1 = x1.min(c.x);
            y1 = y1.min(c.y);
            x2 = x2.max(c.x);
            y2 = y2.max(c.y);
        }
        // PANIC: min/max over the eight finite corners are ordered.
        BBox2D::new(x1, y1, x2, y2).expect("corner extrema are finite and ordered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(cx: f64, cy: f64, l: f64, w: f64) -> BBox3D {
        BBox3D::new(Vec3::new(cx, cy, 1.0), Vec3::new(l, w, 2.0), 0.0).unwrap()
    }

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(BBox3D::new(Vec3::ZERO, Vec3::new(-1.0, 1.0, 1.0), 0.0).is_err());
        assert!(BBox3D::new(Vec3::new(f64::NAN, 0.0, 0.0), Vec3::ZERO, 0.0).is_err());
        assert!(BBox3D::new(Vec3::ZERO, Vec3::ZERO, f64::INFINITY).is_err());
    }

    #[test]
    fn volume_and_accessors() {
        let b = boxed(0.0, 0.0, 4.0, 2.0);
        assert_eq!(b.volume(), 16.0);
        assert_eq!(b.size().x, 4.0);
        assert_eq!(b.yaw(), 0.0);
    }

    #[test]
    fn corners_axis_aligned() {
        let b = boxed(10.0, 20.0, 4.0, 2.0);
        let cs = b.corners();
        let min_x = cs.iter().map(|c| c.x).fold(f64::INFINITY, f64::min);
        let max_x = cs.iter().map(|c| c.x).fold(f64::NEG_INFINITY, f64::max);
        assert!((min_x - 8.0).abs() < 1e-12);
        assert!((max_x - 12.0).abs() < 1e-12);
        let min_z = cs.iter().map(|c| c.z).fold(f64::INFINITY, f64::min);
        assert!((min_z - 0.0).abs() < 1e-12);
    }

    #[test]
    fn corners_rotate_with_yaw() {
        let b = BBox3D::new(
            Vec3::ZERO,
            Vec3::new(4.0, 2.0, 2.0),
            std::f64::consts::FRAC_PI_2,
        )
        .unwrap();
        let cs = b.corners();
        // After a 90° yaw the long axis lies along Y.
        let max_y = cs.iter().map(|c| c.y).fold(f64::NEG_INFINITY, f64::max);
        assert!((max_y - 2.0).abs() < 1e-9);
        let max_x = cs.iter().map(|c| c.x).fold(f64::NEG_INFINITY, f64::max);
        assert!((max_x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bev_iou_identity_and_disjoint() {
        let a = boxed(0.0, 0.0, 4.0, 2.0);
        assert!((a.iou_bev_aabb(&a) - 1.0).abs() < 1e-12);
        let far = boxed(100.0, 100.0, 4.0, 2.0);
        assert_eq!(a.iou_bev_aabb(&far), 0.0);
    }

    #[test]
    fn bev_iou_known_overlap() {
        // Two 4x2 footprints offset by 2 along X: inter 2*2=4, union 8+8-4=12.
        let a = boxed(0.0, 0.0, 4.0, 2.0);
        let b = boxed(2.0, 0.0, 4.0, 2.0);
        assert!((a.iou_bev_aabb(&b) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_aabb_matches_corner_extent() {
        let b = boxed(10.0, 20.0, 4.0, 2.0);
        let fp = b.footprint_aabb();
        assert_eq!(
            (fp.x1(), fp.y1(), fp.x2(), fp.y2()),
            (8.0, 19.0, 12.0, 21.0)
        );
        // Rotated 90°: the long axis swings onto Y.
        let r = BBox3D::new(
            Vec3::new(10.0, 20.0, 1.0),
            Vec3::new(4.0, 2.0, 2.0),
            std::f64::consts::FRAC_PI_2,
        )
        .unwrap()
        .footprint_aabb();
        assert!((r.width() - 2.0).abs() < 1e-9);
        assert!((r.height() - 4.0).abs() < 1e-9);
    }

    /// IoU of the two footprint AABBs with no fast path at all — the
    /// quantity `iou_bev_aabb` must reproduce.
    fn brute_footprint_iou(a: &BBox3D, b: &BBox3D) -> f64 {
        let fa = a.footprint_aabb();
        let fb = b.footprint_aabb();
        let iw = (fa.x2().min(fb.x2()) - fa.x1().max(fb.x1())).max(0.0);
        let ih = (fa.y2().min(fb.y2()) - fa.y1().max(fb.y1())).max(0.0);
        let inter = iw * ih;
        let union = fa.width() * fa.height() + fb.width() * fb.height() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    #[test]
    fn bev_fast_reject_agrees_with_footprint_overlap() {
        // Just inside / outside the axis-aligned reject extents.
        let a = boxed(0.0, 0.0, 4.0, 2.0);
        let near = boxed(4.1, 0.0, 4.0, 2.0); // footprints disjoint, centers close
        assert_eq!(a.iou_bev_aabb(&near), 0.0);
        let overlapping = boxed(3.0, 0.0, 4.0, 2.0);
        assert!(a.iou_bev_aabb(&overlapping) > 0.0);
    }

    #[test]
    fn bev_fast_reject_sound_for_yawed_boxes() {
        // Regression: two 2×2 boxes at 45° yaw, centers (0,0) and
        // (2.7, 2.7). Their footprint AABBs are 2√2 wide, overlapping by
        // 2√2 − 2.7 ≈ 0.128 per axis — but both centers lie inside each
        // other's half-diagonal disk complement, so a radius-based
        // reject returned 0.0 here and silently changed BEV matching.
        let mk = |cx: f64, cy: f64| {
            BBox3D::new(
                Vec3::new(cx, cy, 1.0),
                Vec3::new(2.0, 2.0, 2.0),
                std::f64::consts::FRAC_PI_4,
            )
            .unwrap()
        };
        let a = mk(0.0, 0.0);
        let b = mk(2.7, 2.7);
        let iou = a.iou_bev_aabb(&b);
        assert!(iou > 0.0, "yawed overlap must not be fast-rejected");
        assert!((iou - brute_footprint_iou(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn bev_iou_matches_bruteforce_across_yaws_and_offsets() {
        // Sweep yaw pairs and center offsets around the reject boundary:
        // the fast path must never disagree with the no-fast-path
        // footprint IoU (in particular, every positive-IoU pair must
        // survive the reject).
        let yaws = [0.0, 0.3, std::f64::consts::FRAC_PI_4, 1.2, -0.7];
        let mut overlapping = 0u32;
        for &ya in &yaws {
            for &yb in &yaws {
                for step in 0..40 {
                    let d = f64::from(step) * 0.15;
                    let a = BBox3D::new(Vec3::ZERO, Vec3::new(4.0, 2.0, 2.0), ya).unwrap();
                    let b = BBox3D::new(Vec3::new(d, d * 0.5, 0.0), Vec3::new(3.0, 1.5, 2.0), yb)
                        .unwrap();
                    let brute = brute_footprint_iou(&a, &b);
                    assert!(
                        (a.iou_bev_aabb(&b) - brute).abs() < 1e-12,
                        "yaws ({ya}, {yb}), offset {d}: fast {} vs brute {brute}",
                        a.iou_bev_aabb(&b)
                    );
                    if brute > 0.0 {
                        overlapping += 1;
                    }
                }
            }
        }
        assert!(overlapping > 100, "sweep must exercise overlapping pairs");
    }

    #[test]
    fn translated_moves_center() {
        let b = boxed(0.0, 0.0, 4.0, 2.0).translated(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn center_distance_known() {
        let a = boxed(0.0, 0.0, 1.0, 1.0);
        let b = boxed(3.0, 4.0, 1.0, 1.0);
        assert_eq!(a.center_distance(&b), 5.0);
    }

    #[test]
    fn yawed_footprint_iou_is_symmetric_to_the_bit() {
        let a = BBox3D::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(4.0, 2.0, 2.0), 0.7).unwrap();
        let b = BBox3D::new(Vec3::new(1.0, 0.5, 1.0), Vec3::new(3.0, 2.0, 2.0), -0.4).unwrap();
        let ab = a.iou_bev_aabb(&b);
        assert!(ab > 0.0 && ab < 1.0, "boxes overlap partially: {ab}");
        // The corner folds are total-order reductions, so operand order
        // cannot perturb the footprint bounds even in the last bit.
        assert_eq!(ab.to_bits(), b.iou_bev_aabb(&a).to_bits());
    }
}
