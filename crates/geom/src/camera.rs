use crate::{BBox2D, BBox3D, GeomError, Vec3};

/// Intrinsic parameters of a pinhole camera.
///
/// `fx`/`fy` are focal lengths in pixels, `(cx, cy)` the principal point,
/// and `(width, height)` the image size in pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    /// Focal length along x, pixels.
    pub fx: f64,
    /// Focal length along y, pixels.
    pub fy: f64,
    /// Principal point x, pixels.
    pub cx: f64,
    /// Principal point y, pixels.
    pub cy: f64,
    /// Image width, pixels.
    pub width: f64,
    /// Image height, pixels.
    pub height: f64,
}

impl CameraIntrinsics {
    /// A simple symmetric camera with the principal point at the image
    /// center.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidCamera`] if `f`, `width`, or `height` is
    /// non-positive or non-finite.
    pub fn centered(f: f64, width: f64, height: f64) -> Result<Self, GeomError> {
        if !(f.is_finite() && width.is_finite() && height.is_finite())
            || f <= 0.0
            || width <= 0.0
            || height <= 0.0
        {
            return Err(GeomError::InvalidCamera {
                detail: format!(
                    "focal length and image size must be positive (f={f}, {width}x{height})"
                ),
            });
        }
        Ok(Self {
            fx: f,
            fy: f,
            cx: width / 2.0,
            cy: height / 2.0,
            width,
            height,
        })
    }
}

/// A pinhole camera with a pose in the world (ego) frame.
///
/// World convention: X forward, Y left, Z up (the ego frame of the AV
/// simulator). The camera sits at `position` with heading `yaw` (rotation
/// about Z; `yaw = 0` looks along +X). Camera-frame axes follow the
/// computer-vision convention: x right, y down, z forward.
///
/// This is the substrate for the paper's `agree` assertion, which "projects
/// the 3D boxes onto the 2D camera plane to check for consistency" between
/// the LIDAR and camera models (§2.2).
///
/// # Example
///
/// ```
/// use omg_geom::{CameraIntrinsics, CameraModel, Vec3};
///
/// let cam = CameraModel::new(CameraIntrinsics::centered(1000.0, 1920.0, 1080.0)?,
///                            Vec3::new(0.0, 0.0, 1.5), 0.0);
/// // A point 20 m straight ahead at camera height projects to the center.
/// let (u, v) = cam.project_point(Vec3::new(20.0, 0.0, 1.5)).unwrap();
/// assert!((u - 960.0).abs() < 1e-9 && (v - 540.0).abs() < 1e-9);
/// # Ok::<(), omg_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraModel {
    intrinsics: CameraIntrinsics,
    position: Vec3,
    yaw: f64,
    near: f64,
}

impl CameraModel {
    /// Default near-plane distance in meters; points closer than this are
    /// considered unprojectable.
    pub const DEFAULT_NEAR: f64 = 0.1;

    /// Creates a camera at `position` with heading `yaw` (radians about Z).
    pub fn new(intrinsics: CameraIntrinsics, position: Vec3, yaw: f64) -> Self {
        Self {
            intrinsics,
            position,
            yaw,
            near: Self::DEFAULT_NEAR,
        }
    }

    /// The camera intrinsics.
    pub fn intrinsics(&self) -> &CameraIntrinsics {
        &self.intrinsics
    }

    /// The camera position in the world frame.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Transforms a world point into the camera frame
    /// (x right, y down, z forward).
    pub fn world_to_camera(&self, p: Vec3) -> Vec3 {
        let rel = (p - self.position).rotated_z(-self.yaw);
        // World (fwd, left, up) -> camera (right, down, fwd).
        Vec3::new(-rel.y, -rel.z, rel.x)
    }

    /// Projects a world point to pixel coordinates `(u, v)`.
    ///
    /// Returns `None` for points behind (or within `near` of) the camera.
    /// The returned pixel may lie outside the image bounds; callers that
    /// need on-image points should check against
    /// [`CameraIntrinsics::width`]/[`CameraIntrinsics::height`].
    pub fn project_point(&self, p: Vec3) -> Option<(f64, f64)> {
        let c = self.world_to_camera(p);
        if c.z < self.near {
            return None;
        }
        let u = self.intrinsics.fx * (c.x / c.z) + self.intrinsics.cx;
        let v = self.intrinsics.fy * (c.y / c.z) + self.intrinsics.cy;
        Some((u, v))
    }

    /// Projects a 3D box onto the image plane as the axis-aligned hull of
    /// its visible corners, clipped to the image.
    ///
    /// Returns `None` if fewer than two corners are in front of the camera
    /// or if the projected hull falls entirely outside the image.
    pub fn project_box(&self, b: &BBox3D) -> Option<BBox2D> {
        let mut min_u = f64::INFINITY;
        let mut min_v = f64::INFINITY;
        let mut max_u = f64::NEG_INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        let mut visible = 0usize;
        for corner in b.corners() {
            if let Some((u, v)) = self.project_point(corner) {
                visible += 1;
                min_u = min_u.min(u);
                min_v = min_v.min(v);
                max_u = max_u.max(u);
                max_v = max_v.max(v);
            }
        }
        if visible < 2 {
            return None;
        }
        let hull = BBox2D::new(min_u, min_v, max_u, max_v).ok()?;
        let clipped = hull.clipped_to(self.intrinsics.width, self.intrinsics.height)?;
        if clipped.area() <= 0.0 {
            None
        } else {
            Some(clipped)
        }
    }

    /// Whether any part of the box projects into the image.
    pub fn sees(&self, b: &BBox3D) -> bool {
        self.project_box(b).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> CameraModel {
        CameraModel::new(
            CameraIntrinsics::centered(1000.0, 1920.0, 1080.0).unwrap(),
            Vec3::new(0.0, 0.0, 1.5),
            0.0,
        )
    }

    #[test]
    fn intrinsics_validation() {
        assert!(CameraIntrinsics::centered(0.0, 100.0, 100.0).is_err());
        assert!(CameraIntrinsics::centered(100.0, -1.0, 100.0).is_err());
        assert!(CameraIntrinsics::centered(f64::NAN, 100.0, 100.0).is_err());
    }

    #[test]
    fn point_straight_ahead_hits_center() {
        let (u, v) = cam().project_point(Vec3::new(10.0, 0.0, 1.5)).unwrap();
        assert!((u - 960.0).abs() < 1e-9);
        assert!((v - 540.0).abs() < 1e-9);
    }

    #[test]
    fn point_behind_is_rejected() {
        assert!(cam().project_point(Vec3::new(-5.0, 0.0, 1.5)).is_none());
        assert!(cam().project_point(Vec3::new(0.05, 0.0, 1.5)).is_none());
    }

    #[test]
    fn left_points_project_left_of_center() {
        // World +Y is left; image u should decrease.
        let (u, _) = cam().project_point(Vec3::new(10.0, 2.0, 1.5)).unwrap();
        assert!(u < 960.0);
        let (u2, _) = cam().project_point(Vec3::new(10.0, -2.0, 1.5)).unwrap();
        assert!(u2 > 960.0);
    }

    #[test]
    fn higher_points_project_above_center() {
        // World +Z is up; image v should decrease (v grows downward).
        let (_, v) = cam().project_point(Vec3::new(10.0, 0.0, 3.0)).unwrap();
        assert!(v < 540.0);
    }

    #[test]
    fn farther_objects_project_smaller() {
        let near = BBox3D::new(Vec3::new(10.0, 0.0, 1.0), Vec3::new(4.0, 2.0, 1.5), 0.0).unwrap();
        let far = BBox3D::new(Vec3::new(40.0, 0.0, 1.0), Vec3::new(4.0, 2.0, 1.5), 0.0).unwrap();
        let bn = cam().project_box(&near).unwrap();
        let bf = cam().project_box(&far).unwrap();
        assert!(bn.area() > bf.area());
    }

    #[test]
    fn box_behind_camera_is_invisible() {
        let b = BBox3D::new(Vec3::new(-20.0, 0.0, 1.0), Vec3::new(4.0, 2.0, 1.5), 0.0).unwrap();
        assert!(!cam().sees(&b));
    }

    #[test]
    fn box_far_to_the_side_is_clipped_out() {
        let b = BBox3D::new(Vec3::new(5.0, 200.0, 1.0), Vec3::new(4.0, 2.0, 1.5), 0.0).unwrap();
        assert!(cam().project_box(&b).is_none());
    }

    #[test]
    fn yawed_camera_sees_sideways() {
        let side_cam = CameraModel::new(
            CameraIntrinsics::centered(1000.0, 1920.0, 1080.0).unwrap(),
            Vec3::new(0.0, 0.0, 1.5),
            std::f64::consts::FRAC_PI_2, // looking along +Y (left)
        );
        let b = BBox3D::new(Vec3::new(0.0, 20.0, 1.0), Vec3::new(4.0, 2.0, 1.5), 0.0).unwrap();
        assert!(side_cam.sees(&b));
        // And the forward camera does not see it.
        assert!(!cam().sees(&b));
    }

    #[test]
    fn projection_is_consistent_under_camera_translation() {
        let c1 = cam();
        let c2 = CameraModel::new(*c1.intrinsics(), Vec3::new(5.0, 1.0, 1.5), 0.0);
        let p = Vec3::new(15.0, 1.0, 1.5); // 10 m ahead of c2, on its axis
        let (u, v) = c2.project_point(p).unwrap();
        assert!((u - 960.0).abs() < 1e-9);
        assert!((v - 540.0).abs() < 1e-9);
    }
}
