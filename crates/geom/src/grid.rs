//! Uniform spatial grid indexes over bounding boxes.
//!
//! Every geometric assertion in the paper — flicker (tracking), multibox
//! (duplicate clusters), and multi-sensor agreement — is a box-against-box
//! matcher, and a naive matcher scans all pairs: O(n²) IoU calls per
//! frame, which dominates runtime in crowded scenes (hundreds to
//! thousands of boxes per frame). A uniform grid cuts that to near-linear:
//! boxes are filed under every cell their AABB covers, and a query visits
//! only the cells its own AABB covers, so candidates are the boxes that
//! *could* overlap rather than all of them.
//!
//! Two indexes live here:
//!
//! * [`GridIndex2D`] — over [`BBox2D`] in image coordinates; the substrate
//!   of NMS, tracker association, duplicate-cluster detection, and fusion
//!   agreement (see [`crate::matchers`]).
//! * [`BevGridIndex`] — over [`BBox3D`] bird's-eye-view footprints
//!   ([`BBox3D::footprint_aabb`]), for LIDAR-style BEV matching.
//!
//! # Correctness argument
//!
//! Cell coordinates are a monotone, clamped function of world
//! coordinates, so two intersecting AABBs always cover intersecting cell
//! ranges — including boxes outside the grid bounds, which clamp onto the
//! border cells the same way queries do. [`GridIndex2D::candidates_overlapping`]
//! therefore returns **exactly** the indexed boxes whose AABB intersects
//! the query (the cell walk yields a superset; a final
//! [`BBox2D::intersects`] check trims it). Matchers built on it compute
//! the same IoU values on the surviving pairs as the pairwise reference
//! scans in [`crate::reference`] — the equivalence the spatial property
//! suite and the registry-driven engine tests pin bit-for-bit.

use crate::{BBox2D, BBox3D};

/// Hard cap on the number of grid cells, independent of input: beyond
/// this the cell size is scaled up so memory stays bounded even for
/// adversarial extents (one huge box next to thousands of tiny ones).
const MAX_CELLS: usize = 1 << 18;

/// A uniform grid index over [`BBox2D`]s.
///
/// Built either incrementally ([`GridIndex2D::new`] + [`GridIndex2D::insert`])
/// or in one shot from a slice ([`GridIndex2D::build`], which derives the
/// cell size from the median box extent). Queries return indices into the
/// insertion order, always sorted ascending and deduplicated, so every
/// consumer iterates candidates in a deterministic order.
///
/// # Example
///
/// ```
/// use omg_geom::{grid::GridIndex2D, BBox2D};
///
/// let boxes = vec![
///     BBox2D::new(0.0, 0.0, 10.0, 10.0)?,
///     BBox2D::new(5.0, 5.0, 15.0, 15.0)?,
///     BBox2D::new(100.0, 100.0, 110.0, 110.0)?,
/// ];
/// let grid = GridIndex2D::build(&boxes);
/// let mut hits = Vec::new();
/// grid.candidates_overlapping(&boxes[0], &mut hits);
/// assert_eq!(hits, vec![0, 1]); // the far box never shows up
/// # Ok::<(), omg_geom::GeomError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex2D {
    x0: f64,
    y0: f64,
    cell: f64,
    nx: usize,
    ny: usize,
    /// Per-cell buckets of box indices, row-major, each ascending.
    cells: Vec<Vec<u32>>,
    boxes: Vec<BBox2D>,
}

impl GridIndex2D {
    /// Creates an empty grid covering `bounds` with the given cell edge
    /// length. Boxes inserted (or queried) outside the bounds clamp onto
    /// the border cells, so the index stays exact for them too — only
    /// performance degrades, never correctness.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and positive.
    pub fn new(bounds: BBox2D, cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell size must be finite and positive, got {cell}"
        );
        let mut cell = cell;
        let mut nx = Self::axis_cells(bounds.width(), cell);
        let mut ny = Self::axis_cells(bounds.height(), cell);
        // Scale the cell up until the grid fits the memory cap. A single
        // pass is not enough: rescaling by sqrt(overshoot) assumes both
        // axes shrink with the cell, but a thin-strip bounds clamps one
        // axis at a single cell, leaving the other to absorb the whole
        // reduction — so recompute and re-scale until the product fits.
        // The product (and its f64 image for the scale) stays saturated
        // so extreme finite extents cannot overflow the multiply.
        // Terminates: the cell grows by at least 0.1% per iteration, and
        // once it exceeds the larger bounds span the grid is 1×1.
        while nx.saturating_mul(ny) > MAX_CELLS {
            let over = nx.saturating_mul(ny) as f64 / MAX_CELLS as f64;
            // With an axis already collapsed to one cell the shrink is
            // linear in the other axis, not split across both.
            let scale = if nx == 1 || ny == 1 {
                over
            } else {
                over.sqrt()
            };
            cell *= scale.max(1.0) * 1.001;
            nx = Self::axis_cells(bounds.width(), cell);
            ny = Self::axis_cells(bounds.height(), cell);
        }
        Self {
            x0: bounds.x1(),
            y0: bounds.y1(),
            cell,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            boxes: Vec::new(),
        }
    }

    /// Builds a grid over `boxes`, deriving bounds from their union and
    /// the cell edge from the **median box extent** (the larger of width
    /// and height, clamped so the cell count stays proportional to the
    /// box count). Median sizing keeps the common case — many
    /// similarly-sized objects — at a handful of candidates per query
    /// without letting one outlier box dictate the resolution.
    pub fn build(boxes: &[BBox2D]) -> Self {
        let Some(first) = boxes.first() else {
            // PANIC: constant unit box; the constructor cannot reject it.
            return Self::new(
                BBox2D::new(0.0, 0.0, 1.0, 1.0).expect("unit bounds are valid"),
                1.0,
            );
        };
        let bounds = boxes
            .iter()
            .skip(1)
            .fold(*first, |acc, b| acc.union_bounds(b));
        let mut extents: Vec<f64> = boxes.iter().map(|b| b.width().max(b.height())).collect();
        extents.sort_by(f64::total_cmp);
        // PANIC: boxes (hence extents) is non-empty here — the empty
        // case returned above — so len/2 < len.
        let median = extents[extents.len() / 2];
        // Degenerate inputs (all zero-area boxes) fall back to carving
        // the bounds into ~sqrt(n) cells per axis.
        let span = bounds.width().max(bounds.height()).max(1e-9);
        let fallback = span / (boxes.len() as f64).sqrt().max(1.0);
        let mut cell = if median > 0.0 { median } else { fallback };
        // Keep total cells O(n): a tiny median over a huge extent would
        // otherwise allocate a grid far larger than the input.
        let target_cells = (4 * boxes.len() + 64) as f64;
        let need = (bounds.width() / cell).max(1.0) * (bounds.height() / cell).max(1.0);
        if need > target_cells {
            cell *= (need / target_cells).sqrt();
        }
        let mut grid = Self::new(bounds, cell);
        for b in boxes {
            grid.insert(*b);
        }
        grid
    }

    /// Number of cells along an axis for `span` world units.
    fn axis_cells(span: f64, cell: f64) -> usize {
        ((span / cell).ceil() as usize).max(1)
    }

    /// The cell edge length actually in use (after any memory clamping).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Grid dimensions `(nx, ny)` in cells.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of indexed boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the index holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The indexed box with the given insertion id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: usize) -> &BBox2D {
        // PANIC: documented contract — callers pass insertion ids.
        &self.boxes[id]
    }

    /// Clamped cell coordinate of a world point.
    fn cell_of(&self, x: f64, y: f64) -> (usize, usize) {
        let cx = ((x - self.x0) / self.cell).floor();
        let cy = ((y - self.y0) / self.cell).floor();
        let cx = if cx.is_nan() { 0.0 } else { cx };
        let cy = if cy.is_nan() { 0.0 } else { cy };
        (
            (cx.max(0.0) as usize).min(self.nx - 1),
            (cy.max(0.0) as usize).min(self.ny - 1),
        )
    }

    /// Clamped cell range `[cx1..=cx2] × [cy1..=cy2]` covered by a box.
    fn cell_range(&self, b: &BBox2D) -> (usize, usize, usize, usize) {
        let (cx1, cy1) = self.cell_of(b.x1(), b.y1());
        let (cx2, cy2) = self.cell_of(b.x2(), b.y2());
        (cx1, cy1, cx2, cy2)
    }

    /// Inserts a box and returns its id (the insertion index). The box is
    /// filed under every cell its AABB covers.
    pub fn insert(&mut self, bbox: BBox2D) -> usize {
        let id = self.boxes.len() as u32;
        self.boxes.push(bbox);
        let (cx1, cy1, cx2, cy2) = self.cell_range(&bbox);
        // PANIC: cell_range clamps to cx < nx, cy < ny, and cells has
        // nx * ny slots.
        for cy in cy1..=cy2 {
            for cx in cx1..=cx2 {
                self.cells[cy * self.nx + cx].push(id);
            }
        }
        id as usize
    }

    /// Collects into `out` the ids of **exactly** the indexed boxes whose
    /// AABB intersects `query` (touching edges count), sorted ascending.
    /// `out` is cleared first; reuse it across queries to avoid
    /// reallocation.
    pub fn candidates_overlapping(&self, query: &BBox2D, out: &mut Vec<usize>) {
        out.clear();
        let (cx1, cy1, cx2, cy2) = self.cell_range(query);
        // Buckets hold ids in ascending order (boxes are filed in
        // insertion order), so a single-cell query is already sorted and
        // duplicate-free — the common case for queries no larger than a
        // cell, worth skipping the sort for.
        // PANIC: cell_range clamps to the grid dims, and bucket ids are
        // indices of `boxes` by construction (filed in insert/build).
        if cx1 == cx2 && cy1 == cy2 {
            for &id in &self.cells[cy1 * self.nx + cx1] {
                if self.boxes[id as usize].intersects(query) {
                    out.push(id as usize);
                }
            }
            return;
        }
        // PANIC: same clamped-range / filed-id argument.
        for cy in cy1..=cy2 {
            for cx in cx1..=cx2 {
                for &id in &self.cells[cy * self.nx + cx] {
                    if self.boxes[id as usize].intersects(query) {
                        out.push(id as usize);
                    }
                }
            }
        }
        // A box spanning several visited cells appears once per cell.
        out.sort_unstable();
        out.dedup();
    }

    /// Collects into `out` the ids of boxes whose **center** lies within
    /// `radius` (inclusive) of `(x, y)`, sorted ascending. `out` is
    /// cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn within_radius(&self, x: f64, y: f64, radius: f64, out: &mut Vec<usize>) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be finite and non-negative, got {radius}"
        );
        out.clear();
        let (cx1, cy1) = self.cell_of(x - radius, y - radius);
        let (cx2, cy2) = self.cell_of(x + radius, y + radius);
        let r2 = radius * radius;
        for cy in cy1..=cy2 {
            for cx in cx1..=cx2 {
                for &id in &self.cells[cy * self.nx + cx] {
                    let (bx, by) = self.boxes[id as usize].center();
                    let (dx, dy) = (bx - x, by - y);
                    if dx * dx + dy * dy <= r2 {
                        out.push(id as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// The `k` indexed boxes whose centers are nearest to `(x, y)`, by
    /// ascending `(distance, id)` — an expanding-radius search over the
    /// grid. Returns fewer than `k` ids only when the index holds fewer
    /// than `k` boxes.
    pub fn nearest(&self, x: f64, y: f64, k: usize) -> Vec<usize> {
        let want = k.min(self.boxes.len());
        if want == 0 {
            return Vec::new();
        }
        let mut hits: Vec<usize> = Vec::new();
        let mut radius = self.cell.max(1e-9);
        loop {
            self.within_radius(x, y, radius, &mut hits);
            if hits.len() >= want {
                break;
            }
            // No box center can be farther from the query than the grid
            // diagonal plus its own offset, but centers of clamped
            // out-of-bounds boxes can sit arbitrarily far out — keep
            // doubling until enough turn up (guaranteed: want <= len and
            // every center is at a finite distance).
            radius *= 2.0;
            if radius == f64::INFINITY {
                // Fall back to taking everything.
                hits = (0..self.boxes.len()).collect();
                break;
            }
        }
        let mut scored: Vec<(f64, usize)> = hits
            .into_iter()
            .map(|id| {
                let (bx, by) = self.boxes[id].center();
                let (dx, dy) = (bx - x, by - y);
                (dx * dx + dy * dy, id)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(want);
        scored.into_iter().map(|(_, id)| id).collect()
    }
}

/// A bird's-eye-view grid index over [`BBox3D`]s: each box is filed under
/// its axis-aligned XY footprint ([`BBox3D::footprint_aabb`]), the same
/// footprint [`BBox3D::iou_bev_aabb`] intersects — so candidate lookup is
/// exact for BEV AABB matching just as [`GridIndex2D`] is for 2D.
#[derive(Debug, Clone)]
pub struct BevGridIndex {
    grid: GridIndex2D,
}

impl BevGridIndex {
    /// Builds a BEV index over `boxes` (cell size from the median
    /// footprint extent, as in [`GridIndex2D::build`]).
    pub fn build(boxes: &[BBox3D]) -> Self {
        let footprints: Vec<BBox2D> = boxes.iter().map(BBox3D::footprint_aabb).collect();
        Self {
            grid: GridIndex2D::build(&footprints),
        }
    }

    /// Inserts a box and returns its id (the insertion index).
    pub fn insert(&mut self, bbox: &BBox3D) -> usize {
        self.grid.insert(bbox.footprint_aabb())
    }

    /// Number of indexed boxes.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Whether the index holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Ids of exactly the indexed boxes whose BEV footprint intersects
    /// `query`'s, sorted ascending (see
    /// [`GridIndex2D::candidates_overlapping`]).
    pub fn candidates_overlapping(&self, query: &BBox3D, out: &mut Vec<usize>) {
        self.grid
            .candidates_overlapping(&query.footprint_aabb(), out);
    }

    /// Ids of boxes whose footprint center lies within `radius` of
    /// `(x, y)` in the ground plane, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn within_radius(&self, x: f64, y: f64, radius: f64, out: &mut Vec<usize>) {
        self.grid.within_radius(x, y, radius, out);
    }

    /// The `k` boxes whose footprint centers are nearest to `(x, y)`.
    pub fn nearest(&self, x: f64, y: f64, k: usize) -> Vec<usize> {
        self.grid.nearest(x, y, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    fn bb(x: f64, y: f64, s: f64) -> BBox2D {
        BBox2D::new(x, y, x + s, y + s).unwrap()
    }

    /// Brute-force reference for candidate queries.
    fn brute_overlapping(boxes: &[BBox2D], q: &BBox2D) -> Vec<usize> {
        (0..boxes.len())
            .filter(|&i| boxes[i].intersects(q))
            .collect()
    }

    #[test]
    fn empty_grid_answers_empty() {
        let grid = GridIndex2D::build(&[]);
        assert!(grid.is_empty());
        let mut out = vec![7usize];
        grid.candidates_overlapping(&bb(0.0, 0.0, 10.0), &mut out);
        assert!(out.is_empty(), "query must clear the scratch vec");
        assert!(grid.nearest(0.0, 0.0, 3).is_empty());
    }

    #[test]
    fn candidates_are_exactly_the_intersecting_boxes() {
        let boxes = vec![
            bb(0.0, 0.0, 10.0),
            bb(5.0, 5.0, 10.0),
            bb(9.9, 0.0, 5.0),
            bb(50.0, 50.0, 10.0),
            bb(-30.0, -30.0, 5.0),
        ];
        let grid = GridIndex2D::build(&boxes);
        let mut out = Vec::new();
        for q in &boxes {
            grid.candidates_overlapping(q, &mut out);
            assert_eq!(out, brute_overlapping(&boxes, q));
        }
        // A query box nobody touches.
        grid.candidates_overlapping(&bb(200.0, 200.0, 1.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn out_of_bounds_boxes_clamp_but_stay_findable() {
        let mut grid = GridIndex2D::new(bb(0.0, 0.0, 100.0), 10.0);
        let inside = bb(5.0, 5.0, 10.0);
        let outside = bb(500.0, 500.0, 10.0); // far past the bounds
        grid.insert(inside);
        grid.insert(outside);
        let mut out = Vec::new();
        grid.candidates_overlapping(&bb(499.0, 499.0, 5.0), &mut out);
        assert_eq!(out, vec![1]);
        grid.candidates_overlapping(&inside, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn box_straddling_many_cells_reported_once() {
        let mut grid = GridIndex2D::new(bb(0.0, 0.0, 100.0), 5.0);
        let big = BBox2D::new(0.0, 0.0, 100.0, 100.0).unwrap();
        grid.insert(big);
        let mut out = Vec::new();
        grid.candidates_overlapping(&big, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn zero_area_boxes_index_and_query() {
        let boxes = vec![bb(5.0, 5.0, 0.0), bb(5.0, 5.0, 0.0), bb(80.0, 80.0, 0.0)];
        let grid = GridIndex2D::build(&boxes);
        let mut out = Vec::new();
        grid.candidates_overlapping(&bb(0.0, 0.0, 10.0), &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn build_derives_a_sane_cell_size() {
        let boxes: Vec<BBox2D> = (0..100)
            .map(|i| bb(f64::from(i) * 3.0, 0.0, 10.0))
            .collect();
        let grid = GridIndex2D::build(&boxes);
        assert!(grid.cell_size() > 0.0);
        let (nx, ny) = grid.dims();
        assert!(nx * ny <= 4 * boxes.len() + 64 + nx + ny, "cells stay O(n)");
        assert_eq!(grid.len(), 100);
        assert_eq!(grid.get(3), &boxes[3]);
    }

    #[test]
    fn adversarial_extent_is_memory_bounded() {
        // One huge box, many tiny ones: the naive grid would want
        // billions of cells.
        let mut boxes = vec![BBox2D::new(0.0, 0.0, 1e7, 1e7).unwrap()];
        for i in 0..50 {
            boxes.push(bb(f64::from(i) * 0.001, 0.0, 0.01));
        }
        let grid = GridIndex2D::build(&boxes);
        let (nx, ny) = grid.dims();
        assert!(nx * ny <= super::MAX_CELLS);
        let mut out = Vec::new();
        grid.candidates_overlapping(&boxes[0], &mut out);
        assert_eq!(out.len(), 51, "the huge box overlaps everything");
    }

    #[test]
    fn anisotropic_extent_is_memory_bounded() {
        // A thin strip: ny clamps to one cell, so the whole reduction
        // must land on the x axis. The single-pass sqrt clamp left this
        // at ~sqrt(nx·MAX_CELLS) cells — a GB-scale allocation.
        let boxes: Vec<BBox2D> = (0..128)
            .map(|i| {
                let x = f64::from(i) * 1e16;
                BBox2D::new(x, 0.0, x + 0.5, 0.5).unwrap()
            })
            .collect();
        let grid = GridIndex2D::build(&boxes);
        let (nx, ny) = grid.dims();
        assert!(
            nx.saturating_mul(ny) <= super::MAX_CELLS,
            "thin strip must respect the cap, got {nx}x{ny}"
        );
        // The boxes are pairwise disjoint: each query finds itself only.
        let mut out = Vec::new();
        for (i, q) in boxes.iter().enumerate() {
            grid.candidates_overlapping(q, &mut out);
            assert_eq!(out, vec![i]);
        }
    }

    #[test]
    fn extreme_bounds_do_not_overflow_cell_count() {
        // Both axes saturate their cell counts at usize::MAX before the
        // clamp; re-multiplying them unsaturated overflowed (debug
        // panic, release wrap). The clamp must stay saturated and still
        // land under the cap.
        let grid = GridIndex2D::new(BBox2D::new(0.0, 0.0, 1e300, 1e300).unwrap(), 1e-300);
        let (nx, ny) = grid.dims();
        assert!(nx.saturating_mul(ny) <= super::MAX_CELLS);
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let boxes: Vec<BBox2D> = (0..30)
            .map(|i| bb(f64::from(i % 6) * 20.0, f64::from(i / 6) * 20.0, 8.0))
            .collect();
        let grid = GridIndex2D::build(&boxes);
        let mut out = Vec::new();
        grid.within_radius(50.0, 50.0, 35.0, &mut out);
        let brute: Vec<usize> = (0..boxes.len())
            .filter(|&i| {
                let (cx, cy) = boxes[i].center();
                ((cx - 50.0).powi(2) + (cy - 50.0).powi(2)).sqrt() <= 35.0
            })
            .collect();
        assert_eq!(out, brute);
        assert!(!out.is_empty());
    }

    #[test]
    fn nearest_returns_k_by_distance_then_id() {
        let boxes = vec![
            bb(0.0, 0.0, 2.0),
            bb(10.0, 0.0, 2.0),
            bb(30.0, 0.0, 2.0),
            bb(10.0, 0.0, 2.0),
        ];
        let grid = GridIndex2D::build(&boxes);
        // Query at the center of box 1 (and its duplicate 3).
        assert_eq!(grid.nearest(11.0, 1.0, 2), vec![1, 3]);
        assert_eq!(grid.nearest(11.0, 1.0, 3), vec![1, 3, 0]);
        // More than the population: everything, nearest-first.
        assert_eq!(grid.nearest(11.0, 1.0, 99), vec![1, 3, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_rejected() {
        GridIndex2D::new(bb(0.0, 0.0, 10.0), 0.0);
    }

    #[test]
    fn bev_index_matches_footprint_intersection() {
        let mk = |x: f64, y: f64, yaw: f64| {
            BBox3D::new(Vec3::new(x, y, 1.0), Vec3::new(4.0, 2.0, 2.0), yaw).unwrap()
        };
        let boxes = vec![
            mk(0.0, 0.0, 0.0),
            mk(3.0, 0.0, 0.5),
            mk(50.0, 0.0, 0.0),
            mk(0.0, 3.0, 1.2),
        ];
        let bev = BevGridIndex::build(&boxes);
        assert_eq!(bev.len(), 4);
        assert!(!bev.is_empty());
        let mut out = Vec::new();
        for q in &boxes {
            bev.candidates_overlapping(q, &mut out);
            let fq = q.footprint_aabb();
            let brute: Vec<usize> = (0..boxes.len())
                .filter(|&i| boxes[i].footprint_aabb().intersects(&fq))
                .collect();
            assert_eq!(out, brute);
        }
        // Radius/k-NN delegate to the footprint centers.
        bev.within_radius(0.0, 0.0, 4.0, &mut out);
        assert_eq!(out, vec![0, 1, 3]);
        assert_eq!(bev.nearest(49.0, 0.0, 1), vec![2]);
        // Incremental insert.
        let mut bev2 = BevGridIndex::build(&boxes[..1]);
        assert_eq!(bev2.insert(&boxes[1]), 1);
        bev2.candidates_overlapping(&boxes[0], &mut out);
        assert_eq!(out, vec![0, 1]);
    }
}
