//! Non-maximum suppression over scored boxes.
//!
//! Object detectors emit many overlapping candidate boxes; NMS keeps the
//! highest-scoring box in each overlapping cluster. The simulated detector
//! in `omg-sim` uses this, and the paper's `multibox` assertion is precisely
//! a check for clusters that *survive* NMS when they should not ("three
//! boxes highly overlap", §5.1).

use crate::BBox2D;

/// Indices of the boxes kept by greedy non-maximum suppression.
///
/// Boxes are processed in descending `scores` order; a box is suppressed if
/// its IoU with an already-kept box exceeds `iou_threshold`. Returned
/// indices refer to the input slice and are sorted by descending score.
///
/// # Panics
///
/// Panics if `boxes` and `scores` have different lengths.
pub fn nms_indices(boxes: &[BBox2D], scores: &[f64], iou_threshold: f64) -> Vec<usize> {
    assert_eq!(
        boxes.len(),
        scores.len(),
        "boxes and scores must be the same length"
    );
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    // Descending by score; ties broken by index for determinism.
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        let suppressed = kept
            .iter()
            .any(|&k| boxes[k].iou(&boxes[i]) > iou_threshold);
        if !suppressed {
            kept.push(i);
        }
    }
    kept
}

/// Class-aware NMS: suppression only happens within the same class label.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn nms_indices_per_class(
    boxes: &[BBox2D],
    scores: &[f64],
    classes: &[usize],
    iou_threshold: f64,
) -> Vec<usize> {
    assert_eq!(boxes.len(), scores.len());
    assert_eq!(boxes.len(), classes.len());
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        let suppressed = kept
            .iter()
            .any(|&k| classes[k] == classes[i] && boxes[k].iou(&boxes[i]) > iou_threshold);
        if !suppressed {
            kept.push(i);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, s: f64) -> BBox2D {
        BBox2D::new(x, y, x + s, y + s).unwrap()
    }

    #[test]
    fn keeps_single_box() {
        let boxes = vec![bb(0.0, 0.0, 10.0)];
        assert_eq!(nms_indices(&boxes, &[0.9], 0.5), vec![0]);
    }

    #[test]
    fn suppresses_duplicate_cluster() {
        // Three near-identical boxes; only the highest score survives.
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.5, 0.5, 10.0), bb(1.0, 0.0, 10.0)];
        let scores = [0.7, 0.9, 0.8];
        let kept = nms_indices(&boxes, &scores, 0.5);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn keeps_disjoint_boxes() {
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(100.0, 100.0, 10.0)];
        let kept = nms_indices(&boxes, &[0.5, 0.6], 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0], 1); // higher score first
    }

    #[test]
    fn threshold_controls_suppression() {
        // IoU between these two is 25/175 ≈ 0.143.
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(5.0, 5.0, 10.0)];
        assert_eq!(nms_indices(&boxes, &[0.9, 0.8], 0.1).len(), 1);
        assert_eq!(nms_indices(&boxes, &[0.9, 0.8], 0.2).len(), 2);
    }

    #[test]
    fn class_aware_keeps_cross_class_overlaps() {
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.5, 0.5, 10.0)];
        let scores = [0.9, 0.8];
        let same = nms_indices_per_class(&boxes, &scores, &[0, 0], 0.5);
        assert_eq!(same.len(), 1);
        let cross = nms_indices_per_class(&boxes, &scores, &[0, 1], 0.5);
        assert_eq!(cross.len(), 2);
    }

    #[test]
    fn deterministic_on_score_ties() {
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.0, 0.0, 10.0)];
        let kept = nms_indices(&boxes, &[0.5, 0.5], 0.5);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        nms_indices(&[bb(0.0, 0.0, 1.0)], &[0.5, 0.6], 0.5);
    }

    #[test]
    fn empty_input() {
        assert!(nms_indices(&[], &[], 0.5).is_empty());
    }
}
