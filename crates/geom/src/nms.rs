//! Non-maximum suppression over scored boxes.
//!
//! Object detectors emit many overlapping candidate boxes; NMS keeps the
//! highest-scoring box in each overlapping cluster. The simulated detector
//! in `omg-sim` uses this, and the paper's `multibox` assertion is precisely
//! a check for clusters that *survive* NMS when they should not ("three
//! boxes highly overlap", §5.1).
//!
//! Both entry points dispatch through [`crate::matchers`]: crowded inputs
//! take the grid-indexed path, tiny or degenerate ones the O(n²) scan in
//! [`crate::reference`] — with bit-for-bit identical results either way.

use crate::{matchers, BBox2D};

/// Indices of the boxes kept by greedy non-maximum suppression.
///
/// Boxes are processed in descending `scores` order (NaN-safe total order,
/// ties broken by index); a box is suppressed if its IoU with an
/// already-kept box exceeds `iou_threshold`. Returned indices refer to the
/// input slice and are sorted by descending score.
///
/// # Panics
///
/// Panics if `boxes` and `scores` have different lengths.
pub fn nms_indices(boxes: &[BBox2D], scores: &[f64], iou_threshold: f64) -> Vec<usize> {
    matchers::nms_indices(boxes, scores, iou_threshold)
}

/// Class-aware NMS: suppression only happens within the same class label.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn nms_indices_per_class(
    boxes: &[BBox2D],
    scores: &[f64],
    classes: &[usize],
    iou_threshold: f64,
) -> Vec<usize> {
    matchers::nms_indices_per_class(boxes, scores, classes, iou_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, s: f64) -> BBox2D {
        BBox2D::new(x, y, x + s, y + s).unwrap()
    }

    #[test]
    fn keeps_single_box() {
        let boxes = vec![bb(0.0, 0.0, 10.0)];
        assert_eq!(nms_indices(&boxes, &[0.9], 0.5), vec![0]);
    }

    #[test]
    fn suppresses_duplicate_cluster() {
        // Three near-identical boxes; only the highest score survives.
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.5, 0.5, 10.0), bb(1.0, 0.0, 10.0)];
        let scores = [0.7, 0.9, 0.8];
        let kept = nms_indices(&boxes, &scores, 0.5);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn keeps_disjoint_boxes() {
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(100.0, 100.0, 10.0)];
        let kept = nms_indices(&boxes, &[0.5, 0.6], 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0], 1); // higher score first
    }

    #[test]
    fn threshold_controls_suppression() {
        // IoU between these two is 25/175 ≈ 0.143.
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(5.0, 5.0, 10.0)];
        assert_eq!(nms_indices(&boxes, &[0.9, 0.8], 0.1).len(), 1);
        assert_eq!(nms_indices(&boxes, &[0.9, 0.8], 0.2).len(), 2);
    }

    #[test]
    fn class_aware_keeps_cross_class_overlaps() {
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.5, 0.5, 10.0)];
        let scores = [0.9, 0.8];
        let same = nms_indices_per_class(&boxes, &scores, &[0, 0], 0.5);
        assert_eq!(same.len(), 1);
        let cross = nms_indices_per_class(&boxes, &scores, &[0, 1], 0.5);
        assert_eq!(cross.len(), 2);
    }

    #[test]
    fn deterministic_on_score_ties() {
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.0, 0.0, 10.0)];
        let kept = nms_indices(&boxes, &[0.5, 0.5], 0.5);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn nan_scores_are_deterministic() {
        // NaN sorts like an infinite score under total order: the NaN box
        // wins the cluster, deterministically, instead of depending on an
        // unspecified comparator.
        let boxes = vec![bb(0.0, 0.0, 10.0), bb(0.5, 0.5, 10.0)];
        let kept = nms_indices(&boxes, &[0.9, f64::NAN], 0.5);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        nms_indices(&[bb(0.0, 0.0, 1.0)], &[0.5, 0.6], 0.5);
    }

    #[test]
    fn empty_input() {
        assert!(nms_indices(&[], &[], 0.5).is_empty());
    }

    #[test]
    fn crowded_input_exercises_indexed_path() {
        // Enough boxes to clear the INDEX_MIN cutoff; indexed and
        // reference must agree exactly.
        let boxes: Vec<BBox2D> = (0..192)
            .map(|i| bb(f64::from(i % 12) * 8.0, f64::from(i / 12) * 8.0, 10.0))
            .collect();
        let scores: Vec<f64> = (0..192)
            .map(|i| f64::from((i * 37) % 192) / 192.0)
            .collect();
        let classes: Vec<usize> = (0..192).map(|i| i % 4).collect();
        assert_eq!(
            nms_indices(&boxes, &scores, 0.3),
            crate::reference::nms_indices(&boxes, &scores, 0.3)
        );
        assert_eq!(
            nms_indices_per_class(&boxes, &scores, &classes, 0.3),
            crate::reference::nms_indices_per_class(&boxes, &scores, &classes, 0.3)
        );
    }
}
