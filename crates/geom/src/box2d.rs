use crate::GeomError;

/// An axis-aligned 2D bounding box in image coordinates.
///
/// Coordinates follow the usual computer-vision convention: `x` grows right,
/// `y` grows down, and the box spans `[x1, x2] × [y1, y2]` with `x1 <= x2`
/// and `y1 <= y2`. Degenerate (zero-area) boxes are permitted; invalid
/// (inverted or non-finite) boxes are rejected at construction.
///
/// # Example
///
/// ```
/// use omg_geom::BBox2D;
///
/// let b = BBox2D::new(2.0, 3.0, 6.0, 9.0)?;
/// assert_eq!(b.width(), 4.0);
/// assert_eq!(b.height(), 6.0);
/// assert_eq!(b.area(), 24.0);
/// # Ok::<(), omg_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox2D {
    x1: f64,
    y1: f64,
    x2: f64,
    y2: f64,
}

impl BBox2D {
    /// Creates a box from its min/max corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidBox`] if any coordinate is non-finite or
    /// if `x1 > x2` or `y1 > y2`.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Result<Self, GeomError> {
        if ![x1, y1, x2, y2].iter().all(|v| v.is_finite()) {
            return Err(GeomError::InvalidBox {
                detail: format!("non-finite coordinates ({x1}, {y1}, {x2}, {y2})"),
            });
        }
        if x1 > x2 || y1 > y2 {
            return Err(GeomError::InvalidBox {
                detail: format!("inverted corners ({x1}, {y1}) > ({x2}, {y2})"),
            });
        }
        Ok(Self { x1, y1, x2, y2 })
    }

    /// Creates a box from its center, width, and height.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidBox`] if the resulting corners are invalid
    /// (e.g. negative `w` or `h`, or non-finite inputs).
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Result<Self, GeomError> {
        Self::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
    }

    /// Minimum x coordinate (left edge).
    pub fn x1(&self) -> f64 {
        self.x1
    }

    /// Minimum y coordinate (top edge).
    pub fn y1(&self) -> f64 {
        self.y1
    }

    /// Maximum x coordinate (right edge).
    pub fn x2(&self) -> f64 {
        self.x2
    }

    /// Maximum y coordinate (bottom edge).
    pub fn y2(&self) -> f64 {
        self.y2
    }

    /// Box width (`x2 - x1`), always non-negative.
    pub fn width(&self) -> f64 {
        self.x2 - self.x1
    }

    /// Box height (`y2 - y1`), always non-negative.
    pub fn height(&self) -> f64 {
        self.y2 - self.y1
    }

    /// Box area, always non-negative.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)
    }

    /// Whether the two boxes intersect at all (touching edges count).
    ///
    /// This is the cheap fast-reject every matcher runs before the area
    /// math: four comparisons, no arithmetic. Disjoint pairs — the vast
    /// majority in a crowded scene — never reach [`BBox2D::iou`]'s
    /// multiply/divide path.
    #[inline]
    pub fn intersects(&self, other: &BBox2D) -> bool {
        self.x1 <= other.x2 && other.x1 <= self.x2 && self.y1 <= other.y2 && other.y1 <= self.y2
    }

    /// Intersection box of `self` and `other`, or `None` if they are
    /// disjoint (touching edges count as an empty, `None` intersection only
    /// when the overlap has zero area on both axes is still returned as a
    /// degenerate box; strictly separated boxes return `None`).
    pub fn intersection(&self, other: &BBox2D) -> Option<BBox2D> {
        let x1 = self.x1.max(other.x1);
        let y1 = self.y1.max(other.y1);
        let x2 = self.x2.min(other.x2);
        let y2 = self.y2.min(other.y2);
        if x1 > x2 || y1 > y2 {
            None
        } else {
            Some(BBox2D { x1, y1, x2, y2 })
        }
    }

    /// Area of the intersection of `self` and `other` (zero if disjoint).
    pub fn intersection_area(&self, other: &BBox2D) -> f64 {
        self.intersection(other).map_or(0.0, |b| b.area())
    }

    /// Intersection-over-union in `[0, 1]`.
    ///
    /// Two degenerate (zero-area) boxes have IoU `0`, including with
    /// themselves; this matches the convention used by detection benchmarks
    /// where zero-area boxes can never match anything.
    pub fn iou(&self, other: &BBox2D) -> f64 {
        if !self.intersects(other) {
            return 0.0;
        }
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Intersection-over-area-of-self: what fraction of `self` is covered by
    /// `other`. Useful for occlusion reasoning; asymmetric by design.
    pub fn overlap_fraction(&self, other: &BBox2D) -> f64 {
        let a = self.area();
        if a <= 0.0 {
            0.0
        } else {
            self.intersection_area(other) / a
        }
    }

    /// Whether the point `(x, y)` lies inside the box (inclusive).
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.x1 && x <= self.x2 && y >= self.y1 && y <= self.y2
    }

    /// Whether `other` lies entirely within `self` (inclusive).
    pub fn contains_box(&self, other: &BBox2D) -> bool {
        other.x1 >= self.x1 && other.x2 <= self.x2 && other.y1 >= self.y1 && other.y2 <= self.y2
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union_bounds(&self, other: &BBox2D) -> BBox2D {
        BBox2D {
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
            x2: self.x2.max(other.x2),
            y2: self.y2.max(other.y2),
        }
    }

    /// Translates the box by `(dx, dy)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the translation produces non-finite
    /// coordinates.
    pub fn translated(&self, dx: f64, dy: f64) -> BBox2D {
        debug_assert!(dx.is_finite() && dy.is_finite());
        BBox2D {
            x1: self.x1 + dx,
            y1: self.y1 + dy,
            x2: self.x2 + dx,
            y2: self.y2 + dy,
        }
    }

    /// Scales the box about its center by `factor` (must be non-negative).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> BBox2D {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        let (cx, cy) = self.center();
        let w = self.width() * factor;
        let h = self.height() * factor;
        BBox2D {
            x1: cx - w / 2.0,
            y1: cy - h / 2.0,
            x2: cx + w / 2.0,
            y2: cy + h / 2.0,
        }
    }

    /// Clips the box to the rectangle `[0, w] × [0, h]`, returning `None` if
    /// the clipped box is empty (fully outside).
    pub fn clipped_to(&self, w: f64, h: f64) -> Option<BBox2D> {
        let frame = BBox2D {
            x1: 0.0,
            y1: 0.0,
            x2: w,
            y2: h,
        };
        self.intersection(&frame)
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`), interpolating each corner independently.
    ///
    /// Used by the weak-label correction rule that fills in flickered-out
    /// boxes by "averaging the locations of the object on nearby video
    /// frames" (paper §4.2).
    pub fn lerp(&self, other: &BBox2D, t: f64) -> BBox2D {
        let l = |a: f64, b: f64| a + (b - a) * t;
        BBox2D {
            x1: l(self.x1, other.x1),
            y1: l(self.y1, other.y1),
            x2: l(self.x2, other.x2),
            y2: l(self.y2, other.y2),
        }
    }

    /// Euclidean distance between box centers.
    pub fn center_distance(&self, other: &BBox2D) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x1: f64, y1: f64, x2: f64, y2: f64) -> BBox2D {
        BBox2D::new(x1, y1, x2, y2).unwrap()
    }

    #[test]
    fn new_rejects_inverted_and_nonfinite() {
        assert!(BBox2D::new(1.0, 0.0, 0.0, 1.0).is_err());
        assert!(BBox2D::new(0.0, 1.0, 1.0, 0.0).is_err());
        assert!(BBox2D::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
        assert!(BBox2D::new(0.0, 0.0, f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn degenerate_boxes_are_allowed() {
        let b = bb(1.0, 1.0, 1.0, 1.0);
        assert_eq!(b.area(), 0.0);
        assert_eq!(b.iou(&b), 0.0);
    }

    #[test]
    fn intersects_matches_intersection_some() {
        let a = bb(0.0, 0.0, 10.0, 10.0);
        assert!(a.intersects(&bb(5.0, 5.0, 15.0, 15.0)));
        assert!(
            a.intersects(&bb(10.0, 0.0, 20.0, 10.0)),
            "touching edges intersect"
        );
        assert!(
            a.intersects(&bb(3.0, 3.0, 4.0, 4.0)),
            "containment intersects"
        );
        assert!(!a.intersects(&bb(10.01, 0.0, 20.0, 10.0)));
        assert!(!a.intersects(&bb(0.0, -5.0, 10.0, -0.01)));
        // Degenerate boxes still intersect anything covering their point.
        let point = bb(5.0, 5.0, 5.0, 5.0);
        assert!(a.intersects(&point));
        assert!(point.intersects(&a));
    }

    #[test]
    fn iou_identity() {
        let b = bb(0.0, 0.0, 4.0, 4.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = bb(0.0, 0.0, 1.0, 1.0);
        let b = bb(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn iou_known_value() {
        // 10x10 boxes offset by 5 in each axis: inter 25, union 175.
        let a = bb(0.0, 0.0, 10.0, 10.0);
        let b = bb(5.0, 5.0, 15.0, 15.0);
        assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn touching_boxes_have_zero_iou_but_some_intersection_struct() {
        let a = bb(0.0, 0.0, 1.0, 1.0);
        let b = bb(1.0, 0.0, 2.0, 1.0);
        // Shared edge: degenerate intersection, zero area.
        let inter = a.intersection(&b).unwrap();
        assert_eq!(inter.area(), 0.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn overlap_fraction_is_asymmetric() {
        let small = bb(0.0, 0.0, 1.0, 1.0);
        let big = bb(0.0, 0.0, 10.0, 10.0);
        assert!((small.overlap_fraction(&big) - 1.0).abs() < 1e-12);
        assert!((big.overlap_fraction(&small) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn contains_point_and_box() {
        let b = bb(0.0, 0.0, 10.0, 10.0);
        assert!(b.contains_point(0.0, 0.0));
        assert!(b.contains_point(10.0, 10.0));
        assert!(!b.contains_point(10.01, 5.0));
        assert!(b.contains_box(&bb(1.0, 1.0, 9.0, 9.0)));
        assert!(!b.contains_box(&bb(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn union_bounds_covers_both() {
        let a = bb(0.0, 0.0, 1.0, 1.0);
        let b = bb(5.0, -2.0, 6.0, 3.0);
        let u = a.union_bounds(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
        assert_eq!(u.x1(), 0.0);
        assert_eq!(u.y1(), -2.0);
        assert_eq!(u.x2(), 6.0);
        assert_eq!(u.y2(), 3.0);
    }

    #[test]
    fn translated_and_scaled() {
        let b = bb(0.0, 0.0, 2.0, 4.0);
        let t = b.translated(1.0, -1.0);
        assert_eq!(t.x1(), 1.0);
        assert_eq!(t.y1(), -1.0);
        let s = b.scaled(2.0);
        assert_eq!(s.width(), 4.0);
        assert_eq!(s.height(), 8.0);
        assert_eq!(s.center(), b.center());
        let z = b.scaled(0.0);
        assert_eq!(z.area(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_rejects_negative() {
        bb(0.0, 0.0, 1.0, 1.0).scaled(-1.0);
    }

    #[test]
    fn clipped_to_frame() {
        let b = bb(-5.0, -5.0, 5.0, 5.0);
        let c = b.clipped_to(100.0, 100.0).unwrap();
        assert_eq!((c.x1(), c.y1(), c.x2(), c.y2()), (0.0, 0.0, 5.0, 5.0));
        let outside = bb(-10.0, -10.0, -5.0, -5.0);
        assert!(outside.clipped_to(100.0, 100.0).is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = bb(0.0, 0.0, 2.0, 2.0);
        let b = bb(10.0, 10.0, 14.0, 14.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.lerp(&b, 0.5);
        assert_eq!((m.x1(), m.y1()), (5.0, 5.0));
        assert_eq!((m.x2(), m.y2()), (8.0, 8.0));
    }

    #[test]
    fn center_distance_known() {
        let a = bb(0.0, 0.0, 2.0, 2.0); // center (1,1)
        let b = bb(3.0, 5.0, 5.0, 7.0); // center (4,6)
        assert!((a.center_distance(&b) - (9.0f64 + 25.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn from_center_round_trip() {
        let b = BBox2D::from_center(5.0, 5.0, 4.0, 2.0).unwrap();
        assert_eq!(b.center(), (5.0, 5.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert!(BBox2D::from_center(0.0, 0.0, -1.0, 1.0).is_err());
    }
}
