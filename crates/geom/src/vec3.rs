use std::ops::{Add, Mul, Neg, Sub};

/// A 3D vector/point with `f64` components.
///
/// Used for world-space object positions in the AV simulator and by the
/// pinhole camera model.
///
/// # Example
///
/// ```
/// use omg_geom::Vec3;
///
/// let v = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v + Vec3::new(1.0, 0.0, 0.0), Vec3::new(4.0, 4.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (forward, in the AV ego frame).
    pub x: f64,
    /// Y component (left, in the AV ego frame).
    pub y: f64,
    /// Z component (up, in the AV ego frame).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    pub fn dot(&self, other: &Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(&self, other: &Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Vec3) -> f64 {
        (*self - *other).norm()
    }

    /// Unit vector in the same direction, or `None` for the zero vector.
    pub fn normalized(&self) -> Option<Vec3> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Vec3 {
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            })
        }
    }

    /// Rotates the vector about the Z (up) axis by `yaw` radians
    /// (counter-clockwise when viewed from +Z).
    pub fn rotated_z(&self, yaw: f64) -> Vec3 {
        let (s, c) = yaw.sin_cos();
        Vec3 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
            z: self.z,
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(&y), 0.0);
        assert_eq!(x.cross(&y), z);
        assert_eq!(y.cross(&x), -z);
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm(), 13.0);
        assert_eq!(v.norm_sq(), 169.0);
        assert_eq!(Vec3::ZERO.distance(&v), 13.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Vec3::new(0.0, 3.0, 4.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn rotation_quarter_turn() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let r = x.rotated_z(std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec3::new(2.0, -3.0, 5.0);
        for k in 0..8 {
            let r = v.rotated_z(k as f64 * 0.7);
            assert!((r.norm() - v.norm()).abs() < 1e-9);
        }
    }
}
