//! O(n²) pairwise reference matchers.
//!
//! These are the original all-pairs scans the spatial index replaced.
//! They stay alive — and exported — for three reasons:
//!
//! 1. **Equivalence oracle.** The property suite and the registry-driven
//!    engine tests assert that every indexed matcher in
//!    [`crate::matchers`] produces bit-for-bit identical output to the
//!    function of the same name here.
//! 2. **Benchmark baseline.** `exp_throughput --crowded` times both
//!    backends so the asymptotic win is a recorded curve, not a claim.
//! 3. **Fallback.** The indexed paths delegate here for tiny inputs
//!    (grid build costs more than it saves) and for degenerate
//!    thresholds where "overlaps above the threshold" no longer implies
//!    "intersects" and grid candidate lookup would be unsound.
//!
//! This module is the **only** place outside test code where raw
//! pairwise IoU loops are allowed; `omg-lint` pins every `.iou(` /
//! `.iou_bev_aabb(` call site outside `crates/geom/` to a counted
//! ledger so O(n²) scans cannot silently reappear elsewhere.

use crate::BBox2D;

/// Indices `0..scores.len()` sorted by descending score, ties broken by
/// ascending index.
///
/// Uses [`f64::total_cmp`], so the order is total and deterministic even
/// for NaN scores (NaN sorts first, like an infinite score) — both NMS
/// backends and the tracker's greedy matcher share this ordering, which
/// is what makes their outputs comparable bit for bit.
pub fn score_order(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // PANIC: a and b are drawn from 0..scores.len() just above.
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

/// Pairwise-scan greedy NMS: the reference for
/// [`crate::nms::nms_indices`]. Suppresses a box whose IoU with an
/// already-kept box exceeds `iou_threshold`; returns kept indices in
/// descending-score order.
///
/// # Panics
///
/// Panics if `boxes` and `scores` have different lengths.
pub fn nms_indices(boxes: &[BBox2D], scores: &[f64], iou_threshold: f64) -> Vec<usize> {
    assert_eq!(
        boxes.len(),
        scores.len(),
        "boxes and scores must be the same length"
    );
    let mut kept: Vec<usize> = Vec::new();
    // PANIC: i and k come from score_order, a permutation of 0..len;
    // boxes/scores lengths are asserted equal above.
    for i in score_order(scores) {
        let suppressed = kept
            .iter()
            .any(|&k| boxes[k].iou(&boxes[i]) > iou_threshold);
        if !suppressed {
            kept.push(i);
        }
    }
    kept
}

/// Pairwise-scan class-aware greedy NMS: the reference for
/// [`crate::nms::nms_indices_per_class`].
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn nms_indices_per_class(
    boxes: &[BBox2D],
    scores: &[f64],
    classes: &[usize],
    iou_threshold: f64,
) -> Vec<usize> {
    assert_eq!(
        boxes.len(),
        scores.len(),
        "boxes and scores must be the same length"
    );
    assert_eq!(
        boxes.len(),
        classes.len(),
        "boxes and classes must be the same length"
    );
    let mut kept: Vec<usize> = Vec::new();
    // PANIC: i and k come from score_order, a permutation of 0..len;
    // boxes/scores/classes lengths are asserted equal above.
    for i in score_order(scores) {
        let suppressed = kept
            .iter()
            .any(|&k| classes[k] == classes[i] && boxes[k].iou(&boxes[i]) > iou_threshold);
        if !suppressed {
            kept.push(i);
        }
    }
    kept
}

/// All `(iou, anchor_idx, query_idx)` pairs with IoU at or above
/// `iou_threshold`, anchors outer / queries inner (so the list is sorted
/// by ascending `(anchor_idx, query_idx)`). The reference for
/// [`crate::matchers::iou_pairs`]; the tracker's greedy association is
/// built on this.
pub fn iou_pairs(
    anchors: &[BBox2D],
    queries: &[BBox2D],
    iou_threshold: f64,
) -> Vec<(f64, usize, usize)> {
    let mut pairs = Vec::new();
    for (ai, a) in anchors.iter().enumerate() {
        for (qi, q) in queries.iter().enumerate() {
            let iou = a.iou(q);
            if iou >= iou_threshold {
                pairs.push((iou, ai, qi));
            }
        }
    }
    pairs
}

/// Counts triples `i < j < k` of same-class boxes that pairwise overlap
/// at or above `iou_threshold` — the paper's `multibox` condition
/// ("three boxes highly overlap"). The reference for
/// [`crate::matchers::overlap_triples`].
///
/// # Panics
///
/// Panics if `boxes` and `classes` have different lengths.
pub fn overlap_triples(boxes: &[BBox2D], classes: &[usize], iou_threshold: f64) -> usize {
    assert_eq!(
        boxes.len(),
        classes.len(),
        "boxes and classes must be the same length"
    );
    let n = boxes.len();
    let mut triples = 0;
    // PANIC: i, j, k all range inside 0..n = boxes.len(), and the
    // classes length is asserted equal above.
    for i in 0..n {
        for j in (i + 1)..n {
            if classes[i] != classes[j] || boxes[i].iou(&boxes[j]) < iou_threshold {
                continue;
            }
            // PANIC: k < n = boxes.len() = classes.len().
            for k in (j + 1)..n {
                if classes[k] == classes[i]
                    && boxes[i].iou(&boxes[k]) >= iou_threshold
                    && boxes[j].iou(&boxes[k]) >= iou_threshold
                {
                    triples += 1;
                }
            }
        }
    }
    triples
}

/// Counts the queries that overlap **no** target at or above
/// `iou_threshold` — the paper's `no_overlap` sensor-agreement predicate,
/// counted over a batch. The reference for
/// [`crate::matchers::count_unmatched`].
pub fn count_unmatched(queries: &[BBox2D], targets: &[BBox2D], iou_threshold: f64) -> usize {
    queries
        .iter()
        .filter(|q| targets.iter().all(|t| q.iou(t) < iou_threshold))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, s: f64) -> BBox2D {
        BBox2D::new(x, y, x + s, y + s).unwrap()
    }

    #[test]
    fn score_order_is_total_and_deterministic() {
        assert_eq!(score_order(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
        // Ties break by index.
        assert_eq!(score_order(&[0.5, 0.5, 0.5]), vec![0, 1, 2]);
        // NaN sorts like an infinite score, deterministically.
        let with_nan = score_order(&[0.5, f64::NAN, 0.9, f64::NAN]);
        assert_eq!(with_nan, vec![1, 3, 2, 0]);
        assert!(score_order(&[]).is_empty());
    }

    #[test]
    fn iou_pairs_order_and_threshold() {
        let anchors = vec![bb(0.0, 0.0, 10.0), bb(100.0, 0.0, 10.0)];
        let queries = vec![
            bb(1.0, 0.0, 10.0),
            bb(101.0, 0.0, 10.0),
            bb(50.0, 50.0, 10.0),
        ];
        let pairs = iou_pairs(&anchors, &queries, 0.3);
        let idx: Vec<(usize, usize)> = pairs.iter().map(|p| (p.1, p.2)).collect();
        assert_eq!(idx, vec![(0, 0), (1, 1)]);
        assert!(pairs.iter().all(|p| p.0 >= 0.3));
    }

    #[test]
    fn overlap_triples_matches_combinatorics() {
        let cluster = vec![bb(0.0, 0.0, 10.0), bb(1.0, 0.0, 10.0), bb(2.0, 0.0, 10.0)];
        let classes = vec![0, 0, 0];
        assert_eq!(overlap_triples(&cluster, &classes, 0.3), 1);
        assert_eq!(overlap_triples(&cluster, &[0, 1, 0], 0.3), 0);
        assert_eq!(overlap_triples(&[], &[], 0.3), 0);
    }

    #[test]
    fn count_unmatched_counts() {
        let queries = vec![bb(0.0, 0.0, 10.0), bb(50.0, 0.0, 10.0)];
        let targets = vec![bb(1.0, 0.0, 10.0)];
        assert_eq!(count_unmatched(&queries, &targets, 0.3), 1);
        assert_eq!(count_unmatched(&queries, &[], 0.3), 2);
        assert_eq!(count_unmatched(&[], &targets, 0.3), 0);
    }
}
