//! Geometry substrate for the `omg` workspace.
//!
//! This crate provides the 2D/3D geometric primitives that every sensor
//! simulator, tracker, assertion, and evaluation metric in the workspace is
//! built on:
//!
//! * [`BBox2D`] — axis-aligned 2D bounding boxes with intersection-over-union
//!   ([`BBox2D::iou`]), the primitive behind detection matching, the
//!   `multibox`/`flicker`/`appear` assertions, and mAP evaluation.
//! * [`BBox3D`] — oriented 3D boxes (center, size, yaw) as produced by the
//!   simulated LIDAR detector.
//! * [`Vec3`] — minimal 3D vector math.
//! * [`CameraModel`] — a pinhole camera with pose, used to project 3D boxes
//!   onto the 2D image plane for the paper's `agree` assertion
//!   ("projects the 3D boxes onto the 2D camera plane to check for
//!   consistency", §2.2).
//! * [`nms`] — non-maximum suppression over scored boxes.
//! * [`grid`] — uniform spatial grid indexes ([`grid::GridIndex2D`],
//!   [`grid::BevGridIndex`]) that make box matching sub-quadratic.
//! * [`matchers`] — the indexed matchers every assertion routes through
//!   (NMS, association pairs, overlap triples, agreement counts), with a
//!   process-wide [`matchers::MatchBackend`] toggle.
//! * [`reference`] — the preserved O(n²) pairwise scans: equivalence
//!   oracle, benchmark baseline, and small-input fallback.
//!
//! # Example
//!
//! ```
//! use omg_geom::BBox2D;
//!
//! let a = BBox2D::new(0.0, 0.0, 10.0, 10.0)?;
//! let b = BBox2D::new(5.0, 5.0, 15.0, 15.0)?;
//! assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-12);
//! # Ok::<(), omg_geom::GeomError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod box2d;
mod box3d;
mod camera;
mod error;
pub mod grid;
pub mod matchers;
pub mod nms;
pub mod reference;
mod vec3;

pub use box2d::BBox2D;
pub use box3d::BBox3D;
pub use camera::{CameraIntrinsics, CameraModel};
pub use error::GeomError;
pub use vec3::Vec3;
