use std::error::Error;
use std::fmt;

/// Error type for geometric constructions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// A bounding box was constructed with `min > max` on some axis or with
    /// non-finite coordinates.
    InvalidBox {
        /// Human-readable description of the offending coordinates.
        detail: String,
    },
    /// A camera was constructed with a non-positive focal length or image
    /// size.
    InvalidCamera {
        /// Human-readable description of the offending parameter.
        detail: String,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvalidBox { detail } => write!(f, "invalid bounding box: {detail}"),
            GeomError::InvalidCamera { detail } => write!(f, "invalid camera: {detail}"),
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = GeomError::InvalidBox {
            detail: "x1 > x2".to_string(),
        };
        let s = e.to_string();
        assert!(s.starts_with("invalid bounding box"));
        let e = GeomError::InvalidCamera {
            detail: "fx <= 0".to_string(),
        };
        assert!(e.to_string().contains("camera"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
