use omg_active::{ActiveLearner, CandidatePool};
use omg_core::runtime::ThreadPool;
use omg_core::stream::Prepare;
use omg_core::AssertionSet;
use rand::rngs::StdRng;

use crate::{stream_score_scenario, Scenario};

/// Claims the selected pool positions from a learner's (ascending)
/// `unlabeled` index list: maps positions to pool indices, sorts and
/// **deduplicates** them (a selection strategy may emit the same position
/// twice; labeling the same sample twice would double-count the labeling
/// budget and double-weight the sample in training), removes them from
/// `unlabeled` via binary search over the sorted claims, and returns the
/// claimed pool indices in ascending order.
///
/// # Panics
///
/// Panics if a selection position is out of range of `unlabeled`.
pub fn claim_selection(unlabeled: &mut Vec<usize>, selection: &[usize]) -> Vec<usize> {
    let mut chosen: Vec<usize> = selection.iter().map(|&p| unlabeled[p]).collect();
    chosen.sort_unstable();
    chosen.dedup();
    unlabeled.retain(|i| chosen.binary_search(i).is_err());
    chosen
}

/// The one active learner every trainable scenario shares — the
/// [`ActiveLearner`] the round loop ([`omg_active::run_rounds`]) drives
/// for Figures 4, 5, and 9, replacing the per-scenario learner structs
/// the use cases used to duplicate.
///
/// Each round: run the model over the pool, stream-score the resulting
/// items (one preparation per window, shared by the whole assertion
/// set), project severities/uncertainties onto the still-unlabeled
/// positions, then label the claimed selection via the scenario's
/// labeling hook and retrain via its training hook.
pub struct ScenarioLearner<Sc: Scenario> {
    scenario: Sc,
    model: Sc::Model,
    stream_set: AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: Box<dyn Prepare<Sc::Sample, Prepared = Sc::Prep>>,
    /// Pool positions still unlabeled, ascending.
    unlabeled: Vec<usize>,
    labels: Sc::Labels,
    runtime: ThreadPool,
}

impl<Sc: Scenario> ScenarioLearner<Sc> {
    /// Creates a learner around a scenario and its pretrained model,
    /// scoring pools sequentially by default (override with
    /// [`ScenarioLearner::with_runtime`]; results are identical at any
    /// thread count, only wall-clock changes).
    ///
    /// # Panics
    ///
    /// Panics if the scenario does not train (monitoring-only scenarios
    /// have no labeling or evaluation semantics to drive rounds with).
    pub fn new(scenario: Sc, model: Sc::Model) -> Self {
        assert!(
            scenario.trains(),
            "scenario {:?} is monitoring-only: it cannot drive active-learning rounds",
            scenario.name()
        );
        let stream_set = scenario.prepared_set();
        let preparer = scenario.preparer();
        let unlabeled = (0..scenario.pool_len()).collect();
        let labels = scenario.initial_labels();
        Self {
            scenario,
            model,
            stream_set,
            preparer,
            unlabeled,
            labels,
            runtime: ThreadPool::sequential(),
        }
    }

    /// Overrides the scoring runtime.
    #[must_use]
    pub fn with_runtime(mut self, runtime: ThreadPool) -> Self {
        self.runtime = runtime;
        self
    }

    /// The scenario under the learner.
    pub fn scenario(&self) -> &Sc {
        &self.scenario
    }

    /// The current model.
    pub fn model(&self) -> &Sc::Model {
        &self.model
    }

    /// Number of pool positions still unlabeled.
    pub fn unlabeled_len(&self) -> usize {
        self.unlabeled.len()
    }
}

impl<Sc: Scenario> ActiveLearner for ScenarioLearner<Sc> {
    fn pool(&mut self) -> CandidatePool {
        // Score the whole stream once (windows need neighbours), then
        // project onto the unlabeled positions.
        let items = self.scenario.run_model(&self.model);
        let (sev, unc) = stream_score_scenario(
            &self.scenario,
            &self.stream_set,
            &self.preparer,
            &items,
            &self.runtime,
        );
        let severities = self
            .unlabeled
            .iter()
            .map(|&i| sev.row(i).to_vec())
            .collect();
        let uncertainties = self.unlabeled.iter().map(|&i| unc[i]).collect();
        CandidatePool::new(severities, uncertainties).expect("consistent pool")
    }

    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng) {
        for &i in &claim_selection(&mut self.unlabeled, selection) {
            self.scenario.label_into(&mut self.labels, i);
        }
        self.scenario.train(&mut self.model, &self.labels, rng);
    }

    fn evaluate(&mut self) -> f64 {
        self.scenario.evaluate(&self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{ToyModel, ToyScenario};
    use rand::SeedableRng;

    #[test]
    fn claim_selection_dedups_and_removes() {
        let mut unlabeled: Vec<usize> = vec![10, 20, 30, 40, 50];
        // Positions 1 and 3, with 1 repeated: the repeat must not claim
        // (or count) twice.
        let chosen = claim_selection(&mut unlabeled, &[3, 1, 1]);
        assert_eq!(chosen, vec![20, 40]);
        assert_eq!(unlabeled, vec![10, 30, 50]);
        // Claiming nothing changes nothing.
        assert_eq!(claim_selection(&mut unlabeled, &[]), Vec::<usize>::new());
        assert_eq!(unlabeled, vec![10, 30, 50]);
    }

    #[test]
    fn learner_rounds_shrink_the_pool_and_label_once() {
        let mut learner = ScenarioLearner::new(ToyScenario::new(30), ToyModel::default());
        let mut rng = StdRng::seed_from_u64(3);
        let pool = learner.pool();
        assert_eq!(pool.len(), 30);
        // Duplicate positions claim (and label) once.
        learner.label_and_train(&[0, 5, 0, 9], &mut rng);
        assert_eq!(learner.unlabeled_len(), 27);
        // The toy's metric counts labeled positions.
        assert_eq!(learner.evaluate(), 3.0);
        assert_eq!(learner.pool().len(), 27);
    }

    #[test]
    #[should_panic(expected = "monitoring-only")]
    fn monitoring_only_scenarios_cannot_build_learners() {
        ScenarioLearner::new(ToyScenario::monitoring_only(5), ToyModel::default());
    }
}
