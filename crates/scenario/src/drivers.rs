//! The generic scoring drivers every scenario runs through.
//!
//! Both paths return, per stream position, the dense per-assertion
//! severity vector and the model uncertainty — the inputs the selection
//! strategies consume — and both are deterministic, input-order merged,
//! and bit-for-bit identical to each other at any thread count (the
//! registry-driven conformance suite enforces this for every registered
//! scenario).

use omg_core::runtime::ThreadPool;
use omg_core::stream::{score_stream_chunked, Prepare, SlidingSpans, StreamScorer, WindowSpan};
use omg_core::{AssertionId, AssertionSet, Severity};

use crate::Scenario;

/// Batch-scores a scenario's item stream: for each position, the clamped
/// window of `window_half` items of context becomes a sample checked
/// with the **self-contained** assertion set (each assertion re-derives
/// what it needs — the reference semantics, and what the paper's Python
/// implementation does). Work fans out across the pool's workers and
/// merges in stream order.
pub fn score_scenario<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample>,
    items: &[Sc::Item],
    pool: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let half = scenario.window_half();
    let n = items.len();
    pool.map_indexed(n, |i| {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sample = scenario.make_sample(&items[lo..hi], i - lo);
        let severities: Vec<f64> = set
            .check_all(&sample)
            .iter()
            .map(|&(_, s)| s.value())
            .collect();
        (severities, scenario.uncertainty(&items[i]))
    })
    .into_iter()
    .unzip()
}

/// An incremental scorer over one chunk of a scenario's item stream:
/// counts items one at a time through an index-emitting slider, borrows
/// each completed window **in place** from the caller's item slice (no
/// item is ever cloned — the slider stores indices, not items), prepares
/// it once, and checks the prepared assertion set against the shared
/// artifact through a severity-row buffer reused across every center.
/// This one type replaces the per-scenario stream scorers the use cases
/// used to hand-roll.
struct ScenarioStreamScorer<'a, Sc: Scenario> {
    scenario: &'a Sc,
    set: &'a AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: &'a (dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + 'a),
    items: &'a [Sc::Item],
    /// Global index of the first item this scorer is fed (chunk start);
    /// the slider's spans are relative to it.
    offset: usize,
    spans: SlidingSpans,
    /// The `(id, severity)` row reused across centers.
    row: Vec<(AssertionId, Severity)>,
}

/// Scores **one** clamped window on the incremental path: builds the
/// sample, runs the shared preparation exactly once, checks the prepared
/// set into the caller's reusable `(id, severity)` row, and returns the
/// dense severity vector plus the uncertainty of `window[center]`.
///
/// This is the single scoring kernel behind both
/// [`stream_score_scenario`] (which feeds it slider-emitted spans) and
/// the multi-tenant service's per-session shards — sharing it is what
/// makes the service path bit-for-bit equal to the streaming path *by
/// construction*, not by coincidence.
pub fn score_window<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: &(dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + '_),
    window: &[Sc::Item],
    center: usize,
    row: &mut Vec<(AssertionId, Severity)>,
) -> (Vec<f64>, f64) {
    let sample = scenario.make_sample(window, center);
    let prep = preparer.prepare(&sample);
    set.check_all_prepared_into(&sample, &prep, row);
    let severities = row.iter().map(|&(_, s)| s.value()).collect();
    (severities, scenario.uncertainty(&window[center]))
}

impl<Sc: Scenario> ScenarioStreamScorer<'_, Sc> {
    fn score(&mut self, span: WindowSpan) -> (Vec<f64>, f64) {
        let window = &self.items[self.offset + span.start..self.offset + span.end];
        score_window(
            self.scenario,
            self.set,
            self.preparer,
            window,
            span.center(),
            &mut self.row,
        )
    }
}

impl<Sc: Scenario> StreamScorer for ScenarioStreamScorer<'_, Sc> {
    type Output = (Vec<f64>, f64);

    fn push(&mut self, index: usize) -> Option<(Vec<f64>, f64)> {
        debug_assert_eq!(index, self.offset + self.spans.pushed(), "gapless feed");
        self.spans.push().map(|s| self.score(s))
    }

    fn finish(mut self) -> Vec<(Vec<f64>, f64)> {
        // Swap the slider out so `self` stays borrowable for `score`
        // (`finish` consumes the slider by design).
        let spans = std::mem::replace(&mut self.spans, SlidingSpans::new(0));
        spans.finish().map(|s| self.score(s)).collect()
    }
}

/// Stream-scores a scenario's item stream: the incremental counterpart
/// of [`score_scenario`], computing identical severities and
/// uncertainties with **zero item copies** (windows are borrowed slices
/// of `items`, described by an index-emitting slider) and **one**
/// preparation per window (shared by every assertion in the prepared
/// set) instead of one per assertion. Chunks of the stream fan out
/// across the pool's workers with `window_half` items of re-fed margin
/// and merge in stream order — bit-for-bit equal to the batch path at
/// any thread count.
///
/// The preparer is a parameter (rather than taken from the scenario) so
/// callers can wrap it — the conformance suite passes a
/// [`omg_core::stream::CountingPrepare`] probe to measure the
/// prepare-once invariant.
pub fn stream_score_scenario<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: &(dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + '_),
    items: &[Sc::Item],
    pool: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let half = scenario.window_half();
    score_stream_chunked(items.len(), half, pool, |offset| ScenarioStreamScorer {
        scenario,
        set,
        preparer,
        items,
        offset,
        spans: SlidingSpans::new(half),
        row: Vec::with_capacity(set.len()),
    })
    .into_iter()
    .unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{ToyModel, ToyScenario};
    use omg_core::stream::CountingPrepare;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn stream_equals_batch_on_the_toy_scenario() {
        let sc = ToyScenario::new(37);
        let items = sc.run_model(&ToyModel::default());
        let want = score_scenario(&sc, &sc.assertion_set(), &items, &ThreadPool::sequential());
        let set = sc.prepared_set();
        let preparer = sc.preparer();
        for threads in [1, 2, 8] {
            let got =
                stream_score_scenario(&sc, &set, &preparer, &items, &ThreadPool::new(threads));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn streaming_prepares_once_per_window_sequentially() {
        let sc = ToyScenario::new(20);
        let items = sc.run_model(&ToyModel::default());
        let counter = Arc::new(AtomicUsize::new(0));
        let probe = CountingPrepare::new(sc.preparer(), counter.clone());
        let set = sc.prepared_set();
        let (sev, _) = stream_score_scenario(&sc, &set, &probe, &items, &ThreadPool::sequential());
        assert_eq!(sev.len(), items.len());
        assert_eq!(counter.load(Ordering::SeqCst), items.len());
    }

    /// The zero-copy contract, measured: scoring a stream through either
    /// driver performs **zero** item clones — at every thread count, and
    /// at the clamped edges (empty stream, streams shorter than one full
    /// window, and sizes forcing parallel chunk boundaries) — while
    /// staying bit-for-bit equal to the batch reference.
    #[test]
    fn stream_scoring_performs_zero_item_clones() {
        use crate::tests_support::CloneProbeScenario;
        for n in [0usize, 1, 3, 4, 5, 37, 97] {
            let sc = CloneProbeScenario::new(n);
            let items = sc.run_model(&ToyModel::default());
            assert_eq!(sc.item_clones(), 0, "run_model must not clone (n={n})");
            let want = score_scenario(&sc, &sc.assertion_set(), &items, &ThreadPool::sequential());
            assert_eq!(sc.item_clones(), 0, "batch driver must not clone (n={n})");
            let set = sc.prepared_set();
            let preparer = sc.preparer();
            for threads in [1, 2, 8] {
                let got =
                    stream_score_scenario(&sc, &set, &preparer, &items, &ThreadPool::new(threads));
                assert_eq!(got, want, "n={n} threads={threads}");
            }
            assert_eq!(
                sc.item_clones(),
                0,
                "steady-state streaming must not clone items (n={n})"
            );
        }
    }

    #[test]
    fn empty_stream_scores_empty() {
        let sc = ToyScenario::new(0);
        let items: Vec<i64> = Vec::new();
        let (sev, unc) =
            score_scenario(&sc, &sc.assertion_set(), &items, &ThreadPool::sequential());
        assert!(sev.is_empty() && unc.is_empty());
        let set = sc.prepared_set();
        let preparer = sc.preparer();
        let (ssev, sunc) = stream_score_scenario(&sc, &set, &preparer, &items, &ThreadPool::new(4));
        assert!(ssev.is_empty() && sunc.is_empty());
    }
}
