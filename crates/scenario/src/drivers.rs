//! The generic scoring drivers every scenario runs through.
//!
//! Both paths return, per stream position, the dense per-assertion
//! severity row — collected **columnar**, as one contiguous
//! [`SeverityMatrix`] — and the model uncertainty: the inputs the
//! selection strategies consume. Both are deterministic, input-order
//! merged, and bit-for-bit identical to each other at any thread count
//! (the registry-driven conformance suite enforces this for every
//! registered scenario).

use omg_core::runtime::ThreadPool;
use omg_core::stream::{
    score_rows_chunked, score_stream_rows, Prepare, RowStreamScorer, SlidingSpans, WindowSpan,
};
use omg_core::{AssertionSet, SeverityMatrix};

use crate::Scenario;

/// Batch-scores a scenario's item stream: for each position, the clamped
/// window of `window_half` items of context becomes a sample checked
/// with the **self-contained** assertion set (each assertion re-derives
/// what it needs — the reference semantics, and what the paper's Python
/// implementation does). Work fans out across the pool's workers, each
/// chunk filling a contiguous severity block, and merges in stream order
/// by range-copy.
pub fn score_scenario<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample>,
    items: &[Sc::Item],
    pool: &ThreadPool,
) -> (SeverityMatrix, Vec<f64>) {
    let half = scenario.window_half();
    let n = items.len();
    // PANIC: score_rows_chunked feeds i < n, and lo <= i < hi <= n by
    // the saturating/clamped arithmetic above each use.
    score_rows_chunked(n, set.len(), pool, |i, row| {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sample = scenario.make_sample(&items[lo..hi], i - lo);
        row.clear();
        row.extend(set.check_all(&sample).iter().map(|&(_, s)| s.value()));
        scenario.uncertainty(&items[i])
    })
}

/// An incremental scorer over one chunk of a scenario's item stream:
/// counts items one at a time through an index-emitting slider, borrows
/// each completed window **in place** from the caller's item slice (no
/// item is ever cloned — the slider stores indices, not items), prepares
/// it once, and checks the prepared assertion set against the shared
/// artifact into a dense severity-row buffer reused across every center.
/// Margin centers of a parallel chunk go through the skipped path —
/// window bookkeeping only, no preparation, no checks. This one type
/// replaces the per-scenario stream scorers the use cases used to
/// hand-roll.
struct ScenarioStreamScorer<'a, Sc: Scenario> {
    scenario: &'a Sc,
    set: &'a AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: &'a (dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + 'a),
    items: &'a [Sc::Item],
    /// Global index of the first item this scorer is fed (chunk start);
    /// the slider's spans are relative to it.
    offset: usize,
    /// `Some` while the stream is still being pushed; taken by the first
    /// tail flush (the slider's `finish` consumes it by design).
    spans: Option<SlidingSpans>,
    /// Right-edge-clamped tail spans, materialized at the first flush.
    tail: std::vec::IntoIter<WindowSpan>,
    /// The dense severity row reused across centers.
    row: Vec<f64>,
}

/// Scores **one** clamped window on the incremental path: builds the
/// sample, runs the shared preparation exactly once, checks the prepared
/// set into the caller's reusable dense severity row (raw values in
/// assertion-id order — a [`SeverityMatrix`] row), and returns the
/// uncertainty of `window[center]`.
///
/// This is the single scoring kernel behind both
/// [`stream_score_scenario`] (which feeds it slider-emitted spans) and
/// the multi-tenant service's per-session shards — sharing it is what
/// makes the service path bit-for-bit equal to the streaming path *by
/// construction*, not by coincidence.
pub fn score_window<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: &(dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + '_),
    window: &[Sc::Item],
    center: usize,
    values: &mut Vec<f64>,
) -> f64 {
    let sample = scenario.make_sample(window, center);
    let prep = preparer.prepare(&sample);
    set.check_all_prepared_values(&sample, &prep, values);
    // PANIC: center < window.len() is this fn's documented contract;
    // WindowSpans emits only in-range centers.
    scenario.uncertainty(&window[center])
}

impl<Sc: Scenario> ScenarioStreamScorer<'_, Sc> {
    fn score(&mut self, span: WindowSpan) -> f64 {
        // PANIC: spans emitted by WindowSpans stay inside the pushed
        // prefix of this chunk, which `items` fully contains.
        let window = &self.items[self.offset + span.start..self.offset + span.end];
        score_window(
            self.scenario,
            self.set,
            self.preparer,
            window,
            span.center(),
            &mut self.row,
        )
    }

    fn next_tail(&mut self) -> Option<WindowSpan> {
        if let Some(spans) = self.spans.take() {
            self.tail = spans.finish().collect::<Vec<_>>().into_iter();
        }
        self.tail.next()
    }
}

impl<Sc: Scenario> RowStreamScorer for ScenarioStreamScorer<'_, Sc> {
    fn push(&mut self, index: usize) -> Option<f64> {
        // PANIC: pushing after finish() is a caller contract violation
        // the StreamScorer protocol documents; fail loudly.
        let spans = self.spans.as_mut().expect("push after flush");
        debug_assert_eq!(index, self.offset + spans.pushed(), "gapless feed");
        spans.push().map(|s| self.score(s))
    }

    fn push_skipped(&mut self, index: usize) -> bool {
        // PANIC: same push-after-flush contract as push().
        let spans = self.spans.as_mut().expect("push after flush");
        debug_assert_eq!(index, self.offset + spans.pushed(), "gapless feed");
        spans.push().is_some()
    }

    fn row(&self) -> &[f64] {
        &self.row
    }

    fn flush(&mut self) -> Option<f64> {
        self.next_tail().map(|s| self.score(s))
    }

    fn flush_skipped(&mut self) -> bool {
        self.next_tail().is_some()
    }
}

/// Stream-scores a scenario's item stream: the incremental counterpart
/// of [`score_scenario`], computing identical severities and
/// uncertainties with **zero item copies** (windows are borrowed slices
/// of `items`, described by an index-emitting slider) and **one**
/// preparation per window (shared by every assertion in the prepared
/// set) instead of one per assertion. Chunks of the stream fan out
/// across the persistent pool's workers with `window_half` items of
/// re-fed margin — margin centers are never scored, only counted — and
/// chunk-local severity blocks merge in stream order by range-copy:
/// bit-for-bit equal to the batch path at any thread count.
///
/// The preparer is a parameter (rather than taken from the scenario) so
/// callers can wrap it — the conformance suite passes a
/// [`omg_core::stream::CountingPrepare`] probe to measure the
/// prepare-once invariant.
pub fn stream_score_scenario<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: &(dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + '_),
    items: &[Sc::Item],
    pool: &ThreadPool,
) -> (SeverityMatrix, Vec<f64>) {
    let half = scenario.window_half();
    score_stream_rows(items.len(), half, set.len(), pool, |offset| {
        ScenarioStreamScorer {
            scenario,
            set,
            preparer,
            items,
            offset,
            spans: Some(SlidingSpans::new(half)),
            tail: Vec::new().into_iter(),
            row: Vec::with_capacity(set.len()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{ToyModel, ToyScenario};
    use omg_core::stream::CountingPrepare;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn stream_equals_batch_on_the_toy_scenario() {
        let sc = ToyScenario::new(37);
        let items = sc.run_model(&ToyModel::default());
        let want = score_scenario(&sc, &sc.assertion_set(), &items, &ThreadPool::sequential());
        let set = sc.prepared_set();
        let preparer = sc.preparer();
        for threads in [1, 2, 8] {
            let got =
                stream_score_scenario(&sc, &set, &preparer, &items, &ThreadPool::exact(threads));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn streaming_prepares_once_per_window_sequentially() {
        let sc = ToyScenario::new(20);
        let items = sc.run_model(&ToyModel::default());
        let counter = Arc::new(AtomicUsize::new(0));
        let probe = CountingPrepare::new(sc.preparer(), counter.clone());
        let set = sc.prepared_set();
        let (sev, _) = stream_score_scenario(&sc, &set, &probe, &items, &ThreadPool::sequential());
        assert_eq!(sev.len(), items.len());
        assert_eq!(counter.load(Ordering::SeqCst), items.len());
    }

    /// Parallel streaming must prepare each *owned* center exactly once
    /// too: re-fed chunk margins go through the skipped path, which does
    /// pure window arithmetic — no preparation, no assertion checks.
    #[test]
    fn parallel_streaming_never_prepares_margin_centers() {
        let sc = ToyScenario::new(97);
        let items = sc.run_model(&ToyModel::default());
        for threads in [2, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let probe = CountingPrepare::new(sc.preparer(), counter.clone());
            let set = sc.prepared_set();
            let (sev, _) =
                stream_score_scenario(&sc, &set, &probe, &items, &ThreadPool::exact(threads));
            assert_eq!(sev.len(), items.len());
            assert_eq!(
                counter.load(Ordering::SeqCst),
                items.len(),
                "threads={threads}: margin centers must not be prepared"
            );
        }
    }

    /// The zero-copy contract, measured: scoring a stream through either
    /// driver performs **zero** item clones — at every thread count, and
    /// at the clamped edges (empty stream, streams shorter than one full
    /// window, and sizes forcing parallel chunk boundaries) — while
    /// staying bit-for-bit equal to the batch reference.
    #[test]
    fn stream_scoring_performs_zero_item_clones() {
        use crate::tests_support::CloneProbeScenario;
        for n in [0usize, 1, 3, 4, 5, 37, 97] {
            let sc = CloneProbeScenario::new(n);
            let items = sc.run_model(&ToyModel::default());
            assert_eq!(sc.item_clones(), 0, "run_model must not clone (n={n})");
            let want = score_scenario(&sc, &sc.assertion_set(), &items, &ThreadPool::sequential());
            assert_eq!(sc.item_clones(), 0, "batch driver must not clone (n={n})");
            let set = sc.prepared_set();
            let preparer = sc.preparer();
            for threads in [1, 2, 8] {
                let got = stream_score_scenario(
                    &sc,
                    &set,
                    &preparer,
                    &items,
                    &ThreadPool::exact(threads),
                );
                assert_eq!(got, want, "n={n} threads={threads}");
            }
            assert_eq!(
                sc.item_clones(),
                0,
                "steady-state streaming must not clone items (n={n})"
            );
        }
    }

    #[test]
    fn empty_stream_scores_empty() {
        let sc = ToyScenario::new(0);
        let items: Vec<i64> = Vec::new();
        let (sev, unc) =
            score_scenario(&sc, &sc.assertion_set(), &items, &ThreadPool::sequential());
        assert!(sev.is_empty() && unc.is_empty());
        let set = sc.prepared_set();
        let preparer = sc.preparer();
        let (ssev, sunc) =
            stream_score_scenario(&sc, &set, &preparer, &items, &ThreadPool::exact(4));
        assert!(ssev.is_empty() && sunc.is_empty());
    }
}
