use omg_core::AssertionSet;

use crate::Scenario;

/// A model error with the confidence the paper's Figure 3 analysis
/// attributes to it, located by stream position and source identity.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundError {
    /// Confidence attributed to the error.
    pub confidence: f64,
    /// Stream position (pool frame/sample index) where it was found.
    pub frame: usize,
    /// Identity of the erroneous track or cluster within the frame.
    /// `(frame, source)` is the error's dedup key across overlapping
    /// windows: two *distinct* errors in one frame stay distinct even
    /// when they happen to share a confidence.
    pub source: u64,
}

/// Sorts errors into (frame, source) order and drops re-findings of the
/// same error from overlapping windows. Identity — not confidence — is
/// the key: two distinct errors in one frame that happen to share a
/// confidence both survive.
pub fn dedup_errors(errs: &mut Vec<FoundError>) {
    errs.sort_by(|a, b| a.frame.cmp(&b.frame).then(a.source.cmp(&b.source)));
    errs.dedup_by(|a, b| a.frame == b.frame && a.source == b.source);
}

/// Collects, per assertion name, the *true* model errors found in
/// flagged windows — generic over the scenario's
/// [`Scenario::item_errors`] attribution hook. Every window that fires
/// an assertion contributes that assertion's errors at its center;
/// re-findings from overlapping windows are deduplicated by
/// (frame, source) identity.
pub fn errors_by_assertion<Sc: Scenario>(
    scenario: &Sc,
    set: &AssertionSet<Sc::Sample>,
    items: &[Sc::Item],
) -> Vec<(String, Vec<FoundError>)> {
    let mut out: Vec<(String, Vec<FoundError>)> = set
        .names()
        .iter()
        .map(|n| (n.to_string(), Vec::new()))
        .collect();
    let half = scenario.window_half();
    let n = items.len();
    // PANIC: lo <= center < hi <= n by the clamped arithmetic, and
    // aid comes from the set whose names built `out` slot for slot.
    for center in 0..n {
        let lo = center.saturating_sub(half);
        let hi = (center + half + 1).min(n);
        let sample = scenario.make_sample(&items[lo..hi], center - lo);
        for (aid, severity) in set.check_all(&sample) {
            if !severity.fired() {
                continue;
            }
            out[aid.0]
                .1
                .extend(scenario.item_errors(set.name(aid), items, center));
        }
    }
    for (_, errs) in &mut out {
        dedup_errors(errs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{ToyModel, ToyScenario};

    #[test]
    fn equal_confidence_distinct_errors_survive_dedup() {
        // Regression (inherited from the video port): dedup used to key
        // on (frame, confidence), merging two distinct same-frame errors
        // that tie on confidence.
        let mut errs = vec![
            FoundError {
                confidence: 0.8,
                frame: 4,
                source: 11,
            },
            FoundError {
                confidence: 0.8,
                frame: 4,
                source: 22,
            },
            // Re-found by the next window.
            FoundError {
                confidence: 0.8,
                frame: 4,
                source: 11,
            },
            FoundError {
                confidence: 0.5,
                frame: 2,
                source: 11,
            },
        ];
        dedup_errors(&mut errs);
        assert_eq!(
            errs,
            vec![
                FoundError {
                    confidence: 0.5,
                    frame: 2,
                    source: 11
                },
                FoundError {
                    confidence: 0.8,
                    frame: 4,
                    source: 11
                },
                FoundError {
                    confidence: 0.8,
                    frame: 4,
                    source: 22
                },
            ]
        );
    }

    #[test]
    fn errors_are_attributed_per_assertion_and_deduplicated() {
        let sc = ToyScenario::new(24);
        let items = sc.run_model(&ToyModel::default());
        let set = sc.assertion_set();
        let by_assertion = errors_by_assertion(&sc, &set, &items);
        assert_eq!(by_assertion.len(), set.len());
        let names: Vec<&str> = by_assertion.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, set.names());
        // The toy attributes one error per fired center of the second
        // assertion; overlapping windows must not duplicate them.
        let (_, errs) = &by_assertion[1];
        assert!(!errs.is_empty(), "the toy's large-center assertion fires");
        let mut keys: Vec<(usize, u64)> = errs.iter().map(|e| (e.frame, e.source)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before, "errors deduplicate by identity");
    }
}
