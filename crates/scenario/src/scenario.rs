use omg_core::stream::Prepare;
use omg_core::AssertionSet;
use rand::rngs::StdRng;

use crate::FoundError;

/// One deployed use case, described once: what the four (now five)
/// experiment scenarios share, factored into a trait so the batch
/// scorer, the streaming scorer, the active learner, the error
/// analysis, the conformance suite, and the throughput bench are each
/// written **once** against it.
///
/// The mental model is a stream: the deployed model runs over the
/// scenario's unlabeled pool and produces one [`Scenario::Item`] per
/// stream position ([`Scenario::run_model`]). Assertions never see items
/// directly — they see a [`Scenario::Sample`] built from a clamped
/// window of [`Scenario::window_half`] items of context on each side
/// ([`Scenario::make_sample`]), mirroring the paper's
/// `flickering(recent_frames, recent_outputs)` signature. Scenarios
/// without temporal context (AV samples, news scenes) use `half = 0`,
/// where the window degenerates to the item itself.
///
/// # Determinism contract
///
/// Everything here must be a deterministic pure function of its inputs:
/// `run_model` of the model and the scenario's (seeded) data,
/// `make_sample`/`uncertainty` of the items. The generic drivers rely on
/// this for their bit-for-bit stream==batch guarantee at any thread
/// count, which the registry-driven conformance suite enforces for every
/// registered scenario.
pub trait Scenario: Send + Sync {
    /// One position of the scored stream: the model's output for that
    /// position plus whatever the scenario's labeling / error analysis
    /// needs to keep alongside it (ground truth, provenance, …).
    type Item: Clone + Send + Sync + 'static;
    /// The window/sample type the assertions check.
    type Sample: Send + Sync + 'static;
    /// The shared per-window preparation artifact (see
    /// [`omg_core::stream::Prepare`]).
    type Prep: Send + 'static;
    /// The deployed, trainable model (`()` for monitoring-only
    /// scenarios).
    type Model: Send + Sync + 'static;
    /// The accumulated labeled training state (a detector's
    /// `TrainingBatch`, a classifier's `Dataset`, `()` when the scenario
    /// does not train).
    type Labels;

    /// Short stable identifier (keys `BENCH_stream_<name>.json` and test
    /// diagnostics).
    fn name(&self) -> &'static str;

    /// Human-readable task name for experiment tables.
    fn title(&self) -> &'static str {
        self.name()
    }

    /// The unit of [`Scenario::evaluate`]'s metric, for table rendering.
    fn metric_unit(&self) -> &'static str {
        ""
    }

    /// Items of temporal context on each side of a window's center.
    fn window_half(&self) -> usize {
        0
    }

    /// Number of positions in the unlabeled pool (equals
    /// `run_model(..).len()`).
    fn pool_len(&self) -> usize;

    /// Builds the scenario's pretrained deployment model.
    fn pretrained_model(&self, seed: u64) -> Self::Model;

    /// Runs the model over the unlabeled pool, producing one item per
    /// stream position.
    fn run_model(&self, model: &Self::Model) -> Vec<Self::Item>;

    /// The self-contained assertion set — the batch *reference* path,
    /// where each assertion re-derives whatever it needs.
    fn assertion_set(&self) -> AssertionSet<Self::Sample>;

    /// The prepared assertion set — the streaming path, consuming one
    /// shared [`Scenario::Prep`] artifact per window.
    fn prepared_set(&self) -> AssertionSet<Self::Sample, Self::Prep>;

    /// The preparer producing the prepared set's shared artifact.
    fn preparer(&self) -> Box<dyn Prepare<Self::Sample, Prepared = Self::Prep>>;

    /// Builds the assertion sample for one clamped window of items
    /// (`items[center]` is the position the sample is about).
    fn make_sample(&self, items: &[Self::Item], center: usize) -> Self::Sample;

    /// The model's uncertainty signal for one item (the
    /// uncertainty-sampling baseline's score).
    fn uncertainty(&self, item: &Self::Item) -> f64;

    /// Whether the scenario supports labeling + retraining (TV news does
    /// not: the paper had no training access for that domain).
    fn trains(&self) -> bool {
        true
    }

    /// The initial labeled training state (e.g. a bootstrap split).
    fn initial_labels(&self) -> Self::Labels;

    /// Labels pool position `pool_index` into the training state — what
    /// a labeling service returns for that position.
    fn label_into(&self, labels: &mut Self::Labels, pool_index: usize);

    /// Retrains the model on the accumulated labels (one active-learning
    /// round's training step).
    fn train(&self, model: &mut Self::Model, labels: &Self::Labels, rng: &mut StdRng);

    /// Evaluates the model on the scenario's held-out test split, in the
    /// unit of [`Scenario::metric_unit`].
    fn evaluate(&self, model: &Self::Model) -> f64;

    /// The scenario's weak-supervision rule (§4.2), if it has one:
    /// corrections fine-tune the model with no human labels, returning
    /// the (before, after) test metric.
    fn weak_supervision(&self, _model: &Self::Model, _rng: &mut StdRng) -> Option<(f64, f64)> {
        None
    }

    /// The true model errors behind assertion `assertion` firing on the
    /// window centered at `center` — the Figure 3 attribution hook.
    /// Scenarios without ground-truth error provenance return nothing.
    fn item_errors(
        &self,
        _assertion: &str,
        _items: &[Self::Item],
        _center: usize,
    ) -> Vec<FoundError> {
        Vec::new()
    }
}

/// Least-confidence uncertainty over a set of detection confidences: the
/// largest `1 - confidence` (0 when there are no detections — exactly
/// the blind spot of uncertainty sampling the paper exploits, since a
/// frame with *no* output carries no uncertainty signal at all).
///
/// Shared by every detector-backed scenario (video, AV camera, highway
/// fusion); classifier-backed scenarios use
/// `omg_learn::uncertainty::least_confidence` over class probabilities
/// instead.
pub fn detection_uncertainty<I: IntoIterator<Item = f64>>(confidences: I) -> f64 {
    confidences
        .into_iter()
        .map(|c| 1.0 - c)
        .fold(0.0f64, omg_core::float::fmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_uncertainty_is_least_confidence() {
        assert_eq!(detection_uncertainty([0.9, 0.4, 0.7]), 1.0 - 0.4);
        assert_eq!(detection_uncertainty(std::iter::empty()), 0.0);
    }

    #[test]
    fn detection_uncertainty_never_drops_nan() {
        // A poisoned confidence must poison the uncertainty wherever it
        // appears (f64::max would silently drop a trailing NaN).
        assert!(detection_uncertainty([0.9, f64::NAN]).is_nan());
        assert!(detection_uncertainty([f64::NAN, 0.9]).is_nan());
    }
}
