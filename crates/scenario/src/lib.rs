//! The **scenario engine**: one trait-driven pipeline from simulated
//! deployment through assertion scoring to active learning.
//!
//! The paper's core claim is that model assertions are an *abstraction*:
//! the same `assert(f(x) == y)`-style interface monitors video
//! analytics, AV sensor fusion, ECG classification, and TV news (Kang et
//! al., MLSys 2020, Table 1). This crate is that claim made executable.
//! A deployed use case implements the [`Scenario`] trait — its stream
//! item type, how a window of items becomes an assertion sample, its
//! assertion sets, its model hooks — and the *generic* drivers here do
//! everything else:
//!
//! * [`score_scenario`] — the batch reference path: every center's
//!   clamped window checked with the self-contained assertion set,
//!   fanned out across a [`ThreadPool`] and merged in stream order.
//! * [`stream_score_scenario`] — the incremental path: one
//!   [`omg_core::stream::SlidingSpans`] index slider per chunk emitting
//!   windows as *borrowed slices* of the item stream (zero item clones,
//!   one reused severity row), one [`omg_core::stream::Prepare`] run per
//!   window shared by the whole prepared set, bit-for-bit equal to the
//!   batch path at any thread count.
//! * [`ScenarioLearner`] — the [`omg_active::ActiveLearner`] for any
//!   scenario that trains: score pool (streaming), label the selection,
//!   retrain, evaluate.
//! * [`errors_by_assertion`] — the Figure 3 error-attribution analysis,
//!   generic over the scenario's [`Scenario::item_errors`] hook.
//! * [`DynScenario`] / [`ScenarioHarness`] — the type-erased runtime
//!   face a **scenario registry** hands to binaries, benches, and the
//!   conformance test suite, so a new scenario is covered by every
//!   driver, bench, and test *by construction*.
//!
//! Adding a use case is implementing [`Scenario`] and registering it;
//! the drivers, the stream==batch conformance suite, and the throughput
//! bench require zero edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drivers;
mod errors;
mod harness;
mod learner;
mod scenario;
#[cfg(test)]
pub(crate) mod tests_support;

pub use drivers::{score_scenario, score_window, stream_score_scenario};
pub use errors::{dedup_errors, errors_by_assertion, FoundError};
pub use harness::{DynScenario, ScenarioHarness, Scores};
pub use learner::{claim_selection, ScenarioLearner};
pub use scenario::{detection_uncertainty, Scenario};

// Re-exported so scenario implementations and harness callers can name
// the runtime without an `omg-core` import.
pub use omg_core::runtime::ThreadPool;
