use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use omg_active::ActiveLearner;
use omg_core::runtime::ThreadPool;
use omg_core::stream::{CountingPrepare, Prepare};
use omg_core::AssertionSet;
use rand::rngs::StdRng;

use crate::{score_scenario, stream_score_scenario, Scenario, ScenarioLearner};

/// Per-position severity rows (one contiguous columnar
/// [`omg_core::SeverityMatrix`]) plus per-position uncertainties — the
/// dense output of both scoring paths.
pub type Scores = (omg_core::SeverityMatrix, Vec<f64>);

/// The type-erased runtime face of a registered scenario: what the
/// scenario registry hands to binaries, benches, and the conformance
/// suite, so they can iterate heterogeneous scenarios (video windows, AV
/// frames, ECG windows, news scenes, fusion windows) behind one object.
///
/// Everything here is closed over a fixed scenario + pretrained model +
/// precomputed item stream, so repeated scoring calls measure scoring,
/// not model re-runs.
pub trait DynScenario: Send + Sync {
    /// Short stable identifier (keys `BENCH_stream_<name>.json`).
    fn name(&self) -> &'static str;

    /// Human-readable task name for experiment tables.
    fn title(&self) -> &'static str;

    /// The unit of the scenario's evaluation metric.
    fn metric_unit(&self) -> &'static str;

    /// Items of temporal context on each side of a window's center.
    fn window_half(&self) -> usize;

    /// Number of stream positions (= windows scored per pass).
    fn len(&self) -> usize;

    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assertion names, in severity-vector dimension order.
    fn assertion_names(&self) -> Vec<String>;

    /// Batch-scores the stream (the self-contained reference path).
    fn score_batch(&self, pool: &ThreadPool) -> Scores;

    /// Stream-scores the stream (the prepare-once incremental path);
    /// bit-for-bit equal to [`DynScenario::score_batch`] at any thread
    /// count.
    fn score_stream(&self, pool: &ThreadPool) -> Scores;

    /// Stream-scores with a counting probe wrapped around the preparer,
    /// returning the scores plus how many times preparation ran — the
    /// instrument behind the conformance suite's prepare-once checks.
    fn score_stream_counting(&self, pool: &ThreadPool) -> (Scores, usize);

    /// A fresh active learner over the scenario's pool (scoring on
    /// `runtime`), or `None` for monitoring-only scenarios.
    fn learner(&self, runtime: ThreadPool) -> Option<Box<dyn ActiveLearner>>;

    /// Runs the scenario's weak-supervision rule from the pretrained
    /// model, or `None` if it has no rule.
    fn weak_supervision(&self, rng: &mut StdRng) -> Option<(f64, f64)>;
}

/// Binds a [`Scenario`] to a pretrained model and its precomputed item
/// stream, erasing the associated types behind [`DynScenario`].
pub struct ScenarioHarness<Sc: Scenario> {
    scenario: Sc,
    model: Sc::Model,
    /// The model's pass over the pool, computed on first scoring call
    /// (weak-supervision-only callers never pay for it) and shared by
    /// every scoring call after that.
    items: OnceLock<Vec<Sc::Item>>,
    batch_set: AssertionSet<Sc::Sample>,
    stream_set: AssertionSet<Sc::Sample, Sc::Prep>,
    preparer: Box<dyn Prepare<Sc::Sample, Prepared = Sc::Prep>>,
}

impl<Sc> ScenarioHarness<Sc>
where
    Sc: Scenario + Clone + 'static,
    Sc::Model: Clone,
{
    /// Binds the scenario and model and captures both assertion sets,
    /// ready for repeated scoring.
    pub fn new(scenario: Sc, model: Sc::Model) -> Self {
        let batch_set = scenario.assertion_set();
        let stream_set = scenario.prepared_set();
        let preparer = scenario.preparer();
        Self {
            scenario,
            model,
            items: OnceLock::new(),
            batch_set,
            stream_set,
            preparer,
        }
    }

    /// Boxes the harness as a registry entry.
    pub fn boxed(scenario: Sc, model: Sc::Model) -> Box<dyn DynScenario> {
        Box::new(Self::new(scenario, model))
    }

    fn items(&self) -> &[Sc::Item] {
        self.items
            .get_or_init(|| self.scenario.run_model(&self.model))
    }
}

impl<Sc> DynScenario for ScenarioHarness<Sc>
where
    Sc: Scenario + Clone + 'static,
    Sc::Model: Clone,
{
    fn name(&self) -> &'static str {
        self.scenario.name()
    }

    fn title(&self) -> &'static str {
        self.scenario.title()
    }

    fn metric_unit(&self) -> &'static str {
        self.scenario.metric_unit()
    }

    fn window_half(&self) -> usize {
        self.scenario.window_half()
    }

    fn len(&self) -> usize {
        self.scenario.pool_len()
    }

    fn assertion_names(&self) -> Vec<String> {
        self.batch_set
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    fn score_batch(&self, pool: &ThreadPool) -> Scores {
        score_scenario(&self.scenario, &self.batch_set, self.items(), pool)
    }

    fn score_stream(&self, pool: &ThreadPool) -> Scores {
        stream_score_scenario(
            &self.scenario,
            &self.stream_set,
            &self.preparer,
            self.items(),
            pool,
        )
    }

    fn score_stream_counting(&self, pool: &ThreadPool) -> (Scores, usize) {
        let counter = Arc::new(AtomicUsize::new(0));
        let probe = CountingPrepare::new(self.scenario.preparer(), counter.clone());
        let scores =
            stream_score_scenario(&self.scenario, &self.stream_set, &probe, self.items(), pool);
        (scores, counter.load(Ordering::SeqCst))
    }

    fn learner(&self, runtime: ThreadPool) -> Option<Box<dyn ActiveLearner>> {
        self.scenario.trains().then(|| {
            Box::new(
                ScenarioLearner::new(self.scenario.clone(), self.model.clone())
                    .with_runtime(runtime),
            ) as Box<dyn ActiveLearner>
        })
    }

    fn weak_supervision(&self, rng: &mut StdRng) -> Option<(f64, f64)> {
        self.scenario.weak_supervision(&self.model, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{ToyModel, ToyScenario};
    use rand::SeedableRng;

    fn harness(n: usize) -> Box<dyn DynScenario> {
        ScenarioHarness::boxed(ToyScenario::new(n), ToyModel::default())
    }

    #[test]
    fn erased_scoring_matches_direct_scoring() {
        let h = harness(25);
        assert_eq!(h.name(), "toy");
        assert_eq!(h.len(), 25);
        assert!(!h.is_empty());
        assert_eq!(h.window_half(), 1);
        assert_eq!(h.assertion_names(), vec!["negative-sum", "large-center"]);
        let want = h.score_batch(&ThreadPool::sequential());
        for threads in [1, 2, 8] {
            assert_eq!(h.score_stream(&ThreadPool::exact(threads)), want);
        }
        let (scores, prepares) = h.score_stream_counting(&ThreadPool::sequential());
        assert_eq!(scores, want);
        assert_eq!(prepares, 25, "one preparation per window sequentially");
    }

    #[test]
    fn erased_learner_runs_rounds() {
        let h = harness(30);
        let mut learner = h.learner(ThreadPool::sequential()).expect("toy trains");
        let mut rng = StdRng::seed_from_u64(9);
        let records = omg_active::run_rounds(
            learner.as_mut(),
            &mut omg_active::RandomStrategy,
            2,
            5,
            &mut rng,
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].metric, 10.0, "two rounds label 10 toy points");
    }

    #[test]
    fn monitoring_only_harness_has_no_learner_and_no_weak_rule() {
        let h = ScenarioHarness::boxed(ToyScenario::monitoring_only(10), ToyModel::default());
        assert!(h.learner(ThreadPool::sequential()).is_none());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(h.weak_supervision(&mut rng).is_none());
    }
}
