//! A tiny self-contained scenario used by this crate's unit tests: an
//! integer stream, window sums, and a labeling-counting "model".

use omg_core::stream::{FnPrepare, Prepare};
use omg_core::{AssertionSet, Severity};
use rand::rngs::StdRng;

use crate::{FoundError, Scenario};

/// The toy's "model": training just records how many points were
/// labeled, so learner tests can observe training through `evaluate`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ToyModel {
    pub labeled: usize,
}

/// A deterministic integer-stream scenario with two assertions.
#[derive(Debug, Clone)]
pub struct ToyScenario {
    n: usize,
    trains: bool,
}

impl ToyScenario {
    pub fn new(n: usize) -> Self {
        Self { n, trains: true }
    }

    pub fn monitoring_only(n: usize) -> Self {
        Self { n, trains: false }
    }
}

type ToySample = (Vec<i64>, usize);

impl Scenario for ToyScenario {
    type Item = i64;
    type Sample = ToySample;
    type Prep = i64;
    type Model = ToyModel;
    type Labels = Vec<usize>;

    fn name(&self) -> &'static str {
        "toy"
    }

    fn window_half(&self) -> usize {
        1
    }

    fn pool_len(&self) -> usize {
        self.n
    }

    fn pretrained_model(&self, _seed: u64) -> ToyModel {
        ToyModel::default()
    }

    fn run_model(&self, _model: &ToyModel) -> Vec<i64> {
        (0..self.n as i64).map(|i| ((i * 31) % 17) - 8).collect()
    }

    fn assertion_set(&self) -> AssertionSet<ToySample> {
        let mut set = AssertionSet::new();
        set.add_fn("negative-sum", |s: &ToySample| {
            Severity::from_bool(s.0.iter().sum::<i64>() < 0)
        });
        set.add_fn("large-center", |s: &ToySample| {
            Severity::from_bool(s.0[s.1].abs() > 5)
        });
        set
    }

    fn prepared_set(&self) -> AssertionSet<ToySample, i64> {
        let mut set: AssertionSet<ToySample, i64> = AssertionSet::new();
        set.add_prepared(
            omg_core::FnAssertion::new("negative-sum", |s: &ToySample| {
                Severity::from_bool(s.0.iter().sum::<i64>() < 0)
            }),
            |_s: &ToySample, &sum: &i64| Severity::from_bool(sum < 0),
        );
        set.add_fn("large-center", |s: &ToySample| {
            Severity::from_bool(s.0[s.1].abs() > 5)
        });
        set
    }

    fn preparer(&self) -> Box<dyn Prepare<ToySample, Prepared = i64>> {
        Box::new(FnPrepare::new(|s: &ToySample| s.0.iter().sum::<i64>()))
    }

    fn make_sample(&self, items: &[i64], center: usize) -> ToySample {
        (items.to_vec(), center)
    }

    fn uncertainty(&self, item: &i64) -> f64 {
        item.rem_euclid(10) as f64 / 10.0
    }

    fn trains(&self) -> bool {
        self.trains
    }

    fn initial_labels(&self) -> Vec<usize> {
        Vec::new()
    }

    fn label_into(&self, labels: &mut Vec<usize>, pool_index: usize) {
        labels.push(pool_index);
    }

    fn train(&self, model: &mut ToyModel, labels: &Vec<usize>, _rng: &mut StdRng) {
        model.labeled = labels.len();
    }

    fn evaluate(&self, model: &ToyModel) -> f64 {
        model.labeled as f64
    }

    fn item_errors(&self, assertion: &str, items: &[i64], center: usize) -> Vec<FoundError> {
        if assertion != "large-center" {
            return Vec::new();
        }
        vec![FoundError {
            confidence: 0.5,
            frame: center,
            source: items[center].unsigned_abs(),
        }]
    }
}
