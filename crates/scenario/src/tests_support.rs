//! A tiny self-contained scenario used by this crate's unit tests: an
//! integer stream, window sums, and a labeling-counting "model".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use omg_core::stream::{FnPrepare, Prepare};
use omg_core::{AssertionSet, Severity};
use rand::rngs::StdRng;

use crate::{FoundError, Scenario};

/// The toy's "model": training just records how many points were
/// labeled, so learner tests can observe training through `evaluate`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ToyModel {
    pub labeled: usize,
}

/// A deterministic integer-stream scenario with two assertions.
#[derive(Debug, Clone)]
pub struct ToyScenario {
    n: usize,
    trains: bool,
}

impl ToyScenario {
    pub fn new(n: usize) -> Self {
        Self { n, trains: true }
    }

    pub fn monitoring_only(n: usize) -> Self {
        Self { n, trains: false }
    }
}

type ToySample = (Vec<i64>, usize);

impl Scenario for ToyScenario {
    type Item = i64;
    type Sample = ToySample;
    type Prep = i64;
    type Model = ToyModel;
    type Labels = Vec<usize>;

    fn name(&self) -> &'static str {
        "toy"
    }

    fn window_half(&self) -> usize {
        1
    }

    fn pool_len(&self) -> usize {
        self.n
    }

    fn pretrained_model(&self, _seed: u64) -> ToyModel {
        ToyModel::default()
    }

    fn run_model(&self, _model: &ToyModel) -> Vec<i64> {
        (0..self.n as i64).map(|i| ((i * 31) % 17) - 8).collect()
    }

    fn assertion_set(&self) -> AssertionSet<ToySample> {
        let mut set = AssertionSet::new();
        set.add_fn("negative-sum", |s: &ToySample| {
            Severity::from_bool(s.0.iter().sum::<i64>() < 0)
        });
        set.add_fn("large-center", |s: &ToySample| {
            // PANIC: make_sample stores a center < window length.
            Severity::from_bool(s.0[s.1].abs() > 5)
        });
        set
    }

    fn prepared_set(&self) -> AssertionSet<ToySample, i64> {
        let mut set: AssertionSet<ToySample, i64> = AssertionSet::new();
        set.add_prepared(
            omg_core::FnAssertion::new("negative-sum", |s: &ToySample| {
                Severity::from_bool(s.0.iter().sum::<i64>() < 0)
            }),
            |_s: &ToySample, &sum: &i64| Severity::from_bool(sum < 0),
        );
        set.add_fn("large-center", |s: &ToySample| {
            // PANIC: make_sample stores a center < window length.
            Severity::from_bool(s.0[s.1].abs() > 5)
        });
        set
    }

    fn preparer(&self) -> Box<dyn Prepare<ToySample, Prepared = i64>> {
        Box::new(FnPrepare::new(|s: &ToySample| s.0.iter().sum::<i64>()))
    }

    fn make_sample(&self, items: &[i64], center: usize) -> ToySample {
        (items.to_vec(), center)
    }

    fn uncertainty(&self, item: &i64) -> f64 {
        item.rem_euclid(10) as f64 / 10.0
    }

    fn trains(&self) -> bool {
        self.trains
    }

    fn initial_labels(&self) -> Vec<usize> {
        Vec::new()
    }

    fn label_into(&self, labels: &mut Vec<usize>, pool_index: usize) {
        labels.push(pool_index);
    }

    fn train(&self, model: &mut ToyModel, labels: &Vec<usize>, _rng: &mut StdRng) {
        model.labeled = labels.len();
    }

    fn evaluate(&self, model: &ToyModel) -> f64 {
        model.labeled as f64
    }

    fn item_errors(&self, assertion: &str, items: &[i64], center: usize) -> Vec<FoundError> {
        if assertion != "large-center" {
            return Vec::new();
        }
        vec![FoundError {
            confidence: 0.5,
            frame: center,
            // PANIC: item_errors receives a center inside `items`.
            source: items[center].unsigned_abs(),
        }]
    }
}

/// A stream item that counts every `clone` of itself — the instrument
/// behind the zero-copy conformance tests: the streaming drivers must
/// score a whole stream without cloning a single item.
#[derive(Debug)]
pub struct CountedItem {
    pub value: i64,
    clones: Arc<AtomicUsize>,
}

impl Clone for CountedItem {
    fn clone(&self) -> Self {
        // The probe: every item clone anywhere in the pipeline lands
        // here. (The `Arc` clone below shares the counter; it is not an
        // item copy itself — it *is* this count increasing.)
        self.clones.fetch_add(1, Ordering::SeqCst);
        Self {
            value: self.value,
            clones: self.clones.clone(),
        }
    }
}

/// The toy scenario instrumented with [`CountedItem`]s: same stream and
/// assertion semantics as [`ToyScenario`] (windowed sums, `half = 2`),
/// but `run_model` emits clone-counting items and `make_sample` reads
/// the borrowed window without copying it, so [`Self::item_clones`]
/// measures exactly the clones the *drivers* perform.
#[derive(Debug, Clone)]
pub struct CloneProbeScenario {
    n: usize,
    clones: Arc<AtomicUsize>,
}

/// The probe's sample: (window sum, center value) — derived from the
/// borrowed window, owning no items.
pub type ProbeSample = (i64, i64);

impl CloneProbeScenario {
    pub fn new(n: usize) -> Self {
        Self {
            n,
            clones: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of item clones performed anywhere since construction.
    pub fn item_clones(&self) -> usize {
        self.clones.load(Ordering::SeqCst)
    }
}

impl Scenario for CloneProbeScenario {
    type Item = CountedItem;
    type Sample = ProbeSample;
    type Prep = i64;
    type Model = ToyModel;
    type Labels = Vec<usize>;

    fn name(&self) -> &'static str {
        "clone-probe"
    }

    fn window_half(&self) -> usize {
        2
    }

    fn pool_len(&self) -> usize {
        self.n
    }

    fn pretrained_model(&self, _seed: u64) -> ToyModel {
        ToyModel::default()
    }

    fn run_model(&self, _model: &ToyModel) -> Vec<CountedItem> {
        (0..self.n as i64)
            .map(|i| CountedItem {
                value: ((i * 31) % 17) - 8,
                clones: self.clones.clone(),
            })
            .collect()
    }

    fn assertion_set(&self) -> AssertionSet<ProbeSample> {
        let mut set = AssertionSet::new();
        set.add_fn("negative-sum", |s: &ProbeSample| {
            Severity::from_bool(s.0 < 0)
        });
        set.add_fn("large-center", |s: &ProbeSample| {
            Severity::from_bool(s.1.abs() > 5)
        });
        set
    }

    fn prepared_set(&self) -> AssertionSet<ProbeSample, i64> {
        let mut set: AssertionSet<ProbeSample, i64> = AssertionSet::new();
        set.add_prepared(
            omg_core::FnAssertion::new("negative-sum", |s: &ProbeSample| {
                Severity::from_bool(s.0 < 0)
            }),
            |_s: &ProbeSample, &sum: &i64| Severity::from_bool(sum < 0),
        );
        set.add_fn("large-center", |s: &ProbeSample| {
            Severity::from_bool(s.1.abs() > 5)
        });
        set
    }

    fn preparer(&self) -> Box<dyn Prepare<ProbeSample, Prepared = i64>> {
        Box::new(FnPrepare::new(|s: &ProbeSample| s.0))
    }

    fn make_sample(&self, items: &[CountedItem], center: usize) -> ProbeSample {
        // Reads the borrowed window in place; clones nothing.
        // PANIC: the drivers pass center < items.len() by contract.
        (items.iter().map(|i| i.value).sum(), items[center].value)
    }

    fn uncertainty(&self, item: &CountedItem) -> f64 {
        item.value.rem_euclid(10) as f64 / 10.0
    }

    fn initial_labels(&self) -> Vec<usize> {
        Vec::new()
    }

    fn label_into(&self, labels: &mut Vec<usize>, pool_index: usize) {
        labels.push(pool_index);
    }

    fn train(&self, model: &mut ToyModel, labels: &Vec<usize>, _rng: &mut StdRng) {
        model.labeled = labels.len();
    }

    fn evaluate(&self, model: &ToyModel) -> f64 {
        model.labeled as f64
    }
}
