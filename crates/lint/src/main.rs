fn main() {
    std::process::exit(omg_lint::run_cli());
}
