fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(omg_lint::run_cli(&args));
}
