//! The rule catalog: five token-level lexical rules carried over from
//! the first-generation linter, plus the two call-graph rules
//! (panic-freedom and float-determinism over the hot-path reachable
//! set). The allowlists and count-pinned ledgers in this file are the
//! audit records themselves — changing one is a reviewable diff.

use crate::graph;
use crate::items::{is_keyword, FileModel};
use crate::lexer::TokKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for whole-file (count-drift) findings.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Ledgers and allowlists
// ---------------------------------------------------------------------------

/// Files allowed to contain the `unsafe` keyword (and
/// `#[allow(unsafe_code)]`), with the audit rationale.
pub const UNSAFE_ALLOWED: &[(&str, &str)] = &[(
    "crates/core/src/runtime.rs",
    "the pool's lifetime-erased job cell; the handshake is model-checked by omg-verify",
)];

/// Files allowed to touch `std::thread` directly.
pub const SPAWN_ALLOWED: &[(&str, &str)] = &[
    (
        "crates/core/src/sync.rs",
        "the production half of the thread facade the pool is written against",
    ),
    (
        "crates/verify/src/sched.rs",
        "model threads are real OS threads driven one-at-a-time by the scheduler",
    ),
];

/// Directory prefixes whose (non-test) code is a scoring path: output
/// must be bit-for-bit deterministic, so hash-ordered containers are
/// banned except for the audited uses below.
pub const HASH_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/active/src",
    "crates/service/src",
    "crates/scenario/src",
    "crates/domains/src",
];

/// Audited keyed-access-only hash uses on scoring paths: (file, number
/// of mentioning lines, rationale). A count drift fails until
/// re-audited.
pub const HASH_ALLOWED: &[(&str, usize, &str)] = &[(
    "crates/active/src/ccmab.rs",
    3,
    "per-cell bandit stats: get/entry/len only, never iterated — selection order comes from the explicit candidate list",
)];

/// The audited `Ordering::Relaxed` ledger: (file, site count,
/// rationale). Every other file must use SeqCst (or stronger
/// reasoning — and then land here).
pub const RELAXED_LEDGER: &[(&str, usize, &str)] = &[
    (
        "crates/core/src/runtime.rs",
        5,
        "job abort flag (advisory; payload travels through a mutex) and chunk-cursor claims \
         (the RMW's atomicity suffices: claimed indices are data-independent and results \
         move through mutexes) — plus the seeded torn-claim mutation's load/store pair, \
         compiled out of production call sites",
    ),
    (
        "crates/service/src/service.rs",
        9,
        "monotonic accepted/scored counters and the idle-eviction logical clock: \
         single-word freshness hints, never used to order other memory",
    ),
];

/// Directory prefix whose files may call IoU primitives directly: the
/// geometry crate owns the grid-indexed matchers, their O(n²)
/// reference, and the equivalence proofs between them.
pub const IOU_HOME: &str = "crates/geom/";

/// Audited direct-IoU call sites outside geom: (file, number of
/// mentioning lines, rationale). Every use must be bounded by something
/// other than scene density; anything O(boxes²) belongs behind
/// `omg_geom::matchers`. A count drift fails until re-audited.
pub const IOU_ALLOWED: &[(&str, usize, &str)] = &[
    (
        "crates/domains/src/weak.rs",
        2,
        "weak labeler's best-overlap lookup and duplicate vote over one frame's \
         proposals: bounded by the proposal budget, not scene density",
    ),
    (
        "crates/eval/src/detection.rs",
        1,
        "detection-to-ground-truth matching in the evaluator: the loop is the \
         mAP definition and per-image ground truth stays small",
    ),
];

/// How many lines above a site a justifying comment (`// SAFETY:`,
/// `// PANIC:`, `// FLOAT:`) may *start*; trailing same-line comments
/// count for the ledgered rules.
pub const JUSTIFY_LOOKBACK: u32 = 10;

/// Count-pinned ledger of justified panic sites reachable from the
/// hot-path roots: (file, number of `// PANIC:`-justified sites,
/// rationale). Populated below as the sites are audited; a drift in
/// either direction fails until re-audited.
pub const PANIC_ALLOWED: &[(&str, usize, &str)] = &[
    (
        "crates/active/src/pool.rs",
        4,
        "candidate-pool accessors: ids are the pool's own dense 0..len id space",
    ),
    (
        "crates/bench/src/avx.rs",
        1,
        "make_sample center is in range by the scenario-driver contract",
    ),
    (
        "crates/bench/src/lib.rs",
        1,
        "documented startup panic on a garbage OMG_THREADS value",
    ),
    (
        "crates/bench/src/newsx.rs",
        1,
        "make_sample center is in range by the scenario-driver contract",
    ),
    (
        "crates/bench/src/video.rs",
        4,
        "window centers bounds-checked at entry before neighbour indexing",
    ),
    (
        "crates/core/src/consistency/engine.rs",
        7,
        "occurrence positions index the window they were collected from",
    ),
    (
        "crates/core/src/consistency/window.rs",
        2,
        "documented accessor contract: invocation index < len()",
    ),
    (
        "crates/core/src/database.rs",
        3,
        "shard vectors are resized before indexing in the same call",
    ),
    (
        "crates/core/src/registry.rs",
        1,
        "documented contract: AssertionIds are minted by this set",
    ),
    (
        "crates/core/src/runtime.rs",
        11,
        "worker-pool lock poisoning: a sibling thread already panicked, propagate",
    ),
    (
        "crates/core/src/severity.rs",
        1,
        "row slice in bounds by the preceding assert",
    ),
    (
        "crates/core/src/stream.rs",
        3,
        "slider compaction never outruns emitted spans; flush emits one row per center",
    ),
    (
        "crates/core/src/sync.rs",
        1,
        "OS thread-spawn failure at pool startup is fatal by design",
    ),
    (
        "crates/domains/src/fusion.rs",
        3,
        "windows(2) slices and a center asserted in the constructor",
    ),
    (
        "crates/domains/src/window.rs",
        5,
        "windows(2) slices and a center asserted in the constructor",
    ),
    (
        "crates/eval/src/ap.rs",
        3,
        "envelope scan bounded by saturating_sub'd range",
    ),
    (
        "crates/eval/src/classification.rs",
        2,
        "n*n confusion matrix indexed under class-range asserts/contract",
    ),
    (
        "crates/geom/src/box3d.rs",
        1,
        "corner extrema of a valid box are finite and ordered",
    ),
    (
        "crates/geom/src/grid.rs",
        8,
        "cell_range clamps to grid dims; bucket ids are filed insertion ids",
    ),
    (
        "crates/geom/src/matchers.rs",
        22,
        "indices from score_order permutations and the grid index, lengths asserted",
    ),
    (
        "crates/geom/src/reference.rs",
        18,
        "pairwise scans over 0..n with lengths asserted at entry",
    ),
    (
        "crates/learn/src/linalg.rs",
        2,
        "matrix accessors indexed under dimension asserts",
    ),
    (
        "crates/scenario/src/drivers.rs",
        6,
        "clamped window arithmetic and the StreamScorer push-after-flush contract",
    ),
    (
        "crates/scenario/src/errors.rs",
        2,
        "clamped window arithmetic; assertion ids index their own set",
    ),
    (
        "crates/scenario/src/tests_support.rs",
        4,
        "toy scenarios uphold the driver's center-in-window contract",
    ),
    (
        "crates/service/src/service.rs",
        4,
        "shard lock poisoning means a scorer already panicked; propagate",
    ),
    (
        "crates/service/src/syncmap.rs",
        8,
        "RwLock poisoning propagation; removals re-checked under the same lock",
    ),
    (
        "crates/sim/src/av.rs",
        5,
        "constant/positively-sampled geometry the constructors accept",
    ),
    (
        "crates/sim/src/ecg.rs",
        1,
        "markov state stays inside the class-means table",
    ),
    (
        "crates/sim/src/news.rs",
        1,
        "host indices sampled from the roster's own range",
    ),
    (
        "crates/sim/src/signal.rs",
        18,
        "fixed APP_DIM feature layout with constant slots",
    ),
    (
        "crates/sim/src/traffic.rs",
        1,
        "positively-sampled clutter box the constructor accepts",
    ),
    (
        "crates/track/src/track.rs",
        2,
        "tracks hold at least the observation they were created with",
    ),
    (
        "crates/track/src/tracker.rs",
        9,
        "iou_pairs indices are in range; live ids are always tracked",
    ),
];

/// Count-pinned ledger of justified float-ordering sites reachable
/// from the hot-path roots (`// FLOAT:`-justified).
pub const FLOAT_ALLOWED: &[(&str, usize, &str)] = &[];

fn lookup<'a>(table: &'a [(&str, &str)], file: &str) -> Option<&'a str> {
    table.iter().find(|(f, _)| *f == file).map(|(_, why)| *why)
}

fn lookup_counted(table: &[(&str, usize, &str)], file: &str) -> Option<usize> {
    table
        .iter()
        .find(|(f, _, _)| *f == file)
        .map(|(_, n, _)| *n)
}

// ---------------------------------------------------------------------------
// Lexical rules (per file, token stream before the test cutoff)
// ---------------------------------------------------------------------------

/// True when code tokens `i..` spell out `pat` exactly.
fn seq(fm: &FileModel, i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(j, p)| fm.t(i + j) == *p)
}

/// Runs the five lexical rules over one file.
pub fn lexical(fm: &FileModel, out: &mut Vec<Violation>) {
    let file = fm.path.as_str();
    let in_hash_scope = HASH_SCOPE.iter().any(|p| file.starts_with(p));
    let in_iou_scope = !file.starts_with(IOU_HOME);
    let unsafe_ok = lookup(UNSAFE_ALLOWED, file).is_some();
    let mut hash_lines: BTreeSet<u32> = BTreeSet::new();
    let mut relaxed_lines: BTreeSet<u32> = BTreeSet::new();
    let mut iou_lines: BTreeSet<u32> = BTreeSet::new();

    for i in 0..fm.cut {
        let line = fm.toks[i].line;
        match (fm.kind(i), fm.t(i)) {
            // Rule 1: the unsafe allowlist.
            (TokKind::Ident, "unsafe") => {
                if unsafe_ok {
                    let next = fm.t(i + 1);
                    if (next == "{" || next == "impl")
                        && !fm.comment_in(
                            line.saturating_sub(JUSTIFY_LOOKBACK),
                            line.saturating_sub(1),
                            "SAFETY:",
                        )
                    {
                        out.push(Violation {
                            file: file.to_string(),
                            line: line as usize,
                            rule: "undocumented-unsafe",
                            message: format!(
                                "`unsafe` block/impl without a `// SAFETY:` comment within \
                                 the {JUSTIFY_LOOKBACK} lines above"
                            ),
                        });
                    }
                } else {
                    out.push(Violation {
                        file: file.to_string(),
                        line: line as usize,
                        rule: "unsafe-outside-allowlist",
                        message: "`unsafe` is confined to the pool's job cell \
                                  (crates/core/src/runtime.rs); write safe code or extend the \
                                  audited allowlist in omg-lint"
                            .to_string(),
                    });
                }
            }
            (TokKind::Ident, "allow")
                if !unsafe_ok && seq(fm, i, &["allow", "(", "unsafe_code", ")"]) =>
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: line as usize,
                    rule: "unsafe-outside-allowlist",
                    message: "`#[allow(unsafe_code)]` outside the audited allowlist".to_string(),
                });
            }
            // Rule 2: no ad-hoc thread creation.
            (TokKind::Ident, "std")
                if lookup(SPAWN_ALLOWED, file).is_none()
                    && (seq(fm, i, &["std", "::", "thread", "::", "spawn"])
                        || seq(fm, i, &["std", "::", "thread", "::", "scope"])
                        || seq(fm, i, &["std", "::", "thread", "::", "Builder"])) =>
            {
                out.push(ad_hoc_thread(file, line));
            }
            (TokKind::Ident, "use")
                if lookup(SPAWN_ALLOWED, file).is_none()
                    && seq(fm, i, &["use", "std", "::", "thread"]) =>
            {
                out.push(ad_hoc_thread(file, line));
            }
            // Rule 3: hash containers on scoring paths (line-counted).
            (TokKind::Ident, "HashMap") | (TokKind::Ident, "HashSet")
                if in_hash_scope
                    && hash_lines.insert(line)
                    && lookup_counted(HASH_ALLOWED, file).is_none() =>
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: line as usize,
                    rule: "hash-on-scoring-path",
                    message: "HashMap/HashSet on a scoring path: iteration order is \
                              randomized, which breaks bit-for-bit determinism — use \
                              Vec/BTreeMap, or audit a keyed-access-only use in omg-lint"
                        .to_string(),
                });
            }
            // Rule 4: the Relaxed ledger (line-counted below).
            (TokKind::Ident, "Ordering") if seq(fm, i, &["Ordering", "::", "Relaxed"]) => {
                relaxed_lines.insert(line);
            }
            // Rule 5: pairwise IoU confined to geom (line-counted).
            (TokKind::Punct, ".")
                if in_iou_scope
                    && (seq(fm, i, &[".", "iou", "("])
                        || seq(fm, i, &[".", "iou_bev_aabb", "("]))
                    && iou_lines.insert(line)
                    && lookup_counted(IOU_ALLOWED, file).is_none() =>
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: line as usize,
                    rule: "pairwise-iou-outside-geom",
                    message: "direct IoU call outside omg-geom: route matching through \
                              omg_geom::matchers (grid-indexed, reference-equivalent), or \
                              audit a bounded small-n use in omg-lint's IOU_ALLOWED"
                        .to_string(),
                });
            }
            _ => {}
        }
    }

    if let Some(expected) = lookup_counted(HASH_ALLOWED, file) {
        if hash_lines.len() != expected {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "hash-on-scoring-path",
                message: format!(
                    "audited hash-container line count drifted: ledger says {expected}, \
                     found {} — re-audit (keyed access only, no iteration) and \
                     update omg-lint's HASH_ALLOWED",
                    hash_lines.len()
                ),
            });
        }
    }
    if let Some(expected) = lookup_counted(IOU_ALLOWED, file) {
        if iou_lines.len() != expected {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "pairwise-iou-outside-geom",
                message: format!(
                    "audited direct-IoU line count drifted: ledger says {expected}, found \
                     {} — re-audit (bounded small-n only, never O(boxes²)) and \
                     update omg-lint's IOU_ALLOWED",
                    iou_lines.len()
                ),
            });
        }
    }
    match lookup_counted(RELAXED_LEDGER, file) {
        Some(expected) if relaxed_lines.len() != expected => out.push(Violation {
            file: file.to_string(),
            line: 0,
            rule: "unaudited-relaxed",
            message: format!(
                "Ordering::Relaxed site count drifted: ledger says {expected}, found \
                 {} — re-audit the orderings and update omg-lint's RELAXED_LEDGER",
                relaxed_lines.len()
            ),
        }),
        None if !relaxed_lines.is_empty() => out.push(Violation {
            file: file.to_string(),
            line: 0,
            rule: "unaudited-relaxed",
            message: format!(
                "{} Ordering::Relaxed site(s) in a file absent from \
                 omg-lint's RELAXED_LEDGER — justify them there or use SeqCst",
                relaxed_lines.len()
            ),
        }),
        _ => {}
    }
}

fn ad_hoc_thread(file: &str, line: u32) -> Violation {
    Violation {
        file: file.to_string(),
        line: line as usize,
        rule: "ad-hoc-thread",
        message: "direct std::thread use outside the facade; go through \
                  omg_core::runtime::ThreadPool (or omg_core::sync::thread) so the \
                  concurrency stays model-checked"
            .to_string(),
    }
}

// ---------------------------------------------------------------------------
// Call-graph rules: panic-freedom and float-determinism
// ---------------------------------------------------------------------------

/// Which files enter the call graph: workspace crate sources, minus
/// the linter itself (its fixtures and pattern tables are not engine
/// code), the model-check harness (compiled only under `cfg(omg_model)`
/// and full of intentional torn-state probes), and test sources.
pub fn graph_eligible(fm: &FileModel) -> bool {
    fm.path.starts_with("crates/")
        && fm.path.contains("/src/")
        && !fm.path.starts_with("crates/lint/")
        && !fm.path.starts_with("crates/verify/")
        && !fm.is_test
}

/// Macro names that abort when expanded. `assert!`/`debug_assert!` are
/// deliberately absent: the workspace uses them only as constructor
/// contract checks, which fail at configuration time, not per-sample
/// in the scoring loop — the panic rule is about the latter.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the reachability pass; appends violations and returns the
/// number of reachable functions (surfaced in the summary so a
/// collapsed graph is visible). `panic_ledger`/`float_ledger` are
/// parameters so drift tests can pin their own tables; production
/// callers pass [`PANIC_ALLOWED`]/[`FLOAT_ALLOWED`].
pub fn graph_pass_with(
    files: &[FileModel],
    panic_ledger: &[(&str, usize, &str)],
    float_ledger: &[(&str, usize, &str)],
    out: &mut Vec<Violation>,
) -> usize {
    let eligible: Vec<bool> = files.iter().map(graph_eligible).collect();
    let g = graph::build(files, &eligible);
    let (roots, missing) = graph::resolve_roots(&g, files);
    for m in missing {
        out.push(Violation {
            file: "crates/lint/src/graph.rs".to_string(),
            line: 0,
            rule: "hot-path-root-missing",
            message: format!(
                "hot-path root `{m}` resolved to no functions — the reachability pass \
                 would silently go vacuous over it; fix the root spec in omg-lint's ROOTS \
                 or restore the renamed entry point"
            ),
        });
    }
    let seen = graph::reachable(&g, &roots);
    let reachable_count = seen.iter().filter(|&&s| s).count();

    // Collect sites per (file, token) so nested fns sharing body tokens
    // with their parent never double-report.
    let mut panic_sites: BTreeMap<usize, BTreeMap<usize, (String, String)>> = BTreeMap::new();
    let mut float_sites: BTreeMap<usize, BTreeMap<usize, (String, String)>> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        let (b0, b1) = match f.body {
            Some(r) => r,
            None => continue,
        };
        let fm = &files[f.file];
        for k in b0..=b1 {
            if let Some(desc) = panic_site(fm, k) {
                panic_sites
                    .entry(f.file)
                    .or_default()
                    .entry(k)
                    .or_insert_with(|| (desc, f.name.clone()));
            }
            if let Some(desc) = float_site(fm, k) {
                float_sites
                    .entry(f.file)
                    .or_default()
                    .entry(k)
                    .or_insert_with(|| (desc, f.name.clone()));
            }
        }
    }

    emit_ledgered(
        files,
        &panic_sites,
        "PANIC:",
        panic_ledger,
        "panic-on-hot-path",
        "PANIC_ALLOWED",
        "the scoring monitor must not be able to panic: return a Result/Option or \
         restructure the indexing",
        out,
    );
    emit_ledgered(
        files,
        &float_sites,
        "FLOAT:",
        float_ledger,
        "float-order-on-hot-path",
        "FLOAT_ALLOWED",
        "float ordering on the hot path must be NaN-total and thread-count-independent: \
         use total_cmp, omg_geom's score_order, or omg_core::float::{fmax,fmin}",
        out,
    );
    reachable_count
}

/// Production entry: the pinned ledgers.
pub fn graph_pass(files: &[FileModel], out: &mut Vec<Violation>) -> usize {
    graph_pass_with(files, PANIC_ALLOWED, FLOAT_ALLOWED, out)
}

/// A panic-capable site at code token `k`, described, or `None`.
fn panic_site(fm: &FileModel, k: usize) -> Option<String> {
    match (fm.kind(k), fm.t(k)) {
        (TokKind::Ident, m @ ("unwrap" | "expect"))
            if k > 0 && fm.t(k - 1) == "." && fm.t(k + 1) == "(" =>
        {
            Some(format!("`.{m}()`"))
        }
        (TokKind::Ident, m) if PANIC_MACROS.contains(&m) && fm.t(k + 1) == "!" => {
            Some(format!("`{m}!`"))
        }
        (TokKind::Punct, "[") if is_index_context(fm, k) => {
            Some("slice/array index (can panic out of bounds)".to_string())
        }
        _ => None,
    }
}

/// True when the `[` at token `k` indexes an expression (as opposed to
/// opening an attribute, a macro's brackets, a slice pattern, an array
/// literal, or a type).
fn is_index_context(fm: &FileModel, k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let prev = fm.t(k - 1);
    match fm.kind(k - 1) {
        TokKind::Ident => !is_keyword(prev),
        TokKind::Int | TokKind::Float | TokKind::Str | TokKind::RawStr | TokKind::ByteStr => true,
        _ => prev == ")" || prev == "]",
    }
}

/// A float-ordering site at code token `k`, described, or `None`.
fn float_site(fm: &FileModel, k: usize) -> Option<String> {
    match (fm.kind(k), fm.t(k)) {
        (TokKind::Ident, "partial_cmp") => Some(
            "`partial_cmp` (NaN-partial ordering; ties and NaNs resolve arbitrarily)".to_string(),
        ),
        (TokKind::Ident, m @ ("max" | "min"))
            if k >= 2 && fm.t(k - 1) == "::" && matches!(fm.t(k - 2), "f64" | "f32") =>
        {
            Some(format!(
                "`{}::{m}` reduction (drops NaN, order-sensitive in folds)",
                fm.t(k - 2)
            ))
        }
        (TokKind::Punct, op @ ("==" | "!=")) => {
            let float_adjacent =
                (k > 0 && fm.kind(k - 1) == TokKind::Float) || fm.kind(k + 1) == TokKind::Float;
            if float_adjacent {
                Some(format!("float literal `{op}` comparison"))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Emits per-site violations for unjustified sites and reconciles the
/// justified counts against the count-pinned ledger, both directions.
#[allow(clippy::too_many_arguments)]
fn emit_ledgered(
    files: &[FileModel],
    sites: &BTreeMap<usize, BTreeMap<usize, (String, String)>>,
    marker: &str,
    ledger: &[(&str, usize, &str)],
    rule: &'static str,
    ledger_name: &str,
    remedy: &str,
    out: &mut Vec<Violation>,
) {
    let mut justified_by_file: BTreeMap<&str, usize> = BTreeMap::new();
    for (&fi, file_sites) in sites {
        let fm = &files[fi];
        let mut justified = 0usize;
        for (&k, (desc, fn_name)) in file_sites {
            let line = fm.toks[k].line;
            if fm.justified(line, marker, JUSTIFY_LOOKBACK) {
                justified += 1;
            } else {
                out.push(Violation {
                    file: fm.path.clone(),
                    line: line as usize,
                    rule,
                    message: format!(
                        "{desc} in fn `{fn_name}`, reachable from the hot-path roots: \
                         {remedy} — or justify with a `// {marker}` comment and a \
                         {ledger_name} entry"
                    ),
                });
            }
        }
        justified_by_file.insert(fm.path.as_str(), justified);
    }
    // Drift is judged against the files this scan actually saw: a
    // fixture scan must not trip over ledger entries for real files.
    // Entries naming files outside the real workspace are caught by the
    // lint crate's ledger_files_exist self-test instead.
    for (path, expected, _why) in ledger {
        if !files.iter().any(|fm| fm.path == *path) {
            continue;
        }
        let found = justified_by_file.get(path).copied().unwrap_or(0);
        if found != *expected {
            out.push(Violation {
                file: path.to_string(),
                line: 0,
                rule,
                message: format!(
                    "justified-site count drifted: {ledger_name} says {expected}, found \
                     {found} `// {marker}`-justified reachable site(s) — re-audit and \
                     update the ledger in omg-lint"
                ),
            });
        }
    }
    for (path, justified) in justified_by_file {
        if justified > 0 && lookup_counted(ledger, path).is_none() {
            out.push(Violation {
                file: path.to_string(),
                line: 0,
                rule,
                message: format!(
                    "{justified} `// {marker}`-justified site(s) in a file absent from \
                     omg-lint's {ledger_name} — pin the count there so drift is caught"
                ),
            });
        }
    }
}
