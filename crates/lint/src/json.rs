//! Hand-rolled JSON rendering for `omg-lint --json` (the workspace
//! vendors no serialization crate, and the report shape is four keys).

use crate::rules::Violation;
use crate::Summary;

/// Escapes `s` per RFC 8259 (quotes, backslashes, and control
/// characters; everything else passes through as UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn violation(v: &Violation) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
        escape(&v.file),
        v.line,
        escape(v.rule),
        escape(&v.message)
    )
}

/// Renders the full machine-readable report: scan size, reachable-set
/// size, cleanliness, and every violation.
pub fn render(s: &Summary) -> String {
    let vs: Vec<String> = s.violations.iter().map(violation).collect();
    format!(
        "{{\n  \"tool\": \"omg-lint\",\n  \"files_scanned\": {},\n  \"reachable_fns\": {},\n  \"clean\": {},\n  \"violations\": [{}]\n}}",
        s.files_scanned,
        s.reachable_fns,
        s.violations.is_empty(),
        if vs.is_empty() {
            String::new()
        } else {
            format!("\n    {}\n  ", vs.join(",\n    "))
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain — utf8 passes"), "plain — utf8 passes");
    }

    #[test]
    fn report_shape_is_stable() {
        let s = Summary {
            files_scanned: 2,
            reachable_fns: 7,
            violations: vec![Violation {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "panic-on-hot-path",
                message: "say \"why\"".into(),
            }],
            files: vec![],
        };
        let j = render(&s);
        assert!(j.contains("\"files_scanned\": 2"), "{j}");
        assert!(j.contains("\"reachable_fns\": 7"), "{j}");
        assert!(j.contains("\"clean\": false"), "{j}");
        assert!(j.contains("\"line\":3"), "{j}");
        assert!(j.contains("say \\\"why\\\""), "{j}");
        let clean = Summary {
            files_scanned: 0,
            reachable_fns: 0,
            violations: vec![],
            files: vec![],
        };
        assert!(render(&clean).contains("\"violations\": []"));
    }
}
