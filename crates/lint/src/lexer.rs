//! A single-pass Rust token lexer.
//!
//! This replaces the PR-8 "strip comments and strings, then substring
//! match" scanner. Working on spanned tokens instead of stripped text
//! kills two whole failure classes at once:
//!
//! * **word-boundary false positives** — `unsafe_code` can never match
//!   a rule looking for the `unsafe` token, because identifiers are
//!   single tokens;
//! * **literal blind spots** — raw strings (`r#"…"#`), nested block
//!   comments, and byte/char literals containing `//` or `"` are lexed
//!   as single tokens, so they can neither *mask* the rest of a file
//!   (the old stripper treated `b'"'` as opening a string) nor *fake* a
//!   violation from prose.
//!
//! The lexer is deliberately small: it recognizes exactly the token
//! shapes the rules and the call-graph extractor need (identifiers,
//! lifetimes, the literal family, comments, and a handful of multi-byte
//! operators). It does not validate Rust — on garbage input it still
//! produces *some* token stream and never panics, which is all a linter
//! needs.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifiers *and* keywords (`unwrap`, `fn`, `r#match`).
    Ident,
    /// `'a`, `'static`, `'_` — the quote plus the name.
    Lifetime,
    /// Integer literal (`42`, `0xff_u32`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2f64`).
    Float,
    /// `"…"` and `c"…"` string literals.
    Str,
    /// `r"…"` / `r#"…"#` raw strings (any hash depth).
    RawStr,
    /// `b"…"` / `br#"…"#` byte strings.
    ByteStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'` char literals.
    Char,
    /// `b'x'` byte literals.
    Byte,
    /// Operators and punctuation; a small set is lexed multi-byte
    /// (`::`, `->`, `==`, `..`, …) so the rules can match sequences.
    Punct,
    /// `// …` line comments (incl. docs) and nested `/* … */` blocks.
    Comment,
}

/// One spanned token: byte range into the source plus the 1-based line
/// the token starts on.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text, borrowed from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Multi-byte operators, longest first so maximal munch is a linear
/// scan. `<<`/`>>` are deliberately absent: keeping every angle bracket
/// a single token makes generic-depth tracking in the item extractor
/// trivial, and no rule needs shift operators.
const PUNCTS: &[&str] = &[
    "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=",
];

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn at(&self, k: usize) -> u8 {
        *self.src.get(self.i + k).unwrap_or(&0)
    }

    fn bump_lines(&mut self, from: usize, to: usize) {
        self.line += self.src[from..to.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.toks.push(Tok {
            kind,
            start,
            end,
            line,
        });
    }

    /// Consumes `"…"` starting at the opening quote; returns the index
    /// just past the closing quote (or EOF).
    fn quoted(&self, mut j: usize) -> usize {
        debug_assert_eq!(self.src[j], b'"');
        j += 1;
        while j < self.src.len() {
            match self.src[j] {
                b'\\' => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        j
    }

    /// Consumes `#…#"…"#…#` raw-string bodies: `j` points at the first
    /// `#` or the `"`. Returns the index just past the closing quote and
    /// hashes, or `None` if this is not a raw string opener after all.
    fn raw_quoted(&self, mut j: usize) -> Option<usize> {
        let mut hashes = 0usize;
        while self.at(j - self.i) == b'#' {
            hashes += 1;
            j += 1;
        }
        if self.at(j - self.i) != b'"' {
            return None;
        }
        j += 1;
        while j < self.src.len() {
            if self.src[j] == b'"' {
                let mut k = 0;
                while k < hashes && *self.src.get(j + 1 + k).unwrap_or(&0) == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
        Some(j)
    }

    /// Consumes `'…'` char-literal bodies starting just past the opening
    /// quote; returns the index past the closing quote.
    fn char_body(&self, mut j: usize) -> usize {
        if *self.src.get(j).unwrap_or(&0) == b'\\' {
            j += 2; // the backslash and the escaped byte (or `u`)
            while j < self.src.len() && self.src[j] != b'\'' {
                j += 1;
            }
            return (j + 1).min(self.src.len());
        }
        // A plain char: one (possibly multi-byte) char then the quote.
        j += 1;
        while j < self.src.len() && self.src[j] >= 0x80 {
            j += 1;
        }
        if j < self.src.len() && self.src[j] == b'\'' {
            j + 1
        } else {
            j
        }
    }

    fn number(&self, mut j: usize) -> (usize, bool) {
        let mut float = false;
        if self.src[j] == b'0' && matches!(*self.src.get(j + 1).unwrap_or(&0), b'x' | b'o' | b'b') {
            j += 2;
            while j < self.src.len() && (self.src[j].is_ascii_alphanumeric() || self.src[j] == b'_')
            {
                j += 1;
            }
            return (j, false);
        }
        while j < self.src.len() && (self.src[j].is_ascii_digit() || self.src[j] == b'_') {
            j += 1;
        }
        // A decimal point only if followed by a digit (`1..n` stays a
        // range, `1.max(2)` stays a method call).
        if j + 1 < self.src.len() && self.src[j] == b'.' && self.src[j + 1].is_ascii_digit() {
            float = true;
            j += 1;
            while j < self.src.len() && (self.src[j].is_ascii_digit() || self.src[j] == b'_') {
                j += 1;
            }
        }
        // Exponent.
        if j < self.src.len() && matches!(self.src[j], b'e' | b'E') {
            let mut k = j + 1;
            if k < self.src.len() && matches!(self.src[k], b'+' | b'-') {
                k += 1;
            }
            if k < self.src.len() && self.src[k].is_ascii_digit() {
                float = true;
                j = k;
                while j < self.src.len() && (self.src[j].is_ascii_digit() || self.src[j] == b'_') {
                    j += 1;
                }
            }
        }
        // Type suffix (`f64`, `u32`, …).
        if j < self.src.len() && is_ident_start(self.src[j]) {
            let suffix_start = j;
            while j < self.src.len() && is_ident_continue(self.src[j]) {
                j += 1;
            }
            if self.src[suffix_start] == b'f' {
                float = true;
            }
        }
        (j, float)
    }

    fn run(mut self) -> Vec<Tok> {
        while self.i < self.src.len() {
            let start = self.i;
            let line = self.line;
            let b = self.src[self.i];

            // Whitespace.
            if b.is_ascii_whitespace() {
                if b == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
                continue;
            }

            // Comments.
            if b == b'/' && self.at(1) == b'/' {
                let mut j = self.i;
                while j < self.src.len() && self.src[j] != b'\n' {
                    j += 1;
                }
                self.push(TokKind::Comment, start, j, line);
                self.i = j;
                continue;
            }
            if b == b'/' && self.at(1) == b'*' {
                let mut depth = 1usize;
                let mut j = self.i + 2;
                while j < self.src.len() && depth > 0 {
                    if self.src[j] == b'/' && *self.src.get(j + 1).unwrap_or(&0) == b'*' {
                        depth += 1;
                        j += 2;
                    } else if self.src[j] == b'*' && *self.src.get(j + 1).unwrap_or(&0) == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                self.bump_lines(start, j);
                self.push(TokKind::Comment, start, j, line);
                self.i = j;
                continue;
            }

            // Raw strings / raw identifiers: r"…", r#"…"#, r#ident.
            if b == b'r' && matches!(self.at(1), b'"' | b'#') {
                if let Some(end) = self.raw_quoted(self.i + 1) {
                    self.bump_lines(start, end);
                    self.push(TokKind::RawStr, start, end, line);
                    self.i = end;
                    continue;
                }
                if self.at(1) == b'#' && is_ident_start(self.at(2)) {
                    let mut j = self.i + 2;
                    while j < self.src.len() && is_ident_continue(self.src[j]) {
                        j += 1;
                    }
                    self.push(TokKind::Ident, start, j, line);
                    self.i = j;
                    continue;
                }
            }

            // Byte strings and byte literals: b"…", br#"…"#, b'x'.
            if b == b'b' {
                if self.at(1) == b'"' {
                    let end = self.quoted(self.i + 1);
                    self.bump_lines(start, end);
                    self.push(TokKind::ByteStr, start, end, line);
                    self.i = end;
                    continue;
                }
                if self.at(1) == b'r' && matches!(self.at(2), b'"' | b'#') {
                    if let Some(end) = self.raw_quoted(self.i + 2) {
                        self.bump_lines(start, end);
                        self.push(TokKind::ByteStr, start, end, line);
                        self.i = end;
                        continue;
                    }
                }
                if self.at(1) == b'\'' {
                    let end = self.char_body(self.i + 2);
                    self.push(TokKind::Byte, start, end, line);
                    self.i = end;
                    continue;
                }
            }

            // C strings: c"…", cr#"…"#.
            if b == b'c' {
                if self.at(1) == b'"' {
                    let end = self.quoted(self.i + 1);
                    self.bump_lines(start, end);
                    self.push(TokKind::Str, start, end, line);
                    self.i = end;
                    continue;
                }
                if self.at(1) == b'r' && matches!(self.at(2), b'"' | b'#') {
                    if let Some(end) = self.raw_quoted(self.i + 2) {
                        self.bump_lines(start, end);
                        self.push(TokKind::RawStr, start, end, line);
                        self.i = end;
                        continue;
                    }
                }
            }

            // Plain strings.
            if b == b'"' {
                let end = self.quoted(self.i);
                self.bump_lines(start, end);
                self.push(TokKind::Str, start, end, line);
                self.i = end;
                continue;
            }

            // Char literal vs lifetime.
            if b == b'\'' {
                let n1 = self.at(1);
                if n1 == b'\\' {
                    let end = self.char_body(self.i + 1);
                    self.push(TokKind::Char, start, end, line);
                    self.i = end;
                    continue;
                }
                // `'x'` (any single char, incl. one that could start a
                // lifetime: `'a'` is a char, `'a ` is a lifetime).
                if n1 != 0 && n1 != b'\'' {
                    let end = self.char_body(self.i + 1);
                    if end > self.i + 2
                        && self.src[end - 1] == b'\''
                        && end == self.i + n_len(n1) + 2
                    {
                        self.push(TokKind::Char, start, end, line);
                        self.i = end;
                        continue;
                    }
                }
                if is_ident_start(n1) {
                    let mut j = self.i + 1;
                    while j < self.src.len() && is_ident_continue(self.src[j]) {
                        j += 1;
                    }
                    self.push(TokKind::Lifetime, start, j, line);
                    self.i = j;
                    continue;
                }
                self.push(TokKind::Punct, start, self.i + 1, line);
                self.i += 1;
                continue;
            }

            // Identifiers / keywords.
            if is_ident_start(b) {
                let mut j = self.i + 1;
                while j < self.src.len() && is_ident_continue(self.src[j]) {
                    j += 1;
                }
                self.push(TokKind::Ident, start, j, line);
                self.i = j;
                continue;
            }

            // Numbers.
            if b.is_ascii_digit() {
                let (end, float) = self.number(self.i);
                self.push(
                    if float { TokKind::Float } else { TokKind::Int },
                    start,
                    end,
                    line,
                );
                self.i = end;
                continue;
            }

            // Multi-byte operators, then single punctuation.
            let rest = &self.src[self.i..];
            if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(p.as_bytes())) {
                self.push(TokKind::Punct, start, start + p.len(), line);
                self.i += p.len();
                continue;
            }
            self.push(TokKind::Punct, start, self.i + 1, line);
            self.i += 1;
        }
        self.toks
    }
}

/// Byte length of the char starting with byte `b` (for `'…'`
/// disambiguation — multi-byte UTF-8 chars in char literals).
fn n_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Lexes `src` into spanned tokens (comments included as
/// [`TokKind::Comment`] tokens; whitespace dropped). Never panics.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_text(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let got = kinds_and_text("fn foo_1(x: &u8) -> u8 { *x }");
        assert_eq!(got[0], (TokKind::Ident, "fn".into()));
        assert_eq!(got[1], (TokKind::Ident, "foo_1".into()));
        assert!(got.contains(&(TokKind::Punct, "->".into())));
    }

    #[test]
    fn raw_strings_are_single_tokens_any_hash_depth() {
        for src in [
            "r\"unsafe { }\"",
            "r#\"a \" b // unsafe\"#",
            "r##\"nested \"# still inside\"##",
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokKind::RawStr);
            assert_eq!(toks[0].end, src.len());
        }
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let got = kinds_and_text("let r#match = 1;");
        assert_eq!(got[1], (TokKind::Ident, "r#match".into()));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "/* outer /* inner */ still outer */ unsafe";
        let got = kinds_and_text(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, TokKind::Comment);
        assert_eq!(got[1], (TokKind::Ident, "unsafe".into()));
    }

    #[test]
    fn byte_and_char_literals_containing_quotes_and_slashes() {
        // The old stripper treated `b'"'` as `b` + char-open + string-open,
        // swallowing the rest of the line. The lexer must keep sync.
        let got = kinds_and_text("let a = b'\"'; let b = '/'; let c = '\\''; done");
        assert!(got.contains(&(TokKind::Byte, "b'\"'".into())));
        assert!(got.contains(&(TokKind::Char, "'/'".into())));
        assert!(got.contains(&(TokKind::Char, "'\\''".into())));
        assert_eq!(got.last().unwrap(), &(TokKind::Ident, "done".into()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let got = kinds_and_text("fn f<'a>(x: &'a u8, y: &'static str, z: &'_ u8) {}");
        let lifetimes: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static", "'_"]);
        // …while `'a'` really is a char:
        assert_eq!(kinds_and_text("'a'")[0], (TokKind::Char, "'a'".into()));
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let got = kinds_and_text("1 1.0 1e-9 2f64 0x1f 1..2 1.max(2)");
        assert_eq!(got[0], (TokKind::Int, "1".into()));
        assert_eq!(got[1], (TokKind::Float, "1.0".into()));
        assert_eq!(got[2], (TokKind::Float, "1e-9".into()));
        assert_eq!(got[3], (TokKind::Float, "2f64".into()));
        assert_eq!(got[4], (TokKind::Int, "0x1f".into()));
        // Ranges and method calls on ints keep their `.` tokens.
        assert_eq!(got[5], (TokKind::Int, "1".into()));
        assert_eq!(got[6], (TokKind::Punct, "..".into()));
        assert!(got.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn byte_strings_and_c_strings() {
        let got = kinds_and_text(r##"b"//not a comment" br#"raw "bytes""# c"c-str""##);
        assert_eq!(got[0].0, TokKind::ByteStr);
        assert_eq!(got[1].0, TokKind::ByteStr);
        assert_eq!(got[2].0, TokKind::Str);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"s\ntr\" c";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text(src) == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn garbage_never_panics() {
        for src in [
            "'",
            "r#",
            "b'",
            "\"unterminated",
            "/* open",
            "r##\"open",
            "'\\",
        ] {
            let _ = lex(src);
        }
    }
}
