//! Name-based call-graph approximation and hot-path reachability.
//!
//! Edges are built from identifier references inside function bodies:
//! any identifier that names a workspace function becomes an edge to
//! every candidate that context cannot rule out. The resolution ladder
//! (see [`resolve`]) narrows only where Rust's expression grammar
//! guarantees the excluded candidates are impossible — `.name(` can
//! only be a method, a bare `name` can only be a free fn, `name:` is a
//! field label, `.name` without a call is a field access — and
//! qualified paths whose qualifier it cannot interpret **fall back to
//! every same-named candidate**. Unresolvable references therefore
//! stay reachable (the sound direction); references to external names
//! (`Vec::push`, `f64::max`) match no workspace function and produce
//! no edge.
//!
//! Function values count: a bare `helper` passed to `map` or stored in
//! a struct edges to `helper`, which is how closure-carrying assertion
//! factories keep their callees visible. The one dispatch the tokens
//! cannot see through is a closure *called through a field*
//! (`(self.func)(sample)`), so the assertion factories that create
//! those closures are rooted explicitly in [`ROOTS`].

use crate::items::{extract_fns, is_keyword, FileModel, FnDef};
use crate::lexer::TokKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The call graph over the analyzed subset of the workspace.
pub struct Graph {
    /// Every extracted function, in file order.
    pub fns: Vec<FnDef>,
    /// Function indices by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Caller → callee-set, parallel to `fns`.
    pub edges: Vec<BTreeSet<usize>>,
}

/// Builds the graph over `files`; only files with `eligible[i]` get
/// their functions extracted (callers and callees alike).
pub fn build(files: &[FileModel], eligible: &[bool]) -> Graph {
    let mut fns = Vec::new();
    for (fi, fm) in files.iter().enumerate() {
        if eligible[fi] {
            fns.extend(extract_fns(fm, fi));
        }
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
    for i in 0..fns.len() {
        let (b0, b1) = match fns[i].body {
            Some(r) => r,
            None => continue,
        };
        let fm = &files[fns[i].file];
        for k in b0..=b1 {
            if fm.kind(k) != TokKind::Ident {
                continue;
            }
            let nm = fm.t(k).trim_start_matches("r#");
            if is_keyword(nm) {
                continue;
            }
            let cands = match by_name.get(nm) {
                Some(c) => c,
                None => continue,
            };
            // A nested `fn nm` definition is not a reference.
            if k > 0 && fm.t(k - 1) == "fn" {
                continue;
            }
            for t in resolve(fm, k, &fns[i], cands, &fns, files) {
                edges[i].insert(t);
            }
        }
    }
    Graph {
        fns,
        by_name,
        edges,
    }
}

/// Narrows `cands` using the tokens around reference `k`. Each branch
/// is justified by Rust's expression grammar, so the narrowing stays
/// sound for workspace code:
///
/// - `path::name` — candidates whose `impl`/`trait` type or defining
///   module matches the qualifier; **falls back to every candidate**
///   when the qualifier is opaque (a crate name, a generic, `<T as
///   Tr>`), because an unresolvable qualified call may still land on
///   any of them.
/// - `.name(` — strictly a method call: candidates defined in an
///   `impl`/`trait`. No fallback: dot syntax cannot invoke a free fn,
///   so an empty method set means the callee is external.
/// - `.name` without `(` — a field access, never a method reference
///   (Rust has no bare method values via dot; a fn-typed field is
///   invoked as `(x.f)()`, and whatever fn was *stored* in the field
///   is caught as a value reference at the store site). No edge.
/// - bare `name:` — a struct-literal/pattern field name, parameter,
///   or binding annotation; never a value. No edge.
/// - any other bare `name` — a possible fn-as-value reference
///   (`map(helper)`, `fold(acc, merge)`) or direct call `name(…)`;
///   both resolve only to free functions, since naming a method
///   requires a path qualifier. Methods are excluded, no fallback.
fn resolve(
    fm: &FileModel,
    k: usize,
    caller: &FnDef,
    cands: &[usize],
    fns: &[FnDef],
    files: &[FileModel],
) -> Vec<usize> {
    let prev = if k > 0 { fm.t(k - 1) } else { "" };
    let next = fm.t(k + 1);
    if prev == "::" && k >= 2 && fm.kind(k - 2) == TokKind::Ident {
        let q = fm.t(k - 2).trim_start_matches("r#");
        let narrowed: Vec<usize> = if q == "Self" {
            match &caller.self_type {
                Some(st) => cands
                    .iter()
                    .copied()
                    .filter(|&c| fns[c].self_type.as_deref() == Some(st.as_str()))
                    .collect(),
                None => Vec::new(),
            }
        } else {
            cands
                .iter()
                .copied()
                .filter(|&c| {
                    fns[c].self_type.as_deref() == Some(q)
                        || file_stem(&files[fns[c].file].path) == q
                })
                .collect()
        };
        if narrowed.is_empty() {
            cands.to_vec()
        } else {
            narrowed
        }
    } else if prev == "." {
        if next == "(" {
            cands
                .iter()
                .copied()
                .filter(|&c| fns[c].self_type.is_some())
                .collect()
        } else {
            Vec::new()
        }
    } else if next == ":" {
        Vec::new()
    } else {
        cands
            .iter()
            .copied()
            .filter(|&c| fns[c].self_type.is_none())
            .collect()
    }
}

/// `crates/geom/src/matchers.rs` → `matchers`.
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

/// One hot-path root declaration.
pub enum RootSpec {
    /// Every function defined in this file.
    File(&'static str),
    /// A method: (`impl`/`trait` self type, name).
    Method(&'static str, &'static str),
    /// Every function named exactly this.
    Name(&'static str),
    /// Every function whose name ends with this (the assertion-factory
    /// convention — the closures they build run on the hot path but
    /// dispatch through a field the tokens cannot follow).
    NameSuffix(&'static str),
}

impl RootSpec {
    pub fn describe(&self) -> String {
        match self {
            RootSpec::File(f) => format!("every fn in {f}"),
            RootSpec::Method(t, n) => format!("{t}::{n}"),
            RootSpec::Name(n) => format!("fn {n}"),
            RootSpec::NameSuffix(s) => format!("fns named *{s}"),
        }
    }
}

/// The hot-path roots: the scoring drivers the paper's replication
/// invariants (stream==batch, indexed==reference, service==sequential)
/// are stated over, the pool's parallel map (the closures it runs are
/// scoring closures), the geometry matcher entry points, and the
/// assertion factories (see module docs for why factories are roots).
pub const ROOTS: &[RootSpec] = &[
    RootSpec::File("crates/scenario/src/drivers.rs"),
    RootSpec::File("crates/geom/src/matchers.rs"),
    RootSpec::Method("ThreadPool", "map_indexed"),
    RootSpec::Method("ThreadPool", "map_indexed_coarse"),
    RootSpec::NameSuffix("_assertion"),
    RootSpec::NameSuffix("_assertion_set"),
    RootSpec::Name("assertion_set"),
    RootSpec::Name("prepared_set"),
    RootSpec::Name("preparer"),
];

/// Resolves the root specs; returns root fn indices and the specs that
/// matched nothing (each of those is a lint violation — a silently
/// unanchored root would make the whole pass vacuous).
pub fn resolve_roots(g: &Graph, files: &[FileModel]) -> (Vec<usize>, Vec<String>) {
    let mut roots = Vec::new();
    let mut missing = Vec::new();
    for spec in ROOTS {
        let before = roots.len();
        match spec {
            RootSpec::File(path) => {
                for (i, f) in g.fns.iter().enumerate() {
                    if files[f.file].path == *path {
                        roots.push(i);
                    }
                }
            }
            RootSpec::Method(ty, name) => {
                for (i, f) in g.fns.iter().enumerate() {
                    if f.name == *name && f.self_type.as_deref() == Some(*ty) {
                        roots.push(i);
                    }
                }
            }
            RootSpec::Name(name) => {
                for (i, f) in g.fns.iter().enumerate() {
                    if f.name == *name {
                        roots.push(i);
                    }
                }
            }
            RootSpec::NameSuffix(suf) => {
                for (i, f) in g.fns.iter().enumerate() {
                    if f.name.ends_with(suf) {
                        roots.push(i);
                    }
                }
            }
        }
        if roots.len() == before {
            missing.push(spec.describe());
        }
    }
    roots.sort_unstable();
    roots.dedup();
    (roots, missing)
}

/// BFS over the edge sets; returns the reachable flag per fn.
pub fn reachable(g: &Graph, roots: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; g.fns.len()];
    let mut q: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            q.push_back(r);
        }
    }
    while let Some(i) = q.pop_front() {
        for &j in &g.edges[i] {
            if !seen[j] {
                seen[j] = true;
                q.push_back(j);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> (Vec<FileModel>, Graph) {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(p, s)| FileModel::new(p.to_string(), s.to_string()))
            .collect();
        let eligible = vec![true; models.len()];
        let g = build(&models, &eligible);
        (models, g)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.by_name[name][0]
    }

    #[test]
    fn free_call_method_call_and_value_ref_make_edges() {
        let (_m, g) = ws(&[(
            "crates/x/src/lib.rs",
            "fn a() { b(); }\nfn b() {}\nstruct S;\nimpl S { fn m(&self) {} }\nfn c(s: &S) { s.m(); }\nfn d(v: &[u8]) { v.iter().map(helper); }\nfn helper(_x: &u8) -> u8 { 0 }",
        )]);
        assert!(g.edges[idx(&g, "a")].contains(&idx(&g, "b")));
        assert!(g.edges[idx(&g, "c")].contains(&idx(&g, "m")));
        assert!(g.edges[idx(&g, "d")].contains(&idx(&g, "helper")));
    }

    #[test]
    fn qualified_calls_narrow_by_type_and_module() {
        let (_m, g) = ws(&[
            (
                "crates/x/src/alpha.rs",
                "pub struct A;\nimpl A { pub fn go(&self) {} }\npub fn free() {}",
            ),
            (
                "crates/x/src/beta.rs",
                "pub struct B;\nimpl B { pub fn go(&self) {} }",
            ),
            (
                "crates/x/src/user.rs",
                "fn use_a(a: &A) { A::go(a); alpha::free(); }",
            ),
        ]);
        let user = idx(&g, "use_a");
        let a_go = g.by_name["go"]
            .iter()
            .copied()
            .find(|&i| g.fns[i].self_type.as_deref() == Some("A"))
            .unwrap();
        let b_go = g.by_name["go"]
            .iter()
            .copied()
            .find(|&i| g.fns[i].self_type.as_deref() == Some("B"))
            .unwrap();
        assert!(g.edges[user].contains(&a_go));
        assert!(
            !g.edges[user].contains(&b_go),
            "A::go must not edge to B::go"
        );
        assert!(g.edges[user].contains(&idx(&g, "free")));
    }

    #[test]
    fn unresolvable_names_keep_every_candidate() {
        // `q.go()` — a method call on an unknown receiver must stay
        // edged to every method named `go` (sound over-approximation).
        let (_m, g) = ws(&[
            (
                "crates/x/src/alpha.rs",
                "pub struct A;\nimpl A { pub fn go(&self) {} }",
            ),
            (
                "crates/x/src/beta.rs",
                "pub struct B;\nimpl B { pub fn go(&self) {} }",
            ),
            ("crates/x/src/user.rs", "fn call(q: &Q) { q.go(); }"),
        ]);
        let user = idx(&g, "call");
        for &i in &g.by_name["go"] {
            assert!(g.edges[user].contains(&i));
        }
    }

    #[test]
    fn self_calls_resolve_through_the_impl_type() {
        let (_m, g) = ws(&[(
            "crates/x/src/lib.rs",
            "struct A;\nimpl A { fn f() { Self::g(); } fn g() {} }\nstruct B;\nimpl B { fn g() {} }",
        )]);
        let f = idx(&g, "f");
        let a_g = g.by_name["g"]
            .iter()
            .copied()
            .find(|&i| g.fns[i].self_type.as_deref() == Some("A"))
            .unwrap();
        let b_g = g.by_name["g"]
            .iter()
            .copied()
            .find(|&i| g.fns[i].self_type.as_deref() == Some("B"))
            .unwrap();
        assert!(g.edges[f].contains(&a_g));
        assert!(!g.edges[f].contains(&b_g));
    }

    #[test]
    fn external_names_make_no_edges() {
        let (_m, g) = ws(&[(
            "crates/x/src/lib.rs",
            "fn a(v: &mut Vec<u8>) { v.push(1); v.len(); f64::max(1.0, 2.0); }",
        )]);
        assert!(g.edges[idx(&g, "a")].is_empty());
    }

    #[test]
    fn reachability_is_transitive_and_bounded() {
        let (m, g) = ws(&[(
            "crates/scenario/src/drivers.rs",
            "pub fn score_window() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() { leaf(); }",
        )]);
        let (roots, missing) = {
            // Only the File root matches this mini-workspace.
            let mut roots = Vec::new();
            for (i, f) in g.fns.iter().enumerate() {
                if m[f.file].path == "crates/scenario/src/drivers.rs" && f.name == "score_window" {
                    roots.push(i);
                }
            }
            (roots, Vec::<String>::new())
        };
        assert!(missing.is_empty());
        let seen = reachable(&g, &roots);
        assert!(seen[idx(&g, "score_window")]);
        assert!(seen[idx(&g, "mid")]);
        assert!(seen[idx(&g, "leaf")]);
        assert!(
            !seen[idx(&g, "island")],
            "unrooted fn must stay unreachable"
        );
    }

    #[test]
    fn root_specs_resolve_and_report_missing() {
        let (m, g) = ws(&[
            (
                "crates/scenario/src/drivers.rs",
                "pub fn score_window() {}",
            ),
            (
                "crates/geom/src/matchers.rs",
                "pub fn nms_indices() {}",
            ),
            (
                "crates/core/src/runtime.rs",
                "pub struct ThreadPool;\nimpl ThreadPool { pub fn map_indexed(&self) {} pub fn map_indexed_coarse(&self) {} }",
            ),
            (
                "crates/domains/src/video.rs",
                "pub fn flicker_assertion() {}\npub fn video_assertion_set() {}\nimpl S { pub fn assertion_set(&self) {} pub fn prepared_set(&self) {} pub fn preparer(&self) {} }",
            ),
        ]);
        let (roots, missing) = resolve_roots(&g, &m);
        assert!(missing.is_empty(), "missing: {missing:?}");
        // Every declared fn above is a root.
        assert_eq!(roots.len(), g.fns.len());
        let g2 = build(&m[..1], &[true]);
        let (_, missing2) = resolve_roots(&g2, &m[..1]);
        assert!(
            !missing2.is_empty(),
            "dropping files must surface missing roots"
        );
    }
}
