//! `omg-lint` — the workspace invariant linter, gated in CI.
//!
//! Five **lexical** rules, each an invariant the engine's design
//! arguments lean on but the compiler cannot state:
//!
//! 1. **`unsafe` allowlist** — the `unsafe` keyword may appear only in
//!    the worker pool's job cell (`crates/core/src/runtime.rs`), and
//!    every `unsafe {` block / `unsafe impl` there must carry a
//!    `// SAFETY:` comment just above it. Likewise
//!    `#[allow(unsafe_code)]` opt-ins may appear only there.
//! 2. **No ad-hoc threads** — `std::thread` spawn/scope/Builder may be
//!    named only by the thread facade (`crates/core/src/sync.rs`) and
//!    the model scheduler (`crates/verify/src/sched.rs`); everything
//!    else must go through the pool so concurrency stays in the one
//!    model-checked place.
//! 3. **No hash containers on scoring paths** — scoring output must be
//!    bit-for-bit deterministic, so `HashMap`/`HashSet` (iteration
//!    order is randomized across builds) are banned from the scoring
//!    crates except for audited keyed-access-only uses, pinned by
//!    count so any new use forces a re-audit.
//! 4. **Audited `Ordering::Relaxed` ledger** — every `Relaxed` site in
//!    the workspace must be accounted for in [`RELAXED_LEDGER`] with a
//!    justification; a new site (or a removed one) fails the build
//!    until the ledger is re-audited.
//! 5. **Pairwise IoU confined to geom** — direct `.iou(` /
//!    `.iou_bev_aabb(` calls belong in `crates/geom/` (where the
//!    grid-indexed matchers and their O(n²) reference live); everywhere
//!    else must route matching through `omg_geom::matchers`, except the
//!    count-pinned small-`n` uses in [`IOU_ALLOWED`]. This keeps every
//!    matching loop on the sub-quadratic, equivalence-tested path.
//!
//! The scanner strips comments and string literals first (so prose —
//! and this linter's own pattern strings — never trip a rule) and
//! skips everything from a file's first `#[cfg(test)]` line onward
//! (the repo convention keeps test modules at the end of the file;
//! tests may spawn scoped threads and build throwaway hash maps).
//! `vendor/` is excluded: those are third-party compatibility shims,
//! not engine code.
//!
//! Run as `cargo run -p omg-lint` from the workspace root; exits
//! non-zero on any violation. The rule configs below are the audit
//! ledgers themselves — changing an allowlist is a reviewable diff.

use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain the `unsafe` keyword (and
/// `#[allow(unsafe_code)]`), with the audit rationale.
const UNSAFE_ALLOWED: &[(&str, &str)] = &[(
    "crates/core/src/runtime.rs",
    "the pool's lifetime-erased job cell; the handshake is model-checked by omg-verify",
)];

/// Substrings that mean "creating OS threads outside the facade".
const SPAWN_PATTERNS: &[&str] = &[
    "std::thread::spawn",
    "std::thread::scope",
    "std::thread::Builder",
    "use std::thread",
];

/// Files allowed to touch `std::thread` directly.
const SPAWN_ALLOWED: &[(&str, &str)] = &[
    (
        "crates/core/src/sync.rs",
        "the production half of the thread facade the pool is written against",
    ),
    (
        "crates/verify/src/sched.rs",
        "model threads are real OS threads driven one-at-a-time by the scheduler",
    ),
];

/// Directory prefixes whose (non-test) code is a scoring path: output
/// must be bit-for-bit deterministic, so hash-ordered containers are
/// banned except for the audited uses below.
const HASH_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/active/src",
    "crates/service/src",
    "crates/scenario/src",
    "crates/domains/src",
];

/// Audited keyed-access-only hash uses on scoring paths: (file, number
/// of mentioning lines, rationale). A count drift fails until
/// re-audited.
const HASH_ALLOWED: &[(&str, usize, &str)] = &[(
    "crates/active/src/ccmab.rs",
    3,
    "per-cell bandit stats: get/entry/len only, never iterated — selection order comes from the explicit candidate list",
)];

/// The audited `Ordering::Relaxed` ledger: (file, site count,
/// rationale). Every other file must use SeqCst (or stronger
/// reasoning — and then land here).
const RELAXED_LEDGER: &[(&str, usize, &str)] = &[
    (
        "crates/core/src/runtime.rs",
        5,
        "job abort flag (advisory; payload travels through a mutex) and chunk-cursor claims \
         (the RMW's atomicity suffices: claimed indices are data-independent and results \
         move through mutexes) — plus the seeded torn-claim mutation's load/store pair, \
         compiled out of production call sites",
    ),
    (
        "crates/service/src/service.rs",
        9,
        "monotonic accepted/scored counters and the idle-eviction logical clock: \
         single-word freshness hints, never used to order other memory",
    ),
];

/// Directory prefix whose files may call IoU primitives directly: the
/// geometry crate owns the grid-indexed matchers, their O(n²)
/// reference, and the equivalence proofs between them.
const IOU_HOME: &str = "crates/geom/";

/// Substrings that mean "scoring box overlap directly" (the indexed
/// `matchers::*` entry points do not match these patterns).
const IOU_PATTERNS: &[&str] = &[".iou(", ".iou_bev_aabb("];

/// Audited direct-IoU call sites outside geom: (file, number of
/// mentioning lines, rationale). Every use must be bounded by something
/// other than scene density; anything O(boxes²) belongs behind
/// `omg_geom::matchers`. A count drift fails until re-audited.
const IOU_ALLOWED: &[(&str, usize, &str)] = &[
    (
        "crates/domains/src/weak.rs",
        2,
        "weak labeler's best-overlap lookup and duplicate vote over one frame's \
         proposals: bounded by the proposal budget, not scene density",
    ),
    (
        "crates/eval/src/detection.rs",
        1,
        "detection-to-ground-truth matching in the evaluator: the loop is the \
         mAP definition and per-image ground truth stays small",
    ),
];

/// Source roots scanned relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "examples", "tests"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for whole-file (count-drift) findings.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Strips `//` comments, nested `/* */` comments, string literals
/// (plain and raw), and char literals, preserving line structure so
/// line numbers survive. Lifetimes (`'a`) are left alone.
fn strip_source(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            out.push(b'\n');
                        }
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < bytes.len() && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#') => {
                // Possible raw string: r"…" or r#"…"# (any # depth).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'"' {
                    j += 1;
                    'scan: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < bytes.len() && bytes[j + 1 + k] == b'#'
                            {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        if bytes[j] == b'\n' {
                            out.push(b'\n');
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    out.push(bytes[start]);
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{…}') vs lifetime ('a).
                let rest = &bytes[i + 1..];
                let is_char = matches!(rest, [b'\\', ..] | [_, b'\'', ..]);
                if is_char {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'\\' {
                        i += 2;
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        i += 2; // the char and its closing quote
                    }
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// True when `needle` occurs in `hay` with word boundaries on both
/// sides (so `unsafe` never matches `unsafe_code`).
fn has_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// `unsafe {` or `unsafe impl` on a (stripped) line — the forms that
/// demand a `// SAFETY:` comment.
fn unsafe_needs_safety(stripped: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = stripped[from..].find("unsafe") {
        let at = from + pos;
        let tail = stripped[at + "unsafe".len()..].trim_start();
        if tail.starts_with('{') || tail.starts_with("impl") {
            return true;
        }
        from = at + "unsafe".len();
    }
    false
}

/// How many lines above an `unsafe` site the `// SAFETY:` comment may
/// *start* (multi-line SAFETY comments, attributes, and continuation
/// lines in between are fine).
const SAFETY_LOOKBACK: usize = 10;

fn lookup<'a>(table: &'a [(&str, &str)], file: &str) -> Option<&'a str> {
    table.iter().find(|(f, _)| *f == file).map(|(_, why)| *why)
}

fn lookup_counted<'a>(table: &'a [(&str, usize, &str)], file: &str) -> Option<(usize, &'a str)> {
    table
        .iter()
        .find(|(f, _, _)| *f == file)
        .map(|(_, n, why)| (*n, *why))
}

/// Scans one file's source text. `file` is the workspace-relative
/// path with `/` separators; `raw` is the file contents.
pub fn scan_source(file: &str, raw: &str, out: &mut Vec<Violation>) {
    let stripped = strip_source(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut relaxed_count = 0usize;
    let mut hash_count = 0usize;
    let mut iou_count = 0usize;
    let in_hash_scope = HASH_SCOPE.iter().any(|p| file.starts_with(p));
    let in_iou_scope = !file.starts_with(IOU_HOME);

    for (idx, line) in stripped.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break; // repo convention: the test module ends the file
        }
        let lineno = idx + 1;

        // Rule 1: the unsafe allowlist.
        if has_word(line, "unsafe") {
            if let Some(_why) = lookup(UNSAFE_ALLOWED, file) {
                if unsafe_needs_safety(line) {
                    let start = idx.saturating_sub(SAFETY_LOOKBACK);
                    let documented = raw_lines[start..idx].iter().any(|l| l.contains("SAFETY:"));
                    if !documented {
                        out.push(Violation {
                            file: file.to_string(),
                            line: lineno,
                            rule: "undocumented-unsafe",
                            message: format!(
                                "`unsafe` block/impl without a `// SAFETY:` comment within \
                                 the {SAFETY_LOOKBACK} lines above"
                            ),
                        });
                    }
                }
            } else {
                out.push(Violation {
                    file: file.to_string(),
                    line: lineno,
                    rule: "unsafe-outside-allowlist",
                    message: "`unsafe` is confined to the pool's job cell \
                              (crates/core/src/runtime.rs); write safe code or extend the \
                              audited allowlist in omg-lint"
                        .to_string(),
                });
            }
        }
        if line.contains("allow(unsafe_code)") && lookup(UNSAFE_ALLOWED, file).is_none() {
            out.push(Violation {
                file: file.to_string(),
                line: lineno,
                rule: "unsafe-outside-allowlist",
                message: "`#[allow(unsafe_code)]` outside the audited allowlist".to_string(),
            });
        }

        // Rule 2: no ad-hoc thread creation.
        if SPAWN_PATTERNS.iter().any(|p| line.contains(p)) && lookup(SPAWN_ALLOWED, file).is_none()
        {
            out.push(Violation {
                file: file.to_string(),
                line: lineno,
                rule: "ad-hoc-thread",
                message: "direct std::thread use outside the facade; go through \
                          omg_core::runtime::ThreadPool (or omg_core::sync::thread) so the \
                          concurrency stays model-checked"
                    .to_string(),
            });
        }

        // Rule 3: hash containers on scoring paths (counted below).
        if in_hash_scope && (line.contains("HashMap") || line.contains("HashSet")) {
            hash_count += 1;
            if lookup_counted(HASH_ALLOWED, file).is_none() {
                out.push(Violation {
                    file: file.to_string(),
                    line: lineno,
                    rule: "hash-on-scoring-path",
                    message: "HashMap/HashSet on a scoring path: iteration order is \
                              randomized, which breaks bit-for-bit determinism — use \
                              Vec/BTreeMap, or audit a keyed-access-only use in omg-lint"
                        .to_string(),
                });
            }
        }

        // Rule 4: the Relaxed ledger (counted below).
        if line.contains("Ordering::Relaxed") {
            relaxed_count += 1;
        }

        // Rule 5: pairwise IoU confined to geom (counted below).
        if in_iou_scope && IOU_PATTERNS.iter().any(|p| line.contains(p)) {
            iou_count += 1;
            if lookup_counted(IOU_ALLOWED, file).is_none() {
                out.push(Violation {
                    file: file.to_string(),
                    line: lineno,
                    rule: "pairwise-iou-outside-geom",
                    message: "direct IoU call outside omg-geom: route matching through \
                              omg_geom::matchers (grid-indexed, reference-equivalent), or \
                              audit a bounded small-n use in omg-lint's IOU_ALLOWED"
                        .to_string(),
                });
            }
        }
    }

    if let Some((expected, _)) = lookup_counted(HASH_ALLOWED, file) {
        if hash_count != expected {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "hash-on-scoring-path",
                message: format!(
                    "audited hash-container line count drifted: ledger says {expected}, \
                     found {hash_count} — re-audit (keyed access only, no iteration) and \
                     update omg-lint's HASH_ALLOWED"
                ),
            });
        }
    }
    if let Some((expected, _)) = lookup_counted(IOU_ALLOWED, file) {
        if iou_count != expected {
            out.push(Violation {
                file: file.to_string(),
                line: 0,
                rule: "pairwise-iou-outside-geom",
                message: format!(
                    "audited direct-IoU line count drifted: ledger says {expected}, found \
                     {iou_count} — re-audit (bounded small-n only, never O(boxes²)) and \
                     update omg-lint's IOU_ALLOWED"
                ),
            });
        }
    }
    match lookup_counted(RELAXED_LEDGER, file) {
        Some((expected, _)) if relaxed_count != expected => out.push(Violation {
            file: file.to_string(),
            line: 0,
            rule: "unaudited-relaxed",
            message: format!(
                "Ordering::Relaxed site count drifted: ledger says {expected}, found \
                 {relaxed_count} — re-audit the orderings and update omg-lint's \
                 RELAXED_LEDGER"
            ),
        }),
        None if relaxed_count > 0 => out.push(Violation {
            file: file.to_string(),
            line: 0,
            rule: "unaudited-relaxed",
            message: format!(
                "{relaxed_count} Ordering::Relaxed site(s) in a file absent from \
                 omg-lint's RELAXED_LEDGER — justify them there or use SeqCst"
            ),
        }),
        _ => {}
    }
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "vendor" || name == "fixtures" {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// What a workspace scan covered and found.
#[derive(Debug)]
pub struct Summary {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every rule violation found, in path order.
    pub violations: Vec<Violation>,
}

/// Scans the workspace rooted at `root` (must contain `Cargo.toml`).
///
/// # Errors
///
/// Returns any I/O error from walking or reading the source tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Summary> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let raw = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scan_source(&rel, &raw, &mut violations);
    }
    Ok(Summary {
        files_scanned: files.len(),
        violations,
    })
}

/// CLI entry; scans the current directory as the workspace root and
/// returns the process exit code (0 clean, 1 violations, 2 usage/I-O).
pub fn run_cli() -> i32 {
    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!("omg-lint: run from the workspace root (no Cargo.toml here)");
        return 2;
    }
    match scan_workspace(&root) {
        Ok(summary) => {
            for v in &summary.violations {
                println!("{v}");
            }
            if summary.violations.is_empty() {
                println!(
                    "omg-lint: clean ({} files; rules: unsafe allowlist, thread facade, \
                     scoring-path hash ban, Relaxed ledger, IoU confinement)",
                    summary.files_scanned
                );
                0
            } else {
                println!(
                    "omg-lint: {} violation(s) in {} files scanned",
                    summary.violations.len(),
                    summary.files_scanned
                );
                1
            }
        }
        Err(err) => {
            eprintln!("omg-lint: scan failed: {err}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(file: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_source(file, src, &mut out);
        out
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    /// Count of violations of one rule (fixture files standing in for
    /// ledgered paths also trip the count-drift checks, so the single-
    /// rule tests filter to the rule under test).
    fn count_rule(v: &[Violation], rule: &str) -> usize {
        v.iter().filter(|x| x.rule == rule).count()
    }

    // ---- each rule fires on its fixture --------------------------------

    #[test]
    fn unsafe_outside_allowlist_fires() {
        let fixture = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let got = scan_one("crates/core/src/monitor.rs", fixture);
        assert_eq!(rules(&got), vec!["unsafe-outside-allowlist"]);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn allow_unsafe_attr_outside_allowlist_fires() {
        let fixture = "#[allow(unsafe_code)]\nmod m {}\n";
        let got = scan_one("crates/eval/src/lib.rs", fixture);
        assert_eq!(rules(&got), vec!["unsafe-outside-allowlist"]);
    }

    #[test]
    fn undocumented_unsafe_in_allowed_file_fires() {
        let fixture = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let got = scan_one("crates/core/src/runtime.rs", fixture);
        assert_eq!(count_rule(&got, "undocumented-unsafe"), 1);
    }

    #[test]
    fn documented_unsafe_in_allowed_file_is_clean() {
        let fixture = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller keeps p alive.\n    unsafe { *p }\n}\n";
        let got = scan_one("crates/core/src/runtime.rs", fixture);
        assert_eq!(count_rule(&got, "undocumented-unsafe"), 0);
        assert_eq!(count_rule(&got, "unsafe-outside-allowlist"), 0);
    }

    #[test]
    fn safety_comment_survives_an_attribute_in_between() {
        let fixture = "// SAFETY: the pointer is pinned by the handshake.\n#[allow(unsafe_code)]\nunsafe impl Send for J {}\n";
        let got = scan_one("crates/core/src/runtime.rs", fixture);
        assert_eq!(count_rule(&got, "undocumented-unsafe"), 0);
    }

    #[test]
    fn ad_hoc_thread_fires() {
        let fixture = "pub fn go() {\n    std::thread::spawn(|| {});\n}\n";
        let got = scan_one("crates/service/src/service.rs", fixture);
        assert_eq!(count_rule(&got, "ad-hoc-thread"), 1);
        let fixture2 = "use std::thread;\n";
        let got2 = scan_one("crates/core/src/stream.rs", fixture2);
        assert_eq!(rules(&got2), vec!["ad-hoc-thread"]);
    }

    #[test]
    fn facade_files_may_touch_std_thread() {
        let fixture = "pub fn s() { std::thread::Builder::new(); }\n";
        assert!(scan_one("crates/core/src/sync.rs", fixture).is_empty());
        assert!(scan_one("crates/verify/src/sched.rs", fixture).is_empty());
    }

    #[test]
    fn hash_on_scoring_path_fires() {
        let fixture = "use std::collections::HashMap;\n";
        let got = scan_one("crates/core/src/registry.rs", fixture);
        assert_eq!(rules(&got), vec!["hash-on-scoring-path"]);
        // …but not outside the scoring scope.
        assert!(scan_one("crates/bench/src/lib.rs", fixture).is_empty());
    }

    #[test]
    fn audited_hash_count_drift_fires() {
        // ccmab.rs is audited for exactly 3 mentioning lines; 1 drifts.
        let fixture = "use std::collections::HashMap;\n";
        let got = scan_one("crates/active/src/ccmab.rs", fixture);
        assert_eq!(rules(&got), vec!["hash-on-scoring-path"]);
        assert!(got[0].message.contains("drifted"), "{}", got[0].message);
    }

    #[test]
    fn unaudited_relaxed_fires() {
        let fixture = "fn f(c: &std::sync::atomic::AtomicUsize) -> usize {\n    c.load(std::sync::atomic::Ordering::Relaxed)\n}\n";
        let got = scan_one("crates/core/src/severity.rs", fixture);
        assert_eq!(rules(&got), vec!["unaudited-relaxed"]);
    }

    #[test]
    fn relaxed_ledger_count_drift_fires() {
        let fixture = "fn f(c: &A) { c.load(Ordering::Relaxed); }\n";
        let got = scan_one("crates/service/src/service.rs", fixture);
        assert_eq!(rules(&got), vec!["unaudited-relaxed"]);
        assert!(got[0].message.contains("drifted"), "{}", got[0].message);
    }

    #[test]
    fn pairwise_iou_outside_geom_fires() {
        let fixture = "fn worst(a: &[B], b: &[B]) -> f64 {\n    a[0].bbox.iou(&b[0].bbox)\n}\n";
        let got = scan_one("crates/track/src/tracker.rs", fixture);
        assert_eq!(rules(&got), vec!["pairwise-iou-outside-geom"]);
        assert_eq!(got[0].line, 2);
        // The BEV variant is confined too.
        let bev = "fn f(a: &B3, b: &B3) -> f64 { a.iou_bev_aabb(b) }\n";
        assert_eq!(
            rules(&scan_one("crates/domains/src/fusion.rs", bev)),
            vec!["pairwise-iou-outside-geom"]
        );
    }

    #[test]
    fn iou_inside_geom_is_clean() {
        let fixture = "fn f(a: &BBox2D, b: &BBox2D) -> f64 { a.iou(b) }\n";
        assert!(scan_one("crates/geom/src/reference.rs", fixture).is_empty());
        assert!(scan_one("crates/geom/tests/spatial_proptests.rs", fixture).is_empty());
    }

    #[test]
    fn indexed_matcher_calls_do_not_trip_the_iou_rule() {
        let fixture = "fn f(a: &[BBox2D], b: &[BBox2D]) -> Vec<(f64, usize, usize)> {\n    omg_geom::matchers::iou_pairs(a, b, 0.5)\n}\n";
        assert!(scan_one("crates/track/src/tracker.rs", fixture).is_empty());
    }

    #[test]
    fn audited_iou_count_drift_fires() {
        // detection.rs is audited for exactly 1 mentioning line; 2 drift.
        let fixture =
            "fn f(a: &B, b: &B) -> f64 {\n    a.bbox.iou(&b.bbox);\n    b.bbox.iou(&a.bbox)\n}\n";
        let got = scan_one("crates/eval/src/detection.rs", fixture);
        assert_eq!(rules(&got), vec!["pairwise-iou-outside-geom"]);
        assert!(got[0].message.contains("drifted"), "{}", got[0].message);
    }

    // ---- the stripper keeps prose and strings from tripping rules ------

    #[test]
    fn comments_strings_and_tests_do_not_trip_rules() {
        let fixture = concat!(
            "//! Docs may say unsafe and std::thread::spawn and HashMap freely.\n",
            "/* block comments too: Ordering::Relaxed */\n",
            "const P: &str = \"std::thread::spawn is banned\";\n",
            "const R: &str = r#\"unsafe { HashMap }\"#;\n",
            "fn lifetimes<'a>(x: &'a u8) -> &'a u8 { x }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashSet;\n",
            "    fn t() { std::thread::scope(|_| {}); }\n",
            "}\n",
        );
        assert!(scan_one("crates/core/src/database.rs", fixture).is_empty());
    }

    #[test]
    fn word_boundaries_respect_unsafe_code_attr() {
        let fixture = "#![deny(unsafe_code)]\n";
        assert!(scan_one("crates/core/src/lib.rs", fixture).is_empty());
    }

    // ---- the real workspace is clean ------------------------------------

    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let summary = scan_workspace(root).expect("scan");
        assert!(
            summary.files_scanned > 30,
            "scan must cover the workspace, saw {}",
            summary.files_scanned
        );
        let rendered: Vec<String> = summary.violations.iter().map(|v| v.to_string()).collect();
        assert!(
            rendered.is_empty(),
            "workspace violations:\n{}",
            rendered.join("\n")
        );
    }
}
