//! `omg-lint` — the workspace invariant linter, gated in CI.
//!
//! Second generation: instead of stripping comments/strings with an
//! ad-hoc scanner and matching substrings, the linter now lexes every
//! source file into spanned Rust tokens ([`lexer`]), extracts function
//! definitions with `impl`/`trait` attribution ([`items`]), and builds
//! a name-based call graph ([`graph`]) so two rules can reason about
//! **reachability from the scoring hot path** rather than file paths:
//!
//! - **`panic-on-hot-path`** — no function transitively reachable from
//!   the hot-path roots (`score_window`, the `omg_geom::matchers`
//!   entry points, `ThreadPool::map_indexed{,_coarse}`, the stream
//!   drivers, and the assertion factories) may contain
//!   `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
//!   or a slice/array index, except sites justified by a `// PANIC:`
//!   comment and pinned, per file, in `rules::PANIC_ALLOWED`.
//! - **`float-order-on-hot-path`** — on the same reachable set, float
//!   ordering must be NaN-total and thread-count-independent: no
//!   `partial_cmp`, no `f64::max`/`f64::min` reduction chains, no
//!   `==`/`!=` against float literals; route comparisons through
//!   `total_cmp`, `omg_geom`'s `score_order`, or
//!   `omg_core::float::{fmax, fmin}`. Exceptions carry `// FLOAT:`
//!   justifications pinned in `rules::FLOAT_ALLOWED`.
//!
//! The call graph is an over-approximation built from identifier
//! references: narrowing (by `Type::`, `Self::`, method position) only
//! happens when the tokens justify it, and unresolvable references
//! keep every same-named candidate — so for workspace-internal code a
//! function the rules treat as unreachable really is unreachable. The
//! one indirection tokens cannot see through — closures invoked via a
//! stored field, as `FnAssertion::check` does — is closed by rooting
//! the assertion factories that build those closures.
//!
//! The five first-generation lexical rules ride on the same token
//! stream (which killed the word-boundary and string-masking false
//! positives the old stripper had): the `unsafe` allowlist, the thread
//! facade, the scoring-path hash ban, the `Ordering::Relaxed` ledger,
//! and IoU confinement to `omg_geom`. See [`rules`] for the ledgers —
//! each is count-pinned so any drift fails CI until re-audited.
//!
//! Run `cargo run -p omg-lint` from the workspace root; `--json`
//! emits the machine-readable report CI archives, `--explain <rule>`
//! prints a rule's rationale. Exits 0 clean, 1 on violations, 2 on
//! usage or I/O errors.

pub mod graph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod rules;

use items::FileModel;
use std::path::{Path, PathBuf};

pub use rules::Violation;

/// One source file handed to [`analyze`]: workspace-relative path
/// (with `/` separators) plus contents.
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// What a workspace scan covered and found.
#[derive(Debug)]
pub struct Summary {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Functions reachable from the hot-path roots in the call graph.
    pub reachable_fns: usize,
    /// Every rule violation found, ordered by (file, line, rule).
    pub violations: Vec<Violation>,
    /// The scanned workspace-relative paths (for coverage checks).
    pub files: Vec<String>,
}

/// Runs every rule over the given sources.
pub fn analyze(files: Vec<SourceFile>) -> Summary {
    let models: Vec<FileModel> = files
        .into_iter()
        .map(|s| FileModel::new(s.path, s.text))
        .collect();
    let mut violations = Vec::new();
    for m in &models {
        rules::lexical(m, &mut violations);
    }
    let reachable_fns = rules::graph_pass(&models, &mut violations);
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Summary {
        files_scanned: models.len(),
        reachable_fns,
        violations,
        files: models.iter().map(|m| m.path.clone()).collect(),
    }
}

/// Source roots scanned relative to the workspace root. `crates/`
/// recursion covers `src/`, `benches/`, and `src/bin/` alike;
/// `vendor/` and fixture directories are skipped by the walker.
const SCAN_ROOTS: &[&str] = &["crates", "examples", "tests"];

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "vendor" || name == "fixtures" {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans the workspace rooted at `root` (must contain `Cargo.toml`).
///
/// # Errors
///
/// Returns any I/O error from walking or reading the source tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Summary> {
    let mut paths = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile { path: rel, text });
    }
    Ok(analyze(files))
}

/// The rule catalog: every rule name the linter can emit, with the
/// rationale `--explain` prints.
pub const RULES: &[(&str, &str)] = &[
    (
        "unsafe-outside-allowlist",
        "The `unsafe` keyword (and `#[allow(unsafe_code)]`) may appear only in the \
         worker pool's lifetime-erased job cell (crates/core/src/runtime.rs), whose \
         handshake is model-checked by omg-verify. Everywhere else, write safe code or \
         extend the audited UNSAFE_ALLOWED table in omg-lint — a reviewable diff.",
    ),
    (
        "undocumented-unsafe",
        "Inside the allowlisted file, every `unsafe {` block and `unsafe impl` must \
         carry a `// SAFETY:` comment starting within the 10 lines above it, so the \
         proof obligation is stated next to the code that discharges it.",
    ),
    (
        "ad-hoc-thread",
        "std::thread spawn/scope/Builder may be named only by the thread facade \
         (crates/core/src/sync.rs) and the model scheduler (crates/verify/src/sched.rs). \
         Everything else goes through omg_core::runtime::ThreadPool so all concurrency \
         stays in the one model-checked place.",
    ),
    (
        "hash-on-scoring-path",
        "Scoring output must be bit-for-bit deterministic, and HashMap/HashSet \
         iteration order is randomized across builds. The scoring crates may not use \
         them except for count-pinned keyed-access-only uses in HASH_ALLOWED; any new \
         mention drifts the count and forces a re-audit.",
    ),
    (
        "unaudited-relaxed",
        "Every Ordering::Relaxed site in the workspace must be justified in \
         RELAXED_LEDGER with a memory-ordering argument; the per-file site count is \
         pinned so a new site (or a removed one) fails until the ledger is re-audited.",
    ),
    (
        "pairwise-iou-outside-geom",
        "Direct `.iou(` / `.iou_bev_aabb(` calls belong in crates/geom/, where the \
         grid-indexed matchers and their O(n^2) reference live; everywhere else routes \
         matching through omg_geom::matchers, except the count-pinned bounded small-n \
         uses in IOU_ALLOWED. This keeps every matching loop on the sub-quadratic, \
         equivalence-tested path.",
    ),
    (
        "panic-on-hot-path",
        "No function transitively reachable from the hot-path roots (score_window, \
         omg_geom::matchers::*, ThreadPool::map_indexed{,_coarse}, the stream drivers, \
         the assertion factories) may contain .unwrap()/.expect(), \
         panic!/unreachable!/todo!/unimplemented!, or a slice/array index: a panicking \
         monitor is a silently absent monitor. Either restructure (Result/Option, \
         iterators, get()), or justify the site with a `// PANIC:` comment within 10 \
         lines and pin the per-file justified count in PANIC_ALLOWED. The call graph \
         over-approximates: unresolvable calls stay reachable, so a clean pass is \
         meaningful.",
    ),
    (
        "float-order-on-hot-path",
        "On the hot-path reachable set, float ordering must be NaN-total and \
         thread-count-independent so scores are bit-for-bit reproducible at any pool \
         width: no partial_cmp (ties/NaN resolve arbitrarily), no f64::max / f64::min \
         reduction chains (they drop NaN and encode fold order), no ==/!= against \
         float literals. Use total_cmp, omg_geom's score_order, or \
         omg_core::float::{fmax,fmin}; justified exceptions carry `// FLOAT:` and a \
         FLOAT_ALLOWED count pin. Parallel reductions must merge in index order \
         (ThreadPool::map_indexed already does).",
    ),
    (
        "hot-path-root-missing",
        "Each declared hot-path root must resolve to at least one function in the \
         call graph. If a root resolves to nothing (an entry point was renamed or a \
         file moved), the reachability pass would silently go vacuous over it — so \
         that is itself a violation, keeping the panic/float rules honest.",
    ),
];

/// The `--explain` text for `rule`, if known.
pub fn explain(rule: &str) -> Option<&'static str> {
    RULES.iter().find(|(r, _)| *r == rule).map(|(_, why)| *why)
}

fn rule_names() -> String {
    RULES
        .iter()
        .map(|(r, _)| format!("  {r}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// CLI entry; `args` are the process arguments after the binary name.
/// Scans the current directory as the workspace root and returns the
/// process exit code (0 clean, 1 violations, 2 usage/I-O).
pub fn run_cli(args: &[String]) -> i32 {
    let mut as_json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => as_json = true,
            "--explain" => {
                return match it.next() {
                    Some(rule) => match explain(rule) {
                        Some(why) => {
                            println!("{rule}\n\n{why}");
                            0
                        }
                        None => {
                            eprintln!("omg-lint: unknown rule `{rule}`; rules:\n{}", rule_names());
                            2
                        }
                    },
                    None => {
                        eprintln!(
                            "omg-lint: --explain needs a rule name; rules:\n{}",
                            rule_names()
                        );
                        2
                    }
                };
            }
            other => {
                eprintln!("omg-lint: unknown argument `{other}` (try --json or --explain <rule>)");
                return 2;
            }
        }
    }
    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!("omg-lint: run from the workspace root (no Cargo.toml here)");
        return 2;
    }
    match scan_workspace(&root) {
        Ok(summary) => {
            if as_json {
                println!("{}", json::render(&summary));
                return if summary.violations.is_empty() { 0 } else { 1 };
            }
            for v in &summary.violations {
                println!("{v}");
            }
            if summary.violations.is_empty() {
                println!(
                    "omg-lint: clean ({} files, {} hot-path-reachable fns; lexical rules + \
                     panic-freedom + float-determinism over the reachable set)",
                    summary.files_scanned, summary.reachable_fns
                );
                0
            } else {
                println!(
                    "omg-lint: {} violation(s) in {} files scanned ({} reachable fns)",
                    summary.violations.len(),
                    summary.files_scanned,
                    summary.reachable_fns
                );
                1
            }
        }
        Err(err) => {
            eprintln!("omg-lint: scan failed: {err}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lexical-rule harness: one file, lexical rules only.
    fn scan_one(file: &str, src: &str) -> Vec<Violation> {
        let m = FileModel::new(file.to_string(), src.to_string());
        let mut out = Vec::new();
        rules::lexical(&m, &mut out);
        out
    }

    /// Full-pipeline harness over an in-memory mini workspace.
    fn analyze_files(files: &[(&str, &str)]) -> Summary {
        analyze(
            files
                .iter()
                .map(|(p, s)| SourceFile {
                    path: p.to_string(),
                    text: s.to_string(),
                })
                .collect(),
        )
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    /// Count of violations of one rule (fixture files standing in for
    /// ledgered paths also trip count-drift checks, and mini
    /// workspaces miss most hot-path roots, so per-rule tests filter).
    fn count_rule(v: &[Violation], rule: &str) -> usize {
        v.iter().filter(|x| x.rule == rule).count()
    }

    // ---- lexical rules fire on their fixtures --------------------------

    #[test]
    fn unsafe_outside_allowlist_fires() {
        let fixture = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let got = scan_one("crates/core/src/monitor.rs", fixture);
        assert_eq!(rules_of(&got), vec!["unsafe-outside-allowlist"]);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn allow_unsafe_attr_outside_allowlist_fires() {
        let fixture = "#[allow(unsafe_code)]\nmod m {}\n";
        let got = scan_one("crates/eval/src/lib.rs", fixture);
        assert_eq!(rules_of(&got), vec!["unsafe-outside-allowlist"]);
    }

    #[test]
    fn undocumented_unsafe_in_allowed_file_fires() {
        let fixture = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let got = scan_one("crates/core/src/runtime.rs", fixture);
        assert_eq!(count_rule(&got, "undocumented-unsafe"), 1);
    }

    #[test]
    fn documented_unsafe_in_allowed_file_is_clean() {
        let fixture =
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller keeps p alive.\n    unsafe { *p }\n}\n";
        let got = scan_one("crates/core/src/runtime.rs", fixture);
        assert_eq!(count_rule(&got, "undocumented-unsafe"), 0);
        assert_eq!(count_rule(&got, "unsafe-outside-allowlist"), 0);
    }

    #[test]
    fn safety_comment_survives_an_attribute_in_between() {
        let fixture = "// SAFETY: the pointer is pinned by the handshake.\n#[allow(unsafe_code)]\nunsafe impl Send for J {}\n";
        let got = scan_one("crates/core/src/runtime.rs", fixture);
        assert_eq!(count_rule(&got, "undocumented-unsafe"), 0);
    }

    #[test]
    fn ad_hoc_thread_fires() {
        let fixture = "pub fn go() {\n    std::thread::spawn(|| {});\n}\n";
        let got = scan_one("crates/service/src/service.rs", fixture);
        assert_eq!(count_rule(&got, "ad-hoc-thread"), 1);
        let fixture2 = "use std::thread;\n";
        let got2 = scan_one("crates/core/src/stream.rs", fixture2);
        assert_eq!(rules_of(&got2), vec!["ad-hoc-thread"]);
    }

    #[test]
    fn facade_files_may_touch_std_thread() {
        let fixture = "pub fn s() { std::thread::Builder::new(); }\n";
        assert!(scan_one("crates/core/src/sync.rs", fixture).is_empty());
        assert!(scan_one("crates/verify/src/sched.rs", fixture).is_empty());
    }

    #[test]
    fn hash_on_scoring_path_fires() {
        let fixture = "use std::collections::HashMap;\n";
        let got = scan_one("crates/core/src/registry.rs", fixture);
        assert_eq!(rules_of(&got), vec!["hash-on-scoring-path"]);
        // …but not outside the scoring scope.
        assert!(scan_one("crates/bench/src/lib.rs", fixture).is_empty());
    }

    #[test]
    fn audited_hash_count_drift_fires() {
        // ccmab.rs is audited for exactly 3 mentioning lines; 1 drifts.
        let fixture = "use std::collections::HashMap;\n";
        let got = scan_one("crates/active/src/ccmab.rs", fixture);
        assert_eq!(rules_of(&got), vec!["hash-on-scoring-path"]);
        assert!(got[0].message.contains("drifted"), "{}", got[0].message);
    }

    #[test]
    fn unaudited_relaxed_fires() {
        let fixture = "fn f(c: &std::sync::atomic::AtomicUsize) -> usize {\n    c.load(std::sync::atomic::Ordering::Relaxed)\n}\n";
        let got = scan_one("crates/core/src/severity.rs", fixture);
        assert_eq!(rules_of(&got), vec!["unaudited-relaxed"]);
    }

    #[test]
    fn relaxed_ledger_count_drift_fires() {
        let fixture = "fn f(c: &A) { c.load(Ordering::Relaxed); }\n";
        let got = scan_one("crates/service/src/service.rs", fixture);
        assert_eq!(rules_of(&got), vec!["unaudited-relaxed"]);
        assert!(got[0].message.contains("drifted"), "{}", got[0].message);
    }

    #[test]
    fn pairwise_iou_outside_geom_fires() {
        let fixture = "fn worst(a: &[B], b: &[B]) -> f64 {\n    a[0].bbox.iou(&b[0].bbox)\n}\n";
        let got = scan_one("crates/track/src/tracker.rs", fixture);
        assert_eq!(rules_of(&got), vec!["pairwise-iou-outside-geom"]);
        assert_eq!(got[0].line, 2);
        // The BEV variant is confined too.
        let bev = "fn f(a: &B3, b: &B3) -> f64 { a.iou_bev_aabb(b) }\n";
        assert_eq!(
            rules_of(&scan_one("crates/domains/src/fusion.rs", bev)),
            vec!["pairwise-iou-outside-geom"]
        );
    }

    #[test]
    fn iou_inside_geom_is_clean() {
        let fixture = "fn f(a: &BBox2D, b: &BBox2D) -> f64 { a.iou(b) }\n";
        assert!(scan_one("crates/geom/src/reference.rs", fixture).is_empty());
        assert!(scan_one("crates/geom/tests/spatial_proptests.rs", fixture).is_empty());
    }

    #[test]
    fn indexed_matcher_calls_do_not_trip_the_iou_rule() {
        let fixture = "fn f(a: &[BBox2D], b: &[BBox2D]) -> Vec<(f64, usize, usize)> {\n    omg_geom::matchers::iou_pairs(a, b, 0.5)\n}\n";
        assert!(scan_one("crates/track/src/tracker.rs", fixture).is_empty());
    }

    #[test]
    fn audited_iou_count_drift_fires() {
        // detection.rs is audited for exactly 1 mentioning line; 2 drift.
        let fixture =
            "fn f(a: &B, b: &B) -> f64 {\n    a.bbox.iou(&b.bbox);\n    b.bbox.iou(&a.bbox)\n}\n";
        let got = scan_one("crates/eval/src/detection.rs", fixture);
        assert_eq!(rules_of(&got), vec!["pairwise-iou-outside-geom"]);
        assert!(got[0].message.contains("drifted"), "{}", got[0].message);
    }

    // ---- the lexer keeps prose, strings, and literals out of rules -----

    #[test]
    fn comments_strings_and_tests_do_not_trip_rules() {
        let fixture = concat!(
            "//! Docs may say unsafe and std::thread::spawn and HashMap freely.\n",
            "/* block comments too: Ordering::Relaxed */\n",
            "/* nested /* block */ comments: unsafe { } */\n",
            "const P: &str = \"std::thread::spawn is banned\";\n",
            "const R: &str = r#\"unsafe { HashMap }\"#;\n",
            "const B: &[u8] = b\"HashSet // unsafe\";\n",
            "const C: char = '\"';\n",
            "const BC: u8 = b'\"';\n",
            "fn lifetimes<'a>(x: &'a u8) -> &'a u8 { x }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashSet;\n",
            "    fn t() { std::thread::scope(|_| {}); }\n",
            "}\n",
        );
        assert!(scan_one("crates/core/src/database.rs", fixture).is_empty());
    }

    #[test]
    fn word_boundaries_respect_unsafe_code_attr() {
        let fixture = "#![deny(unsafe_code)]\n";
        assert!(scan_one("crates/core/src/lib.rs", fixture).is_empty());
    }

    #[test]
    fn stripper_blind_spots_are_fixed() {
        // Each of these desynchronized the old character-level
        // stripper: a byte literal holding a quote, a char holding a
        // slash pair, and a raw string with hashes. After any of them,
        // a real violation must still be seen and a quoted fake must
        // still be ignored.
        let cases = [
            "const Q: u8 = b'\"';\nfn f() { std::thread::spawn(|| {}); }\n",
            "const S: char = '/';\nconst T: char = '/';\nfn f() { std::thread::spawn(|| {}); }\n",
            "const R: &str = r##\"text \"# std::thread::spawn \"##;\nfn f() { std::thread::spawn(|| {}); }\n",
        ];
        for src in cases {
            let got = scan_one("crates/core/src/monitor.rs", src);
            assert_eq!(rules_of(&got), vec!["ad-hoc-thread"], "fixture: {src}");
        }
    }

    // ---- panic-freedom over the reachable set --------------------------

    /// A mini workspace whose only root is `score_window` (fixture
    /// files sit at real rooted paths so resolve_roots anchors there).
    fn hot(body_of_helper: &str) -> Summary {
        analyze_files(&[
            (
                "crates/scenario/src/toy.rs",
                "pub fn toy_assertion() { helper(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                &format!("pub fn helper(v: &[u8]) -> u8 {{ {body_of_helper} }}\n"),
            ),
        ])
    }

    #[test]
    fn panic_rule_fires_on_reachable_unwrap_expect_and_index() {
        let s = hot("let a = v.first().unwrap(); let b = v.first().expect(\"x\"); a + b + v[0]");
        assert_eq!(
            count_rule(&s.violations, "panic-on-hot-path"),
            3,
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn panic_rule_fires_on_panic_macros() {
        let s = hot("if v.is_empty() { panic!(\"no\") } else { todo!() }");
        assert_eq!(count_rule(&s.violations, "panic-on-hot-path"), 2);
    }

    #[test]
    fn panic_rule_ignores_unreachable_fns_and_near_misses() {
        // `island` is never called from a root; `unwrap_or` and
        // non-index brackets are near-misses.
        let s = analyze_files(&[
            (
                "crates/scenario/src/toy.rs",
                "pub fn toy_assertion() { helper(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                concat!(
                    "pub fn helper(v: &[u8]) -> u8 {\n",
                    "    let x = v.first().copied().unwrap_or(0);\n",
                    "    let arr = [0u8; 4];\n",
                    "    let _t: &[u8] = &arr;\n",
                    "    let w = vec![1u8];\n",
                    "    x + w.len() as u8\n",
                    "}\n",
                    "pub fn island(v: &[u8]) -> u8 { v[0] }\n",
                ),
            ),
        ]);
        assert_eq!(
            count_rule(&s.violations, "panic-on-hot-path"),
            0,
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn panic_rule_sees_through_fn_values_and_method_calls() {
        // helper is passed as a value, then the target indexes.
        let s = analyze_files(&[
            (
                "crates/scenario/src/toy.rs",
                "pub fn toy_assertion(v: &[u8]) { let _: Vec<u8> = v.iter().map(pick).collect(); }\nfn pick(x: &u8) -> u8 { TABLE[*x as usize] }\nconst TABLE: [u8; 256] = [0; 256];\n",
            ),
        ]);
        assert_eq!(
            count_rule(&s.violations, "panic-on-hot-path"),
            1,
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn justified_panic_without_ledger_entry_flags_the_file() {
        let s = hot("// PANIC: v is non-empty by construction.\n    v.first().unwrap() + 0");
        // The site itself is justified (no per-line violation), but the
        // file has no PANIC_ALLOWED pin, which is a file-level finding.
        let v: Vec<&Violation> = s
            .violations
            .iter()
            .filter(|v| v.rule == "panic-on-hot-path")
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 0);
        assert!(v[0].message.contains("PANIC_ALLOWED"), "{}", v[0].message);
    }

    #[test]
    fn panic_ledger_drift_fires_in_both_directions() {
        let mk = |src: &str| {
            vec![
                FileModel::new(
                    "crates/scenario/src/toy.rs".to_string(),
                    "pub fn toy_assertion() { helper(); }\n".to_string(),
                ),
                FileModel::new("crates/core/src/util.rs".to_string(), src.to_string()),
            ]
        };
        // Ledger says 2, source justifies 1 → drift.
        let files = mk("pub fn helper(v: &[u8]) -> u8 {\n    // PANIC: bounded.\n    v[0]\n}\n");
        let mut out = Vec::new();
        rules::graph_pass_with(
            &files,
            &[("crates/core/src/util.rs", 2, "test pin")],
            &[],
            &mut out,
        );
        assert_eq!(count_rule(&out, "panic-on-hot-path"), 1, "{out:?}");
        assert!(out.iter().any(|v| v.message.contains("drifted")), "{out:?}");
        // Ledger names a file with zero justified sites → also drift.
        let files2 = mk("pub fn helper(_v: &[u8]) -> u8 { 0 }\n");
        let mut out2 = Vec::new();
        rules::graph_pass_with(
            &files2,
            &[("crates/core/src/util.rs", 1, "stale pin")],
            &[],
            &mut out2,
        );
        assert!(
            out2.iter()
                .any(|v| v.rule == "panic-on-hot-path" && v.message.contains("drifted")),
            "{out2:?}"
        );
    }

    // ---- float-determinism over the reachable set ----------------------

    #[test]
    fn float_rule_fires_on_partial_cmp_fold_max_and_literal_eq() {
        let s = hot(
            "let mut xs = vec![0.5f64]; xs.sort_by(|a, b| a.partial_cmp(b).expect(\"cmp\"));\n    let m = xs.iter().copied().fold(0.0f64, f64::max);\n    if m == 0.0 { return 1; }\n    0",
        );
        assert_eq!(
            count_rule(&s.violations, "float-order-on-hot-path"),
            3,
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn float_rule_ignores_blessed_and_near_miss_forms() {
        let s = hot(
            "let mut xs = vec![0.5f64]; xs.sort_by(|a, b| a.total_cmp(b));\n    let c = xs[0].max(0.0);\n    let n = v.len(); if n == 0 { return 0; }\n    c as u8\n    // PANIC: xs is non-empty: just built it.\n",
        );
        assert_eq!(
            count_rule(&s.violations, "float-order-on-hot-path"),
            0,
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn float_rule_ignores_unreachable_partial_cmp() {
        let s = analyze_files(&[
            ("crates/scenario/src/toy.rs", "pub fn toy_assertion() {}\n"),
            (
                "crates/core/src/util.rs",
                "pub fn island(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n",
            ),
        ]);
        assert_eq!(count_rule(&s.violations, "float-order-on-hot-path"), 0);
    }

    // ---- root integrity ------------------------------------------------

    #[test]
    fn missing_roots_are_themselves_violations() {
        // A workspace with no matchers.rs / ThreadPool / factories
        // must say so rather than silently passing.
        let s = analyze_files(&[("crates/scenario/src/toy.rs", "pub fn toy_assertion() {}\n")]);
        assert!(
            count_rule(&s.violations, "hot-path-root-missing") >= 4,
            "{:?}",
            s.violations
        );
    }

    #[test]
    fn every_emittable_rule_is_in_the_catalog() {
        for rule in [
            "unsafe-outside-allowlist",
            "undocumented-unsafe",
            "ad-hoc-thread",
            "hash-on-scoring-path",
            "unaudited-relaxed",
            "pairwise-iou-outside-geom",
            "panic-on-hot-path",
            "float-order-on-hot-path",
            "hot-path-root-missing",
        ] {
            assert!(explain(rule).is_some(), "missing catalog entry for {rule}");
        }
        assert_eq!(RULES.len(), 9);
    }

    // ---- the real workspace is clean and fully covered -----------------

    fn real_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
    }

    #[test]
    fn workspace_is_clean() {
        let summary = scan_workspace(real_root()).expect("scan");
        assert!(
            summary.files_scanned > 30,
            "scan must cover the workspace, saw {}",
            summary.files_scanned
        );
        assert!(
            summary.reachable_fns >= 200,
            "the hot-path reachable set collapsed to {} fns — roots or call edges broke",
            summary.reachable_fns
        );
        let rendered: Vec<String> = summary.violations.iter().map(|v| v.to_string()).collect();
        assert!(
            rendered.is_empty(),
            "workspace violations:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn ledger_files_exist() {
        // Drift checking in emit_ledgered only judges files the scan
        // saw, so a renamed or deleted file with a stale ledger entry
        // must be caught here instead.
        let summary = scan_workspace(real_root()).expect("scan");
        for (path, _, _) in rules::PANIC_ALLOWED.iter().chain(rules::FLOAT_ALLOWED) {
            assert!(
                summary.files.iter().any(|f| f == path),
                "ledger entry for `{path}` does not match any scanned file — \
                 re-audit the PANIC_ALLOWED/FLOAT_ALLOWED ledgers"
            );
        }
    }

    #[test]
    fn scan_covers_tests_examples_benches_and_bins() {
        let summary = scan_workspace(real_root()).expect("scan");
        for needle in [
            "tests/",
            "examples/",
            "crates/bench/benches/",
            "crates/bench/src/bin/",
        ] {
            assert!(
                summary.files.iter().any(|f| f.starts_with(needle)),
                "no scanned file under {needle}"
            );
        }
        assert!(
            !summary.files.iter().any(|f| f.contains("vendor/")),
            "vendor must stay excluded"
        );
    }
}
