//! Item extraction: functions, `impl`/`trait` attribution, module
//! paths, and the per-file token model the rules run on.
//!
//! The extractor is a single forward walk over the token stream with a
//! scope stack — an *approximation* of Rust's item grammar, not a
//! parser. It is tuned to be **sound in the over-approximating
//! direction** for this workspace's code: when attribution is
//! ambiguous (a nested item inside a method body, a type it cannot
//! name), the function is still extracted and the call-graph treats its
//! calls conservatively. A function the extractor *misses* would be a
//! soundness hole, so the shapes it must handle (free fns, inherent and
//! trait `impl` methods, trait default methods, nested modules,
//! generics, `where` clauses) are all covered by fixture tests.

use crate::lexer::{lex, Tok, TokKind};

/// One extracted function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The bare function name (`score_window`, `check`).
    pub name: String,
    /// The `impl`/`trait` self type for methods (`FnAssertion`,
    /// `Scenario`), `None` for free functions.
    pub self_type: Option<String>,
    /// Index into the workspace's file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token index range of the body, **inclusive** of both braces.
    /// `None` for body-less trait requirements.
    pub body: Option<(usize, usize)>,
}

/// One analyzed source file: its code tokens (comments split out), its
/// comments (for `// PANIC:` / `// FLOAT:` / `// SAFETY:` justification
/// lookup), and where the trailing `#[cfg(test)]` module starts.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw source text.
    pub text: String,
    /// Code tokens (everything but comments).
    pub toks: Vec<Tok>,
    /// Comment tokens, in order.
    pub comments: Vec<Tok>,
    /// Code-token index of the first `#[cfg(test)]` attribute; tokens
    /// from here on are the file's test module (repo convention keeps
    /// it last) and are exempt from every rule.
    pub cut: usize,
    /// True for integration-test sources (`tests/` directories): their
    /// code is scanned by the lexical rules but never enters the
    /// call graph (test helpers may unwrap freely).
    pub is_test: bool,
}

impl FileModel {
    /// Lexes and models one source file.
    pub fn new(path: String, text: String) -> Self {
        let all = lex(&text);
        let mut toks = Vec::with_capacity(all.len());
        let mut comments = Vec::new();
        for t in all {
            if t.kind == TokKind::Comment {
                comments.push(t);
            } else {
                toks.push(t);
            }
        }
        let cut = find_cfg_test(&toks, &text);
        let is_test = path.contains("/tests/") || path.starts_with("tests/");
        FileModel {
            path,
            text,
            toks,
            comments,
            cut,
            is_test,
        }
    }

    /// The text of code token `i`, or `""` out of range.
    pub fn t(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// The kind of code token `i`, or `Punct` out of range.
    pub fn kind(&self, i: usize) -> TokKind {
        self.toks.get(i).map(|t| t.kind).unwrap_or(TokKind::Punct)
    }

    /// True if a comment containing `marker` starts on a line in
    /// `lo..=hi`.
    pub fn comment_in(&self, lo: u32, hi: u32, marker: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= hi && c.text(&self.text).contains(marker))
    }

    /// True if a comment containing `marker` starts within `lookback`
    /// lines above `line` (inclusive of `line` itself, so trailing
    /// same-line comments count).
    pub fn justified(&self, line: u32, marker: &str, lookback: u32) -> bool {
        self.comment_in(line.saturating_sub(lookback), line, marker)
    }
}

/// Code-token index of the first `#[cfg(test)]` attribute.
fn find_cfg_test(toks: &[Tok], src: &str) -> usize {
    let txt = |i: usize| toks.get(i).map(|t: &Tok| t.text(src)).unwrap_or("");
    for i in 0..toks.len() {
        if txt(i) == "#"
            && txt(i + 1) == "["
            && txt(i + 2) == "cfg"
            && txt(i + 3) == "("
            && txt(i + 4) == "test"
            && txt(i + 5) == ")"
        {
            return i;
        }
    }
    toks.len()
}

/// Rust keywords that can never be call names or expression tails.
/// Used both to reject `if (…)` as a "call to `if`" and to keep `&mut
/// [f64]` from looking like an index expression.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "union", "unsafe", "use", "where",
    "while", "yield",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

enum Scope {
    /// `impl Type { … }` / `trait Name { … }` — fns inside get this
    /// self type.
    Typed(String),
    /// Any other brace (body, block, match arm, `mod`).
    Block,
}

/// Extracts every function defined in `file` before the test cutoff.
pub fn extract_fns(file: &FileModel, file_idx: usize) -> Vec<FnDef> {
    let toks = &file.toks[..file.cut];
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // An `impl`/`trait` header that has been parsed but whose `{` has
    // not been reached yet: (token index of the `{`, self type).
    let mut pending_typed: Option<(usize, String)> = None;
    let mut i = 0usize;
    while i < toks.len() {
        match (file.kind(i), file.t(i)) {
            (TokKind::Ident, "impl") | (TokKind::Ident, "trait") => {
                // The scope is pushed when the opening brace is reached
                // (see the `{` arm below), so remember it.
                pending_typed =
                    parse_typed_header(file, i, toks.len()).map(|(ty, open)| (open, ty));
                i += 1;
            }
            (TokKind::Ident, "fn") if file.kind(i + 1) == TokKind::Ident => {
                let name = file.t(i + 1).trim_start_matches("r#").to_string();
                let line = file.toks[i].line;
                let self_type = scopes.iter().rev().find_map(|s| match s {
                    Scope::Typed(t) => Some(t.clone()),
                    Scope::Block => None,
                });
                let body = find_body(file, i + 2, toks.len());
                out.push(FnDef {
                    name,
                    self_type,
                    file: file_idx,
                    line,
                    body,
                });
                i += 2;
            }
            (TokKind::Punct, "{") => {
                match pending_typed.take() {
                    Some((open, ty)) if open == i => scopes.push(Scope::Typed(ty)),
                    other => {
                        pending_typed = other;
                        scopes.push(Scope::Block);
                    }
                }
                i += 1;
            }
            (TokKind::Punct, "}") => {
                scopes.pop();
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses an `impl`/`trait` header starting at token `i`; returns the
/// self-type name and the token index of the opening `{`.
fn parse_typed_header(file: &FileModel, i: usize, end: usize) -> Option<(String, usize)> {
    let is_trait = file.t(i) == "trait";
    let mut j = i + 1;
    let mut ty: Option<String> = None;
    let mut angle = 0i32;
    let mut in_where = false;
    while j < end {
        match (file.kind(j), file.t(j)) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Punct, "{") if angle <= 0 => {
                return ty.map(|t| (t, j));
            }
            (TokKind::Punct, ";") if angle <= 0 => return None,
            (TokKind::Ident, "for") if angle <= 0 && !is_trait && !in_where => ty = None,
            (TokKind::Ident, "where") if angle <= 0 => in_where = true,
            // For `impl A for B` the last path segment before `{`
            // wins (`for` resets); a trait's name is its first
            // ident — supertrait names must not overwrite it.
            (TokKind::Ident, w)
                if angle <= 0 && !in_where && !is_keyword(w) && (ty.is_none() || !is_trait) =>
            {
                ty = Some(w.trim_start_matches("r#").to_string());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// From just past `fn name`, finds the body's opening `{` (skipping
/// generics, parameters, return type, and `where` clause) and returns
/// the inclusive token range of the body. `None` for `;`-terminated
/// trait requirements.
fn find_body(file: &FileModel, mut j: usize, end: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    while j < end {
        match (file.kind(j), file.t(j)) {
            (TokKind::Punct, "(") => paren += 1,
            (TokKind::Punct, ")") => paren -= 1,
            (TokKind::Punct, "[") => bracket += 1,
            (TokKind::Punct, "]") => bracket -= 1,
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Punct, ";") if paren == 0 && bracket == 0 => return None,
            (TokKind::Punct, "{") if paren == 0 && bracket == 0 && angle <= 0 => {
                // Found the body; match braces to its close.
                let open = j;
                let mut depth = 0i32;
                while j < end {
                    match file.t(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((open, j));
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some((open, end.saturating_sub(1)));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::new("crates/x/src/lib.rs".into(), src.into())
    }

    fn names(src: &str) -> Vec<(String, Option<String>)> {
        let m = model(src);
        extract_fns(&m, 0)
            .into_iter()
            .map(|f| (f.name, f.self_type))
            .collect()
    }

    #[test]
    fn free_fns_and_methods_are_attributed() {
        let src = "fn free() {}\nimpl Foo { fn method(&self) {} }\nimpl Bar for Foo { fn trait_m(&self) {} }\ntrait Baz { fn req(&self); fn dflt(&self) -> u8 { 0 } }";
        assert_eq!(
            names(src),
            vec![
                ("free".into(), None),
                ("method".into(), Some("Foo".into())),
                ("trait_m".into(), Some("Foo".into())),
                ("req".into(), Some("Baz".into())),
                ("dflt".into(), Some("Baz".into())),
            ]
        );
    }

    #[test]
    fn generics_where_clauses_and_return_types_do_not_confuse_bodies() {
        let src = "impl<S: Fn() -> u8> Wrap<S> {\n    fn go<T>(&self, x: [u8; 4]) -> Vec<Box<dyn Fn(&T) -> u8>>\n    where T: Clone {\n        body_call();\n    }\n}";
        let m = model(src);
        let fns = extract_fns(&m, 0);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].self_type.as_deref(), Some("Wrap"));
        let (b0, b1) = fns[0].body.unwrap();
        let body: Vec<&str> = (b0..=b1).map(|i| m.t(i)).collect();
        assert!(body.contains(&"body_call"), "{body:?}");
    }

    #[test]
    fn test_modules_are_cut() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() {} }";
        assert_eq!(names(src), vec![("live".into(), None)]);
    }

    #[test]
    fn fn_pointer_types_are_not_defs() {
        let src = "fn real(cb: fn(usize) -> usize) -> usize { cb(1) }";
        assert_eq!(names(src).len(), 1);
    }

    #[test]
    fn justification_lookback_covers_trailing_and_preceding_comments() {
        let src = "// PANIC: bounded by caller.\nfn a() {}\n\n\nfn b() {} // PANIC: same line\n";
        let m = model(src);
        assert!(m.justified(2, "PANIC:", 3));
        assert!(m.justified(5, "PANIC:", 3));
        assert!(!m.justified(5, "FLOAT:", 3));
    }
}
