//! Model-checks the **production** worker pool (`omg_core::runtime`)
//! through the `omg_core::sync` facade. Only compiled under
//! `RUSTFLAGS="--cfg omg_model"`; the tier-1 build sees an empty file.
//!
//! Two halves, mirroring `sched_sanity`:
//!
//! * the real pool, exhaustively: every interleaving of the job
//!   handshake (publish → join → claim → drain → retract → shutdown)
//!   within the preemption bound must uphold the pool's invariants —
//!   no deref after retract, no lost wakeups, every index exactly
//!   once, panics drain and re-throw, shutdown strands no worker;
//! * the seeded mutations: for each invariant, a model-only switch
//!   re-introduces the bug the invariant guards against, and the
//!   checker must catch it. A checker that passes real code *and*
//!   fails every mutation is demonstrably checking something.
#![cfg(omg_model)]

use omg_core::runtime::ThreadPool;
use omg_verify::{model_with, Config};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

fn mutated(name: &'static str) -> Config {
    Config {
        mutation: Some(name),
        ..Config::default()
    }
}

/// Runs `f` under the checker expecting a failure; returns the failure
/// message the harness panicked with.
fn must_fail(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> String {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| model_with(cfg, f)));
    let payload = result.expect_err("model checking should have caught the seeded mutation");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        panic!("non-string model failure payload");
    }
}

// ---- the real pool, exhaustively ---------------------------------------

#[test]
fn inline_paths_have_no_concurrency() {
    // threads == 1, n < 2, and the 0-item call never publish a job:
    // one schedule each, nothing to interleave.
    let report = model_with(cfg(3), || {
        assert_eq!(
            ThreadPool::exact(1).map_indexed(4, |i| i * i),
            vec![0, 1, 4, 9]
        );
        let pool = ThreadPool::exact(1);
        assert_eq!(pool.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indexed(1, |i| i + 7), vec![7]);
        assert_eq!(pool.spawned_workers(), 0);
    });
    assert!(report.exhausted);
    assert_eq!(
        report.iterations, 1,
        "inline paths must not hit the scheduler"
    );
}

#[test]
fn construct_and_drop_strands_no_worker() {
    // The spawn → park → shutdown → join handshake alone, exhaustively:
    // no interleaving may deadlock the drop (a stranded parked worker
    // would show up as exactly that).
    let report = model_with(cfg(3), || {
        drop(ThreadPool::exact(2));
    });
    assert!(report.exhausted);
    assert!(report.iterations > 1, "spawn/shutdown interleave: {report}");
}

#[test]
fn one_worker_handshake_exhaustive() {
    // Submitter + one worker over two single-index chunks: the full
    // publish/join/claim/drain/retract/shutdown protocol.
    let report = model_with(cfg(3), || {
        let pool = ThreadPool::exact(2);
        assert_eq!(pool.map_indexed_coarse(2, |i| i * 10), vec![0, 10]);
    });
    assert!(report.exhausted);
    assert!(
        report.iterations > 10,
        "handshake must interleave: {report}"
    );
}

#[test]
fn two_workers_handshake_exhaustive() {
    // The 2-worker handshake of the issue: three threads race for two
    // chunks; one worker necessarily finds the cursor drained or the
    // generation already seen — both legs must stay sound.
    let report = model_with(cfg(2), || {
        let pool = ThreadPool::exact(3);
        assert_eq!(pool.map_indexed_coarse(2, |i| i + 100), vec![100, 101]);
    });
    assert!(report.exhausted);
    assert!(
        report.iterations > 100,
        "three threads, two chunks: {report}"
    );
}

#[test]
fn every_index_runs_exactly_once() {
    // Generation monotonicity / no double-run, observed directly: the
    // counters are plain `std` atomics, invisible to the scheduler, so
    // they add no interleavings — they just record what ran.
    let report = model_with(cfg(2), || {
        let runs: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPool::exact(2);
        pool.map_indexed_coarse(runs.len(), |i| runs[i].fetch_add(1, Ordering::SeqCst));
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::SeqCst),
                1,
                "index {i} must run exactly once"
            );
        }
    });
    assert!(report.exhausted);
}

#[test]
fn two_successive_jobs_reuse_workers() {
    // The generation bump must keep a worker from re-joining a job it
    // already ran — and from missing the next one.
    let report = model_with(cfg(2), || {
        let pool = ThreadPool::exact(2);
        assert_eq!(pool.map_indexed_coarse(2, |i| i), vec![0, 1]);
        assert_eq!(pool.map_indexed_coarse(2, |i| i + 1), vec![1, 2]);
        assert_eq!(pool.spawned_workers(), 1, "no respawn between jobs");
    });
    assert!(report.exhausted);
}

#[test]
fn panic_drains_rethrows_and_pool_survives() {
    // The panic path: the first panic aborts the job, drains every
    // worker out, and re-throws on the submitter — after which the
    // same pool must still run the next job.
    let report = model_with(cfg(2), || {
        let pool = ThreadPool::exact(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed_coarse(2, |i| {
                assert!(i != 1, "boom at 1");
                i
            })
        }));
        assert!(result.is_err(), "the job panic must reach the submitter");
        assert_eq!(pool.map_indexed_coarse(2, |i| i * 2), vec![0, 2]);
    });
    assert!(report.exhausted);
    assert!(
        report.iterations > 10,
        "panic path must interleave: {report}"
    );
}

#[test]
fn nested_submission_stays_inline_and_sound() {
    // A closure re-entering the pool must take the inline path, not
    // corrupt the handshake — under every interleaving.
    let report = model_with(cfg(2), || {
        let pool = ThreadPool::exact(2);
        let pool2 = pool.clone();
        let got = pool.map_indexed_coarse(2, move |i| {
            pool2.map_indexed_coarse(2, |j| i + j).iter().sum::<usize>()
        });
        assert_eq!(got, vec![1, 3]);
    });
    assert!(report.exhausted);
}

// ---- the seeded mutations: every invariant can actually fire -----------

#[test]
fn mutation_skip_drain_wait_is_caught() {
    // Retracting without draining is the use-after-free the handshake
    // exists to prevent; the registry must attribute it to a schedule.
    let msg = must_fail(mutated("skip-drain-wait"), || {
        let pool = ThreadPool::exact(2);
        let _ = pool.map_indexed_coarse(2, |i| i);
    });
    assert!(
        msg.contains("use-after-retract") || msg.contains("drain violation"),
        "got: {msg}"
    );
    assert!(
        msg.contains("schedule"),
        "failure must carry its schedule: {msg}"
    );
}

#[test]
fn mutation_skip_done_notify_is_caught() {
    // Losing the done-notify strands the submitter in the drain wait.
    let msg = must_fail(mutated("skip-done-notify"), || {
        let pool = ThreadPool::exact(2);
        let _ = pool.map_indexed_coarse(2, |i| i);
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}

#[test]
fn mutation_torn_cursor_claim_is_caught() {
    // A load+store claim races two threads onto the same chunk.
    let msg = must_fail(mutated("torn-cursor-claim"), || {
        let runs: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPool::exact(2);
        let got = pool.map_indexed_coarse(runs.len(), |i| {
            runs[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::SeqCst),
                1,
                "torn claim ran index {i} twice"
            );
        }
        assert_eq!(got, vec![0, 1], "torn claim corrupted the merge");
    });
    assert!(
        msg.contains("torn claim") || msg.contains("deadlock"),
        "got: {msg}"
    );
}

#[test]
fn mutation_rethrow_before_drain_is_caught() {
    // Re-throwing the job panic before the drain unwinds the frame
    // while workers may still hold pointers into it: the frame canary
    // must flag the dying frame.
    let msg = must_fail(mutated("rethrow-before-drain"), || {
        let pool = ThreadPool::exact(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed_coarse(2, |i| {
                assert!(i != 0, "boom at 0");
                i
            })
        }));
        let _ = result;
    });
    assert!(msg.contains("drain violation"), "got: {msg}");
}

#[test]
fn mutation_skip_shutdown_notify_is_caught() {
    // Dropping the pool without waking the parked workers deadlocks
    // the join.
    let msg = must_fail(mutated("skip-shutdown-notify"), || {
        drop(ThreadPool::exact(2));
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}
