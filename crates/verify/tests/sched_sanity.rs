//! Sanity suite for the model checker itself (no `--cfg omg_model`
//! needed: this exercises the scheduler and model primitives directly,
//! not the pool). Two halves:
//!
//! * correct protocols must pass *exhaustively* (every interleaving
//!   within the preemption bound explored, none failing), and
//! * classic broken protocols — a torn read-modify-write, an ABBA
//!   deadlock, a wait with no notify — must be *caught*, proving the
//!   checker can see the failure classes the pool suite relies on.

use omg_verify::sync::{AtomicUsize, Condvar, Mutex};
use omg_verify::{model, model_with, thread, Config};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Runs `f` under the checker expecting a failure; returns the failure
/// message the harness panicked with.
fn must_fail(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> String {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| model_with(cfg, f)));
    let payload = result.expect_err("model checking should have caught a failure");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        panic!("non-string model failure payload");
    }
}

#[test]
fn single_thread_is_one_schedule() {
    let report = model(|| {
        let m = Mutex::new(5);
        *m.lock().expect("never poisoned") += 1;
        assert_eq!(m.into_inner().expect("never poisoned"), 6);
    });
    assert!(report.exhausted);
    assert_eq!(report.iterations, 1, "no concurrency, no alternatives");
}

#[test]
fn atomic_rmw_counter_is_correct_under_all_interleavings() {
    let report = model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().expect("worker finished");
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.exhausted);
    assert!(
        report.iterations > 1,
        "the two fetch_adds interleave: {report}"
    );
}

#[test]
fn mutex_guarded_increments_are_correct_under_all_interleavings() {
    let report = model(|| {
        let m = Arc::new(Mutex::new(0usize));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let mut g = m2.lock().expect("never poisoned");
            let v = *g;
            *g = v + 1;
        });
        {
            let mut g = m.lock().expect("never poisoned");
            let v = *g;
            *g = v + 1;
        }
        t.join().expect("worker finished");
        assert_eq!(*m.lock().expect("never poisoned"), 2);
    });
    assert!(report.exhausted);
    assert!(report.iterations > 1);
}

#[test]
fn torn_load_store_increment_is_caught() {
    // The classic lost update: load + store instead of fetch_add. Some
    // interleaving within two preemptions loses one increment, and the
    // final assert must flag it.
    let msg = must_fail(Config::default(), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().expect("worker finished");
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(msg.contains("model checking failed"), "got: {msg}");
    assert!(msg.contains("lost update"), "got: {msg}");
}

#[test]
fn abba_deadlock_is_caught_with_schedule() {
    let msg = must_fail(Config::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let ga = a.lock().expect("never poisoned");
        let t = thread::spawn(move || {
            let _gb = b2.lock().expect("never poisoned");
            let _ga = a2.lock().expect("never poisoned");
        });
        let _gb = b.lock().expect("never poisoned");
        drop(ga);
        t.join().expect("worker finished");
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
    assert!(
        msg.contains("schedule"),
        "failure must carry its schedule: {msg}"
    );
}

#[test]
fn wait_without_notify_is_caught_as_deadlock() {
    let msg = must_fail(Config::default(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock().expect("never poisoned");
            while !*g {
                g = cv.wait(g).expect("never poisoned");
            }
        });
        // Nobody ever sets the flag or notifies: the waiter is stuck
        // and so is this join.
        t.join().expect("worker finished");
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}

#[test]
fn condvar_handshake_passes_exhaustively() {
    let report = model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock().expect("never poisoned");
            while !*g {
                g = cv.wait(g).expect("never poisoned");
            }
        });
        {
            let (m, cv) = &*state;
            *m.lock().expect("never poisoned") = true;
            cv.notify_all();
        }
        t.join().expect("worker finished");
    });
    assert!(report.exhausted);
    assert!(
        report.iterations > 2,
        "notify-before-wait and wait-before-notify both explored: {report}"
    );
}

#[test]
fn preemption_bound_zero_still_runs_blocking_switches() {
    // With zero preemptions allowed, only blocking switches happen;
    // the handshake still completes (no spurious "deadlock").
    let report = model_with(
        Config {
            preemption_bound: 0,
            ..Config::default()
        },
        || {
            let m = Arc::new(Mutex::new(0usize));
            let m2 = Arc::clone(&m);
            let t = thread::spawn(move || {
                *m2.lock().expect("never poisoned") += 1;
            });
            *m.lock().expect("never poisoned") += 1;
            t.join().expect("worker finished");
            assert_eq!(*m.lock().expect("never poisoned"), 2);
        },
    );
    assert!(report.exhausted);
    assert_eq!(
        report.iterations, 1,
        "zero preemptions leaves only the default schedule"
    );
}
