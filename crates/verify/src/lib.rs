//! `omg-verify` — a dependency-free, loom-style **interleaving model
//! checker** for the one concurrent protocol in the engine: the
//! worker-pool job cell in `omg_core::runtime`.
//!
//! The paper's thesis is that assertions catch the systematic failures
//! that spot-checking misses; this crate applies the same standard to
//! the monitor's own runtime. The pool publishes borrowed stack frames
//! to worker threads through a lifetime-erased `unsafe` job cell, and
//! its soundness argument ("no worker can observe the job after the
//! frame is gone") used to live in a doc comment. Here it becomes a
//! checked artifact: the *production* pool code — compiled with
//! `--cfg omg_model` so its primitives route through the model types in
//! [`sync`] and [`thread`] (see `omg_core::sync`) — is executed under a
//! DFS scheduler that explores **every** interleaving of its visible
//! operations within a preemption bound, and replays the exact failing
//! schedule when an invariant breaks.
//!
//! # How it works
//!
//! * [`model`] / [`model_with`] run a closure once per schedule. Model
//!   threads are real OS threads, but a token-passing scheduler lets
//!   exactly **one** run at a time; every visible operation (atomic
//!   access, mutex acquire/release, condvar wait/notify, spawn, join)
//!   is a *choice point* where the scheduler may switch threads.
//! * The scheduler explores choice points depth-first with **bounded
//!   preemptions** (switching away from a thread that could have
//!   continued costs one preemption; switches at blocking points are
//!   free). Small bounds explore the practically relevant interleavings
//!   exhaustively — empirically almost all concurrency bugs manifest
//!   within two preemptions — while keeping runs to seconds.
//! * On a failure (invariant assertion, deadlock, livelock, job-cell
//!   use-after-retract, or an uncaught panic on a model thread) the
//!   checker reports the executed schedule — the exact sequence of
//!   `thread × operation` steps — so the interleaving can be replayed
//!   by reading it.
//! * [`cell`] is the job-cell **liveness registry**: the pool's
//!   publish/retract sites and the workers' dereference sites (no-ops
//!   in production builds) report here under the model, turning a
//!   use-after-retract — the memory-unsafety the handshake exists to
//!   prevent — into a deterministic, schedule-attributed failure.
//! * [`Config::mutation`] drives the **seeded-mutation** methodology:
//!   the pool carries model-only switches that each disable one leg of
//!   the handshake (delete the drain wait, drop a notify, tear the
//!   cursor claim, …). The model suite proves the checker *catches
//!   every one* — evidence the invariants are live, not vacuous.
//!
//! # Scope
//!
//! The checker explores sequentially consistent interleavings (like
//! CHESS; unlike loom it does not model C11 weak memory). The pool's
//! `Relaxed` orderings are therefore audited by hand against the model's
//! findings — see the audited-orderings list consumed by `omg-lint` —
//! with the mutex/condvar handshake, not the relaxed atomics, carrying
//! every cross-thread data transfer.
//!
//! # Example
//!
//! ```
//! use omg_verify::{model, sync::AtomicUsize};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let c2 = Arc::clone(&counter);
//!     let handle = omg_verify::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     handle.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.exhausted, "every interleaving explored");
//! assert!(report.iterations >= 2, "the fetch_adds do interleave");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod mutations;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{model, model_with, Config, Report};
