//! The DFS interleaving scheduler behind [`model`].
//!
//! Model threads are real OS threads, but only one ever runs at a time:
//! every visible operation calls back into [`Exec::schedule`], which
//! decides — by replaying a forced prefix, then by a deterministic
//! default policy — which thread holds the token next. Each decision is
//! a recorded **choice point**; after an execution completes, the
//! harness backtracks to the deepest choice point with an untried
//! alternative (within the preemption bound) and re-runs the closure
//! with that prefix forced. The search is therefore an exhaustive DFS
//! over schedules, exactly in the style of CHESS/loom, with failures
//! reported alongside the schedule that produced them.
//!
//! Failure handling is deliberately boring: the first failure on any
//! thread is recorded once, the harness is notified over a channel, and
//! every model thread that subsequently reaches the scheduler parks
//! forever. The failing execution's threads are *leaked* rather than
//! torn down — teardown would mean unwinding production code at
//! arbitrary points (and panicking inside `Drop` aborts); a handful of
//! parked threads on an already-failing test is the cheaper bill.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Exploration parameters for [`model_with`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of *preemptions* per schedule: switching away
    /// from a thread that could have continued costs one; switches at
    /// blocking points (lock unavailable, condvar wait, join) are free.
    /// Exploration is exhaustive within this bound.
    pub preemption_bound: usize,
    /// Per-execution step budget; exceeding it is reported as a
    /// livelock (with the schedule that spins).
    pub max_steps: usize,
    /// Safety valve on the number of explored schedules. If the search
    /// is cut off here, [`Report::exhausted`] is `false`.
    pub max_iterations: u64,
    /// Name of the seeded mutation to enable in the code under test
    /// (see `omg_verify::mutations`); `None` checks the real code.
    pub mutation: Option<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_steps: 20_000,
            max_iterations: 2_000_000,
            mutation: None,
        }
    }
}

/// What a completed [`model_with`] run explored.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: u64,
    /// `true` when the search space within the preemption bound was
    /// fully explored; `false` when `max_iterations` cut it off.
    pub exhausted: bool,
    /// Deepest schedule (in choice points) seen.
    pub max_depth: usize,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} schedules ({}, max depth {})",
            self.iterations,
            if self.exhausted {
                "exhausted"
            } else {
                "cut off"
            },
            self.max_depth
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

#[derive(Clone, Copy)]
struct Step {
    thread: usize,
    op: &'static str,
}

/// One recorded scheduling decision.
struct ChoiceRec {
    enabled: Vec<usize>,
    chosen: usize,
    prev: usize,
    prev_enabled: bool,
    preempts_before: usize,
}

enum Outcome {
    Completed,
    Failed(String),
}

struct State {
    status: Vec<Status>,
    running: usize,
    finished: usize,
    steps: Vec<Step>,
    choices: Vec<ChoiceRec>,
    forced: Vec<usize>,
    preemptions: usize,
    failure: Option<String>,
    reported: bool,
    mutex_held: HashSet<usize>,
    mutex_waiters: HashMap<usize, Vec<usize>>,
    cv_waiters: HashMap<usize, Vec<usize>>,
    join_waiters: HashMap<usize, Vec<usize>>,
    jobs_live: HashSet<usize>,
    jobs_retracted: HashSet<usize>,
    /// Per-cell count of worker threads currently *inside* the job
    /// (between `job_enter` and `job_exit`).
    jobs_inside: HashMap<usize, usize>,
    real_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One execution of the closure under one (partially forced) schedule.
pub(crate) struct Exec {
    pub(crate) cfg: Config,
    m: StdMutex<State>,
    cv: StdCondvar,
    tx: mpsc::Sender<Outcome>,
}

thread_local! {
    static EXEC_TLS: RefCell<Option<Arc<Exec>>> = const { RefCell::new(None) };
    static TID: Cell<usize> = const { Cell::new(usize::MAX) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the calling model thread's execution, or panics with a
/// pointed message when called outside a [`model`] run.
pub(crate) fn with_exec<R>(f: impl FnOnce(&Arc<Exec>) -> R) -> R {
    EXEC_TLS.with(|e| {
        let borrow = e.borrow();
        let exec = borrow.as_ref().unwrap_or_else(|| {
            panic!(
                "omg-verify model primitive used outside a model() run \
                 (build without --cfg omg_model, or wrap the test body in \
                 omg_verify::model)"
            )
        });
        f(exec)
    })
}

/// True when the calling thread is inside a model execution. Used by
/// tolerant hooks (`mutations::enabled`) that must be no-ops outside.
pub(crate) fn in_model() -> bool {
    EXEC_TLS.with(|e| e.borrow().is_some())
}

fn cur_tid() -> usize {
    TID.with(Cell::get)
}

impl Exec {
    fn new(cfg: Config, forced: Vec<usize>, tx: mpsc::Sender<Outcome>) -> Self {
        Self {
            cfg,
            m: StdMutex::new(State {
                status: vec![Status::Runnable],
                running: 0,
                finished: 0,
                steps: Vec::new(),
                choices: Vec::new(),
                forced,
                preemptions: 0,
                failure: None,
                reported: false,
                mutex_held: HashSet::new(),
                mutex_waiters: HashMap::new(),
                cv_waiters: HashMap::new(),
                join_waiters: HashMap::new(),
                jobs_live: HashSet::new(),
                jobs_retracted: HashSet::new(),
                jobs_inside: HashMap::new(),
                real_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            tx,
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, State> {
        self.m
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Parks the calling thread for the rest of the (failed) execution.
    fn park_forever(&self, mut st: StdMutexGuard<'_, State>) -> ! {
        loop {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Records the failure (first one wins), notifies the harness, and
    /// wakes every parked thread so it can park on the failure flag.
    fn report_failure(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            let full = format!("{msg}\n{}", render_trace(st));
            st.failure = Some(msg);
            if !st.reported {
                st.reported = true;
                let _ = self.tx.send(Outcome::Failed(full));
            }
        }
        self.cv.notify_all();
    }

    fn fail(&self, mut st: StdMutexGuard<'_, State>, msg: String) -> ! {
        self.report_failure(&mut st, msg);
        self.park_forever(st)
    }

    fn wait_for_turn(&self, mut st: StdMutexGuard<'_, State>, me: usize) {
        while st.running != me {
            if st.failure.is_some() {
                self.park_forever(st);
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The choice point: record the step, pick the next thread to run
    /// (forced prefix first, then the non-preemptive default), hand the
    /// token over, and — unless the caller is finished — wait for it to
    /// come back.
    fn schedule_inner(&self, op: &'static str, wait_for_token: bool) {
        let me = cur_tid();
        let mut st = self.lock_state();
        if st.failure.is_some() {
            if wait_for_token {
                self.park_forever(st);
            }
            return;
        }
        st.steps.push(Step { thread: me, op });
        if st.steps.len() > self.cfg.max_steps {
            let msg = format!(
                "livelock: still running after {} steps (op {op} on t{me})",
                self.cfg.max_steps
            );
            self.fail(st, msg);
        }
        debug_assert_eq!(st.running, me, "only the token holder schedules");
        let enabled: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            let msg = format!("deadlock: no runnable thread ({})", render_blocked(&st));
            self.fail(st, msg);
        }
        let prev_enabled = st.status[me] == Status::Runnable;
        let k = st.choices.len();
        let chosen = if k < st.forced.len() {
            let c = st.forced[k];
            if !enabled.contains(&c) {
                let msg = format!(
                    "schedule divergence: replay step {k} wants t{c} but enabled set is {enabled:?} \
                     (the code under test is nondeterministic beyond scheduling)"
                );
                self.fail(st, msg);
            }
            c
        } else if prev_enabled {
            me
        } else {
            enabled[0]
        };
        let preempts_before = st.preemptions;
        if prev_enabled && chosen != me {
            st.preemptions += 1;
        }
        st.choices.push(ChoiceRec {
            enabled,
            chosen,
            prev: me,
            prev_enabled,
            preempts_before,
        });
        if chosen != me {
            st.running = chosen;
            self.cv.notify_all();
            if wait_for_token {
                self.wait_for_turn(st, me);
            }
        }
    }

    /// A plain visible operation by a still-runnable thread.
    pub(crate) fn schedule(&self, op: &'static str) {
        self.schedule_inner(op, true);
    }

    // ---- model mutexes -------------------------------------------------

    pub(crate) fn mutex_acquire(&self, addr: usize) {
        self.schedule("mutex.lock");
        loop {
            let mut st = self.lock_state();
            if st.failure.is_some() {
                self.park_forever(st);
            }
            if st.mutex_held.insert(addr) {
                return;
            }
            let me = cur_tid();
            st.mutex_waiters.entry(addr).or_default().push(me);
            st.status[me] = Status::Blocked;
            drop(st);
            self.schedule_inner("mutex.lock.blocked", true);
        }
    }

    pub(crate) fn mutex_release(&self, addr: usize) {
        {
            let mut st = self.lock_state();
            st.mutex_held.remove(&addr);
            if let Some(waiters) = st.mutex_waiters.remove(&addr) {
                for w in waiters {
                    st.status[w] = Status::Runnable;
                }
            }
        }
        self.schedule_inner("mutex.unlock", true);
    }

    // ---- model condvars ------------------------------------------------

    /// Atomically releases `mutex_addr` and blocks on `cv_addr`. The
    /// caller re-locks the model mutex itself afterwards (modeling the
    /// post-notify reacquire race exactly).
    pub(crate) fn condvar_wait(&self, cv_addr: usize, mutex_addr: usize) {
        {
            let mut st = self.lock_state();
            st.mutex_held.remove(&mutex_addr);
            if let Some(waiters) = st.mutex_waiters.remove(&mutex_addr) {
                for w in waiters {
                    st.status[w] = Status::Runnable;
                }
            }
            let me = cur_tid();
            st.cv_waiters.entry(cv_addr).or_default().push(me);
            st.status[me] = Status::Blocked;
        }
        self.schedule_inner("condvar.wait", true);
    }

    pub(crate) fn condvar_notify(&self, cv_addr: usize, all: bool) {
        self.schedule(if all {
            "condvar.notify_all"
        } else {
            "condvar.notify_one"
        });
        let mut st = self.lock_state();
        if all {
            if let Some(waiters) = st.cv_waiters.remove(&cv_addr) {
                for w in waiters {
                    st.status[w] = Status::Runnable;
                }
            }
        } else if let Some(waiters) = st.cv_waiters.get_mut(&cv_addr) {
            // Deterministic stand-in for "some waiter": the lowest id.
            if let Some(pos) = waiters
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| **w)
                .map(|(p, _)| p)
            {
                let w = waiters.swap_remove(pos);
                st.status[w] = Status::Runnable;
            }
        }
    }

    // ---- model threads -------------------------------------------------

    pub(crate) fn spawn_model<F>(self: &Arc<Self>, f: F) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        self.schedule("thread.spawn");
        let tid = {
            let mut st = self.lock_state();
            st.status.push(Status::Runnable);
            st.status.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("omg-model-{tid}"))
            .spawn(move || {
                IN_MODEL.with(|c| c.set(true));
                TID.with(|c| c.set(tid));
                EXEC_TLS.with(|e| *e.borrow_mut() = Some(Arc::clone(&exec)));
                {
                    let st = exec.lock_state();
                    exec.wait_for_turn(st, tid);
                }
                match std::panic::catch_unwind(AssertUnwindSafe(f)) {
                    Ok(()) => exec.finish_thread(),
                    // `as_ref()`: pass the payload itself, not the Box
                    // coerced into a fresh `dyn Any` (which would defeat
                    // the String downcast in the failure report).
                    Err(payload) => exec.thread_panicked(payload.as_ref()),
                }
            })
            .expect("spawn model thread");
        self.lock_state().real_handles.push(handle);
        tid
    }

    pub(crate) fn join_model(&self, target: usize) {
        self.schedule("thread.join");
        loop {
            let mut st = self.lock_state();
            if st.failure.is_some() {
                self.park_forever(st);
            }
            if st.status[target] == Status::Finished {
                return;
            }
            let me = cur_tid();
            st.join_waiters.entry(target).or_default().push(me);
            st.status[me] = Status::Blocked;
            drop(st);
            self.schedule_inner("thread.join.blocked", true);
        }
    }

    /// Normal completion of a model thread: mark finished, wake
    /// joiners, and either report completion (last thread out) or hand
    /// the token to a survivor.
    fn finish_thread(&self) {
        let me = cur_tid();
        {
            let mut st = self.lock_state();
            if st.failure.is_some() {
                return;
            }
            st.status[me] = Status::Finished;
            st.finished += 1;
            if let Some(joiners) = st.join_waiters.remove(&me) {
                for j in joiners {
                    st.status[j] = Status::Runnable;
                }
            }
            if st.finished == st.status.len() {
                if !st.reported {
                    st.reported = true;
                    let _ = self.tx.send(Outcome::Completed);
                }
                self.cv.notify_all();
                return;
            }
        }
        self.schedule_inner("thread.exit", false);
    }

    /// A panic that escaped a model thread's closure. Production pool
    /// code never lets one escape (worker panics are caught per chunk,
    /// and the pool suite's own test bodies catch what the submitter
    /// re-throws), so this is always a model failure.
    fn thread_panicked(&self, payload: &(dyn Any + Send)) {
        let me = cur_tid();
        let mut st = self.lock_state();
        if st.failure.is_some() {
            return;
        }
        let msg = payload_str(payload);
        self.report_failure(&mut st, format!("model thread t{me} panicked: {msg}"));
    }

    // ---- job-cell liveness registry ------------------------------------

    pub(crate) fn job_publish(&self, ptr: usize) {
        self.schedule("job.publish");
        let mut st = self.lock_state();
        st.jobs_retracted.remove(&ptr);
        st.jobs_live.insert(ptr);
    }

    pub(crate) fn job_retract(&self, ptr: usize) {
        self.schedule("job.retract");
        let mut st = self.lock_state();
        st.jobs_live.remove(&ptr);
        st.jobs_retracted.insert(ptr);
    }

    pub(crate) fn job_assert_live(&self, ptr: usize, what: &'static str) {
        self.schedule("job.deref");
        let st = self.lock_state();
        if st.jobs_retracted.contains(&ptr) {
            let msg = format!(
                "use-after-retract: {what} touched job cell {ptr:#x} after the submitter \
                 retracted it — the frame it points into may already be gone"
            );
            self.fail(st, msg);
        }
    }

    /// A worker entering the job (the production `run_task` entry):
    /// checks liveness, then counts the worker as inside the cell.
    pub(crate) fn job_enter(&self, ptr: usize, what: &'static str) {
        self.schedule("job.enter");
        let mut st = self.lock_state();
        if st.jobs_retracted.contains(&ptr) {
            let msg = format!(
                "use-after-retract: {what} entered job cell {ptr:#x} after the submitter \
                 retracted it — the frame it points into may already be gone"
            );
            self.fail(st, msg);
        }
        *st.jobs_inside.entry(ptr).or_insert(0) += 1;
    }

    /// The matching exit: the worker no longer holds a reference into
    /// the submitter's frame.
    pub(crate) fn job_exit(&self, ptr: usize) {
        self.schedule("job.exit");
        let mut st = self.lock_state();
        if let Some(count) = st.jobs_inside.get_mut(&ptr) {
            *count = count.saturating_sub(1);
        }
    }

    /// Called as the submitter's job frame dies (return *or* unwind;
    /// not a scheduling point — the frame is dying right now). If the
    /// job is still published, or a worker is still inside it, this is
    /// the drain-handshake violation that would be a stack
    /// use-after-free in production: report it and park the submitter
    /// *inside* the dying frame, which keeps the stack memory alive so
    /// the checker itself never touches freed memory.
    pub(crate) fn job_frame_check(&self, ptr: usize) {
        let st = self.lock_state();
        if st.failure.is_some() {
            self.park_forever(st);
        }
        let inside = st.jobs_inside.get(&ptr).copied().unwrap_or(0);
        if st.jobs_live.contains(&ptr) || inside > 0 {
            let msg = format!(
                "drain violation: the submitting frame for job cell {ptr:#x} died while \
                 {} — in production this frame's stack memory is gone while workers still \
                 point into it",
                if inside > 0 {
                    format!("{inside} worker(s) were still inside the job")
                } else {
                    "the job was still published".to_string()
                }
            );
            self.fail(st, msg);
        }
    }
}

fn payload_str(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn render_blocked(st: &State) -> String {
    let mut parts = Vec::new();
    for (addr, ws) in &st.mutex_waiters {
        parts.push(format!("{ws:?} on mutex {addr:#x}"));
    }
    for (addr, ws) in &st.cv_waiters {
        parts.push(format!("{ws:?} on condvar {addr:#x}"));
    }
    for (t, ws) in &st.join_waiters {
        parts.push(format!("{ws:?} joining t{t}"));
    }
    parts.sort();
    if parts.is_empty() {
        "no waiters registered".to_string()
    } else {
        parts.join("; ")
    }
}

/// The executed schedule, for replay-by-reading: every step as
/// `t<thread> <op>`, preemption count, and the chosen-thread digest.
fn render_trace(st: &State) -> String {
    const TAIL: usize = 120;
    let skipped = st.steps.len().saturating_sub(TAIL);
    let mut out = String::new();
    out.push_str(&format!(
        "schedule ({} steps, {} preemptions{}):\n",
        st.steps.len(),
        st.preemptions,
        if skipped > 0 {
            format!(", first {skipped} elided")
        } else {
            String::new()
        }
    ));
    for (i, s) in st.steps.iter().enumerate().skip(skipped) {
        out.push_str(&format!("  #{i:<4} t{} {}\n", s.thread, s.op));
    }
    out.push_str(&format!(
        "choices: {:?}",
        st.choices.iter().map(|c| c.chosen).collect::<Vec<_>>()
    ));
    out
}

// ---- DFS harness -------------------------------------------------------

struct Node {
    order: Vec<usize>,
    next: usize,
    chosen: usize,
    prev: usize,
    prev_enabled: bool,
    preempts_before: usize,
}

impl Node {
    fn from_rec(rec: &ChoiceRec) -> Self {
        let mut order = Vec::with_capacity(rec.enabled.len());
        if rec.prev_enabled {
            order.push(rec.prev);
        }
        for &t in &rec.enabled {
            if !(rec.prev_enabled && t == rec.prev) {
                order.push(t);
            }
        }
        let pos = order
            .iter()
            .position(|&t| t == rec.chosen)
            .expect("chosen thread was enabled");
        Self {
            order,
            next: pos + 1,
            chosen: rec.chosen,
            prev: rec.prev,
            prev_enabled: rec.prev_enabled,
            preempts_before: rec.preempts_before,
        }
    }
}

/// Advances the DFS frontier: finds the deepest choice point with an
/// untried alternative inside the preemption bound, returns the forced
/// prefix for the next execution, or `None` when the space is spent.
fn next_forced(tree: &mut Vec<Node>, bound: usize) -> Option<Vec<usize>> {
    loop {
        let k = tree.len().checked_sub(1)?;
        let node = &mut tree[k];
        let mut picked = None;
        while node.next < node.order.len() {
            let alt = node.order[node.next];
            node.next += 1;
            let cost = usize::from(node.prev_enabled && alt != node.prev);
            if node.preempts_before + cost <= bound {
                picked = Some(alt);
                break;
            }
        }
        match picked {
            Some(alt) => {
                node.chosen = alt;
                return Some(tree.iter().map(|n| n.chosen).collect());
            }
            None => {
                tree.pop();
            }
        }
    }
}

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Explores every interleaving of `f`'s model threads within
/// [`Config::preemption_bound`], panicking — with the failing schedule —
/// on the first invariant violation, deadlock, livelock, job-cell
/// use-after-retract, or escaped model-thread panic.
pub fn model_with<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_panic_hook();
    let f = Arc::new(f);
    let mut tree: Vec<Node> = Vec::new();
    let mut forced: Vec<usize> = Vec::new();
    let mut iterations = 0u64;
    let mut max_depth = 0usize;
    loop {
        iterations += 1;
        let (tx, rx) = mpsc::channel();
        let exec = Arc::new(Exec::new(cfg.clone(), std::mem::take(&mut forced), tx));
        let main_exec = Arc::clone(&exec);
        let body = Arc::clone(&f);
        let main = std::thread::Builder::new()
            .name("omg-model-0".to_string())
            .spawn(move || {
                IN_MODEL.with(|c| c.set(true));
                TID.with(|c| c.set(0));
                EXEC_TLS.with(|e| *e.borrow_mut() = Some(Arc::clone(&main_exec)));
                match std::panic::catch_unwind(AssertUnwindSafe(|| body())) {
                    Ok(()) => main_exec.finish_thread(),
                    Err(payload) => main_exec.thread_panicked(payload.as_ref()),
                }
            })
            .expect("spawn model main thread");
        match rx.recv() {
            Ok(Outcome::Failed(msg)) => {
                // The failed execution's threads stay parked; report.
                panic!(
                    "omg-verify: model checking failed on schedule {iterations} \
                     (preemption bound {}): {msg}",
                    cfg.preemption_bound
                );
            }
            Ok(Outcome::Completed) | Err(_) => {
                let _ = main.join();
                let choices = {
                    let mut st = exec.lock_state();
                    for h in st.real_handles.drain(..) {
                        let _ = h.join();
                    }
                    std::mem::take(&mut st.choices)
                };
                max_depth = max_depth.max(choices.len());
                for (k, rec) in choices.iter().enumerate() {
                    if k >= tree.len() {
                        tree.push(Node::from_rec(rec));
                    } else {
                        debug_assert_eq!(
                            tree[k].chosen, rec.chosen,
                            "replayed prefix diverged at choice {k}"
                        );
                    }
                }
                tree.truncate(choices.len());
                match next_forced(&mut tree, cfg.preemption_bound) {
                    Some(next) => forced = next,
                    None => {
                        return Report {
                            iterations,
                            exhausted: true,
                            max_depth,
                        }
                    }
                }
                if iterations >= cfg.max_iterations {
                    return Report {
                        iterations,
                        exhausted: false,
                        max_depth,
                    };
                }
            }
        }
    }
}

/// [`model_with`] under the default [`Config`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}
