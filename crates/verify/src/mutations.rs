//! Seeded-mutation switch: proves the checker's invariants are live.
//!
//! A model checker that always passes is indistinguishable from one
//! that checks nothing. The pool therefore carries model-only mutation
//! points (see `omg_core::runtime`), each of which disables one leg of
//! the handshake when its name matches [`crate::Config::mutation`] —
//! delete the drain wait, drop the done-notify, tear the cursor claim,
//! re-throw a panic before the drain, skip the shutdown notify. The
//! model suite runs
//! every invariant once against the real code (must pass exhaustively)
//! and once per mutation (the checker must report a failure), so a
//! regression that silently weakens the checker breaks the suite.

use crate::sched::{in_model, with_exec};

/// True when the named mutation is enabled for the current model
/// execution. Outside a model run (and always in production builds,
/// where the call sites compile to a constant `false`) this returns
/// `false`.
pub fn enabled(name: &str) -> bool {
    if !in_model() {
        return false;
    }
    with_exec(|e| e.cfg.mutation == Some(name))
}
