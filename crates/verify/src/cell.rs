//! The job-cell **liveness registry**: turns the pool's
//! use-after-retract hazard into a deterministic model failure.
//!
//! The production pool publishes a type-erased pointer to a
//! stack-resident `Task` and retracts it before the frame dies; the
//! soundness claim is that no worker touches the pointer after the
//! retract. Under the model, the pool's publish/retract sites and the
//! workers' dereference sites (all no-ops in production builds — see
//! `omg_core::sync::job_cell`) report here: a dereference of a
//! retracted cell fails the execution with the exact schedule, instead
//! of being actual undefined behaviour that may or may not crash.

use crate::sched::with_exec;

/// Registers `ptr` as a live published job cell. Re-publishing an
/// address (a later job reusing the same stack slot) revives it.
pub fn publish(ptr: *const ()) {
    with_exec(|e| e.job_publish(ptr as usize));
}

/// Marks `ptr` retracted: any subsequent [`assert_live`] on it fails
/// the execution.
pub fn retract(ptr: *const ()) {
    with_exec(|e| e.job_retract(ptr as usize));
}

/// Checks that `ptr` has not been retracted; `what` names the
/// dereference site in the failure report.
pub fn assert_live(ptr: *const (), what: &'static str) {
    with_exec(|e| e.job_assert_live(ptr as usize, what));
}

/// A worker entering the job behind `ptr` (checks liveness first).
/// Pairs with [`exit`]; the counts feed the [`frame_guard`] check.
pub fn enter(ptr: *const (), what: &'static str) {
    with_exec(|e| e.job_enter(ptr as usize, what));
}

/// The matching exit for [`enter`].
pub fn exit(ptr: *const ()) {
    with_exec(|e| e.job_exit(ptr as usize));
}

/// Canary armed by the submitter for the lifetime of the frame that
/// owns the job cell: dropping it (return or unwind) fails the
/// execution if the job is still published or a worker is still inside
/// it — and *parks the submitter inside the dying frame*, so the stack
/// memory workers point into stays alive even on the failing schedule.
#[derive(Debug)]
pub struct FrameGuard {
    ptr: usize,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        with_exec(|e| e.job_frame_check(self.ptr));
    }
}

/// Arms a [`FrameGuard`] for the job cell at `ptr`.
pub fn frame_guard(ptr: *const ()) -> FrameGuard {
    FrameGuard { ptr: ptr as usize }
}
