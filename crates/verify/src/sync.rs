//! Model `Mutex`/`Condvar`/atomics: API-compatible stand-ins for the
//! `std::sync` types the worker pool uses, with every operation routed
//! through the DFS scheduler as a visible step.
//!
//! The types wrap their `std` counterparts — the real lock is only ever
//! taken by the one model thread holding the scheduler token, so it is
//! never contended and the wrapper needs no `unsafe`. Lock *contention*
//! is modeled in the scheduler's bookkeeping (`mutex_held` / waiter
//! sets), not in the OS.
//!
//! Poisoning is not modeled: a model thread that panics is itself a
//! reported failure (or an expected, locally-caught panic on the
//! production pool's chunk path), so `lock()` always returns `Ok` and
//! the production code's `.expect("poisoned")` calls never fire under
//! the model. Memory ordering arguments are accepted and ignored — the
//! checker explores sequentially consistent interleavings (see the
//! crate docs for why the pool's `Relaxed` survivors are audited by
//! hand instead).

use crate::sched::with_exec;
use std::sync::atomic::Ordering;

/// Error half of [`LockResult`]; never constructed (see module docs).
#[derive(Debug)]
pub struct NeverPoisoned;

/// What model [`Mutex::lock`] and [`Condvar::wait`] return: always
/// `Ok`, but `Result`-shaped so production `.expect(...)` calls compile
/// unchanged.
pub type LockResult<T> = Result<T, NeverPoisoned>;

fn addr_of<T: ?Sized>(x: &T) -> usize {
    std::ptr::from_ref(x) as *const () as usize
}

/// Model mutex: scheduler-visible acquire/release around an
/// uncontended `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a model mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking the model thread (a free scheduler
    /// switch, not a preemption) while another model thread holds it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        with_exec(|e| e.mutex_acquire(addr_of(self)));
        let real = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard {
            real: Some(real),
            lock: self,
        })
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self
            .inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

/// Guard for a locked model [`Mutex`]; releasing it is a visible
/// scheduler step.
pub struct MutexGuard<'a, T> {
    real: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(real) = self.real.take() {
            drop(real);
            with_exec(|e| e.mutex_release(addr_of(self.lock)));
        }
    }
}

/// Model condition variable.
///
/// `wait` atomically (w.r.t. the model) releases the mutex and parks;
/// a parked thread only becomes runnable again via `notify_*`, so a
/// lost wakeup shows up as a deadlock with the schedule that produced
/// it. The post-notify mutex reacquire is modeled as an ordinary
/// contended lock.
#[derive(Debug, Default)]
pub struct Condvar {
    // Identity anchor: condvar state lives in the scheduler, keyed by
    // this object's address, so the type must not be zero-sized.
    _anchor: u8,
}

impl Condvar {
    /// Creates a model condvar.
    pub fn new() -> Self {
        Self { _anchor: 0 }
    }

    /// Releases `guard`'s mutex and parks until notified, then
    /// reacquires the mutex and returns a fresh guard.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        // Drop the real lock by hand so the guard's Drop does not also
        // report a model-level release: the release below is part of
        // the atomic release-and-park.
        drop(guard.real.take());
        drop(guard);
        with_exec(|e| e.condvar_wait(addr_of(self), addr_of(lock)));
        lock.lock()
    }

    /// Wakes one parked waiter (the lowest thread id, as a
    /// deterministic stand-in for "some waiter").
    pub fn notify_one(&self) {
        with_exec(|e| e.condvar_notify(addr_of(self), false));
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        with_exec(|e| e.condvar_notify(addr_of(self), true));
    }
}

/// Model `AtomicUsize`: every access is a visible scheduler step; the
/// ordering argument is accepted and ignored (SC exploration).
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// Creates a model atomic with `value`.
    pub fn new(value: usize) -> Self {
        Self {
            inner: std::sync::atomic::AtomicUsize::new(value),
        }
    }

    /// Atomic load (visible step).
    pub fn load(&self, order: Ordering) -> usize {
        with_exec(|e| e.schedule("atomic.load"));
        self.inner.load(order)
    }

    /// Atomic store (visible step).
    pub fn store(&self, value: usize, order: Ordering) {
        with_exec(|e| e.schedule("atomic.store"));
        self.inner.store(value, order);
    }

    /// Atomic add, returning the previous value (visible step).
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        with_exec(|e| e.schedule("atomic.fetch_add"));
        self.inner.fetch_add(value, order)
    }

    /// Atomic subtract, returning the previous value (visible step).
    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        with_exec(|e| e.schedule("atomic.fetch_sub"));
        self.inner.fetch_sub(value, order)
    }
}

/// Model `AtomicBool`: every access is a visible scheduler step.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a model atomic with `value`.
    pub fn new(value: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Atomic load (visible step).
    pub fn load(&self, order: Ordering) -> bool {
        with_exec(|e| e.schedule("atomic.load"));
        self.inner.load(order)
    }

    /// Atomic store (visible step).
    pub fn store(&self, value: bool, order: Ordering) {
        with_exec(|e| e.schedule("atomic.store"));
        self.inner.store(value, order);
    }
}
