//! Model threads: scheduler-registered spawn/join, mirroring the tiny
//! slice of `std::thread` the worker pool uses.

use crate::sched::with_exec;
use std::any::Any;

/// Spawns a model thread running `f`. The thread is registered with
/// the scheduler and only runs when it holds the token, like every
/// other model thread.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let tid = with_exec(|e| e.spawn_model(f));
    JoinHandle { tid }
}

/// [`spawn`] with a (ignored) thread name, so the production pool's
/// named-worker spawn routes through the model unchanged.
pub fn spawn_named<F>(_name: String, f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    spawn(f)
}

/// What the model reports for `available_parallelism`: a fixed small
/// count, so core-count capping in the code under test is deterministic
/// on any host.
pub fn available_parallelism() -> usize {
    4
}

/// Handle to a model thread; `join` blocks (a free scheduler switch)
/// until the thread finishes.
#[derive(Debug)]
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Waits for the thread to finish. Never returns `Err`: an escaped
    /// panic on a model thread is reported as a model-checking failure
    /// instead.
    pub fn join(self) -> Result<(), Box<dyn Any + Send>> {
        with_exec(|e| e.join_model(self.tid));
        Ok(())
    }
}
