//! The autonomous-vehicle scenario (Figure 4b; Tables 3, 4).
//!
//! Matching §5.1: scenes are sampled at 2 Hz, the LIDAR model is
//! bootstrapped (fixed), and active learning / weak supervision improve
//! the *camera* model. The task is single-class vehicle detection
//! ("We detected vehicles only"), so evaluation maps every class to 0.

use omg_active::{ActiveLearner, CandidatePool};
use omg_core::runtime::ThreadPool;
use omg_core::stream::Prepare;
use omg_core::AssertionSet;
use omg_domains::{av_prepared_assertion_set, AvFrame, AvPrepare};
use omg_eval::{DetectionEvaluator, GtBox, ScoredBox};
use omg_geom::BBox2D;
use omg_sim::av::{AvConfig, AvSample, AvWorld};
use omg_sim::detector::{Detection, DetectorConfig, SimDetector, TrainingBatch};
use rand::rngs::StdRng;

/// Minimum LIDAR confidence for a box to participate in assertions.
pub const LIDAR_SCORE_MIN: f64 = 0.3;

/// The fixed configuration of an AV experiment.
#[derive(Debug, Clone)]
pub struct AvScenario {
    /// Unlabeled pool samples, flattened across scenes.
    pub pool: Vec<AvSample>,
    /// Held-out test samples.
    pub test: Vec<AvSample>,
}

impl AvScenario {
    /// Builds a scenario from contiguous scene ranges (scenes are
    /// deterministic per index, so ranges are disjoint splits — the
    /// paper's by-scene splits of NuScenes).
    pub fn new(seed: u64, pool_scenes: u64, test_scenes: u64) -> Self {
        let world = AvWorld::new(AvConfig::default(), seed);
        let pool = (0..pool_scenes).flat_map(|i| world.scene(i)).collect();
        let test = (pool_scenes..pool_scenes + test_scenes)
            .flat_map(|i| world.scene(i))
            .collect();
        Self { pool, test }
    }

    /// Experiment-standard sizes (30 pool scenes, 12 test scenes at 20
    /// samples each).
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 30, 12)
    }
}

/// A globally unique frame index for a sample (per-scene indices repeat).
pub fn frame_key(sample: &AvSample) -> u64 {
    sample.scene * 10_000 + sample.index as u64
}

/// Runs the camera detector over samples.
pub fn detect_all(detector: &SimDetector, samples: &[AvSample]) -> Vec<Vec<Detection>> {
    samples
        .iter()
        .map(|s| detector.detect_frame(frame_key(s), &s.signals))
        .collect()
}

/// Builds the assertion-facing [`AvFrame`] for one sample.
pub fn av_frame(sample: &AvSample, dets: &[Detection]) -> AvFrame {
    AvFrame {
        time: sample.time,
        camera_dets: dets.iter().map(|d| d.scored).collect(),
        lidar_boxes: sample
            .lidar
            .iter()
            .filter(|l| l.score >= LIDAR_SCORE_MIN)
            .map(|l| l.bbox)
            .collect(),
        camera: sample.camera,
    }
}

/// The per-sample uncertainty signal shared by the batch and streaming
/// scorers: least-confidence over the camera detections.
pub fn sample_uncertainty(dets: &[Detection]) -> f64 {
    dets.iter()
        .map(|x| 1.0 - x.scored.score)
        .fold(0.0f64, f64::max)
}

/// Per-sample severity vectors and uncertainties, fanned out across the
/// runtime's workers (merged in sample order — identical at any thread
/// count).
pub fn score_samples(
    set: &AssertionSet<AvFrame>,
    samples: &[AvSample],
    dets: &[Vec<Detection>],
    runtime: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    runtime
        .map_indexed(samples.len(), |i| {
            let frame = av_frame(&samples[i], &dets[i]);
            let outcomes = set.check_all(&frame);
            let severities: Vec<f64> = outcomes.iter().map(|(_, s)| s.value()).collect();
            (severities, sample_uncertainty(&dets[i]))
        })
        .into_iter()
        .unzip()
}

/// The streaming counterpart of [`score_samples`]: AV windows carry no
/// temporal context (each sample stands alone), so streaming here means
/// ingesting one sample at a time and running the LIDAR→camera
/// projection **once per sample**, shared by the prepared assertion set,
/// instead of once per assertion that needs it. Identical severities and
/// uncertainties at any thread count.
pub fn stream_score_samples(
    set: &AssertionSet<AvFrame, Vec<BBox2D>>,
    samples: &[AvSample],
    dets: &[Vec<Detection>],
    runtime: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    assert_eq!(
        samples.len(),
        dets.len(),
        "need one detection list per sample"
    );
    runtime
        .map_indexed(samples.len(), |i| {
            let frame = av_frame(&samples[i], &dets[i]);
            let prep = AvPrepare.prepare(&frame);
            let severities: Vec<f64> = set
                .check_all_prepared(&frame, &prep)
                .iter()
                .map(|&(_, s)| s.value())
                .collect();
            (severities, sample_uncertainty(&dets[i]))
        })
        .into_iter()
        .unzip()
}

/// Single-class mAP (percent) of the camera detector on samples.
pub fn evaluate_map(detector: &SimDetector, samples: &[AvSample]) -> f64 {
    let mut ev = DetectionEvaluator::new(0.5);
    for sample in samples {
        let dets = detector.detect_frame(frame_key(sample), &sample.signals);
        let scored: Vec<ScoredBox> = dets
            .iter()
            .map(|d| ScoredBox {
                class: 0,
                ..d.scored
            })
            .collect();
        let gts: Vec<GtBox> = sample
            .gt_2d
            .iter()
            .map(|g| GtBox {
                bbox: g.bbox,
                class: 0,
            })
            .collect();
        ev.add_frame(&scored, &gts);
    }
    ev.map_percent()
}

/// The NuScenes-like active learner of Figure 4b.
pub struct AvLearner {
    scenario: AvScenario,
    detector: SimDetector,
    assertions: AssertionSet<AvFrame, Vec<BBox2D>>,
    unlabeled: Vec<usize>,
    labeled_batch: TrainingBatch,
    epochs_per_round: usize,
    runtime: ThreadPool,
}

impl AvLearner {
    /// Creates a learner around a pretrained camera detector, scoring
    /// pools on the harness-wide runtime (`--threads`) via the streaming
    /// path (one LIDAR projection per sample, shared by the set).
    pub fn new(scenario: AvScenario, detector: SimDetector) -> Self {
        let n = scenario.pool.len();
        Self {
            scenario,
            detector,
            assertions: av_prepared_assertion_set(),
            unlabeled: (0..n).collect(),
            labeled_batch: TrainingBatch::new(),
            epochs_per_round: 4,
            runtime: crate::runtime(),
        }
    }

    /// Overrides the scoring runtime.
    pub fn with_runtime(mut self, runtime: ThreadPool) -> Self {
        self.runtime = runtime;
        self
    }

    /// The current camera detector.
    pub fn detector(&self) -> &SimDetector {
        &self.detector
    }
}

impl ActiveLearner for AvLearner {
    fn pool(&mut self) -> CandidatePool {
        let dets = detect_all(&self.detector, &self.scenario.pool);
        let (sev, unc) =
            stream_score_samples(&self.assertions, &self.scenario.pool, &dets, &self.runtime);
        let severities = self.unlabeled.iter().map(|&i| sev[i].clone()).collect();
        let uncertainties = self.unlabeled.iter().map(|&i| unc[i]).collect();
        CandidatePool::new(severities, uncertainties).expect("consistent pool")
    }

    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng) {
        for &i in &crate::claim_selection(&mut self.unlabeled, selection) {
            for signal in &self.scenario.pool[i].signals {
                if signal.is_clutter() {
                    self.labeled_batch.add_labeled_background(signal);
                } else {
                    self.labeled_batch.add_labeled_object(signal);
                }
            }
        }
        if !self.labeled_batch.is_empty() {
            self.detector
                .train(&self.labeled_batch, self.epochs_per_round, rng);
        }
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_map(&self.detector, &self.scenario.test)
    }
}

/// The AV weak-supervision experiment (Table 4, row 2): LIDAR-imputed
/// boxes fine-tune the camera model.
pub fn av_weak_supervision(
    scenario: &AvScenario,
    detector: &SimDetector,
    epochs: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_map(detector, &scenario.test);
    let dets = detect_all(detector, &scenario.pool);
    let batch = omg_domains::weak::av_weak_batch(&scenario.pool, &dets, 0.5);
    let mut tuned = detector.clone();
    if !batch.is_empty() {
        tuned.train(&batch, epochs, rng);
    }
    let after = evaluate_map(&tuned, &scenario.test);
    (before, after)
}

/// Builds the standard pretrained camera detector for the AV experiments
/// (higher detection noise: the AV camera is a harder deployment).
pub fn pretrained_camera(seed: u64) -> SimDetector {
    let config = DetectorConfig {
        detect_temperature: 2.6,
        ..DetectorConfig::default()
    };
    SimDetector::pretrained(config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_domains::av_assertion_set;
    use rand::SeedableRng;

    fn tiny() -> AvScenario {
        AvScenario::new(9, 4, 2)
    }

    #[test]
    fn scenario_sizes() {
        let s = tiny();
        assert_eq!(s.pool.len(), 80);
        assert_eq!(s.test.len(), 40);
    }

    #[test]
    fn scoring_has_two_assertion_dims() {
        let s = tiny();
        let det = pretrained_camera(1);
        let dets = detect_all(&det, &s.pool);
        let set = av_assertion_set();
        let (sev, unc) = score_samples(&set, &s.pool, &dets, &ThreadPool::new(4));
        assert!(sev.iter().all(|r| r.len() == 2));
        assert_eq!(unc.len(), 80);
        let agree_fires: f64 = sev.iter().map(|r| r[0]).sum();
        assert!(
            agree_fires > 0.0,
            "camera misses with LIDAR hits must trip agree"
        );
    }

    #[test]
    fn map_is_low_but_positive_for_pretrained_camera() {
        let s = tiny();
        let det = pretrained_camera(1);
        let map = evaluate_map(&det, &s.test);
        assert!(map > 1.0, "mAP% {map}");
        assert!(map < 90.0, "mAP% {map} suspiciously high for dusk camera");
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny();
        let det = pretrained_camera(1);
        let dets = detect_all(&det, &s.pool);
        let want = score_samples(
            &av_assertion_set(),
            &s.pool,
            &dets,
            &ThreadPool::sequential(),
        );
        let prepared = av_prepared_assertion_set();
        for threads in [1, 2, 8] {
            assert_eq!(
                stream_score_samples(&prepared, &s.pool, &dets, &ThreadPool::new(threads)),
                want,
                "streaming AV scoring diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn duplicate_selection_claims_each_sample_once() {
        let s = tiny();
        let mut learner = AvLearner::new(s, pretrained_camera(1));
        let mut rng = StdRng::seed_from_u64(3);
        learner.label_and_train(&[0, 0, 1, 0], &mut rng);
        assert_eq!(learner.pool().len(), 78, "two distinct samples claimed");
    }

    #[test]
    fn learner_round_trip() {
        let s = tiny();
        let mut learner = AvLearner::new(s, pretrained_camera(1));
        let mut rng = StdRng::seed_from_u64(3);
        let pool = learner.pool();
        assert_eq!(pool.len(), 80);
        learner.label_and_train(&[0, 1, 2, 3, 4], &mut rng);
        assert_eq!(learner.pool().len(), 75);
        let m = learner.evaluate();
        assert!(m >= 0.0);
    }

    #[test]
    fn weak_supervision_runs() {
        let s = tiny();
        let det = pretrained_camera(1);
        let mut rng = StdRng::seed_from_u64(4);
        let (before, after) = av_weak_supervision(&s, &det, 6, &mut rng);
        assert!(before >= 0.0 && after >= 0.0);
    }
}
