//! The autonomous-vehicle scenario (Figure 4b; Tables 3, 4), ported onto
//! the generic [`Scenario`] engine.
//!
//! Matching §5.1: scenes are sampled at 2 Hz, the LIDAR model is
//! bootstrapped (fixed), and active learning / weak supervision improve
//! the *camera* model. The task is single-class vehicle detection
//! ("We detected vehicles only"), so evaluation maps every class to 0.
//!
//! AV samples carry no temporal context (`window_half = 0`): streaming
//! here means ingesting one sample at a time and running the
//! LIDAR→camera projection **once per sample**, shared by the prepared
//! set, instead of once per assertion that needs it.

use std::sync::OnceLock;

use omg_domains::{av_assertion_set, av_prepared_assertion_set, AvFrame, AvPrepare};
use omg_eval::{DetectionEvaluator, GtBox, ScoredBox};
use omg_geom::BBox2D;
use omg_scenario::{detection_uncertainty, Scenario};
use omg_sim::av::{AvConfig, AvSample, AvWorld};
use omg_sim::detector::{Detection, DetectorConfig, SimDetector, TrainingBatch};
use rand::rngs::StdRng;

/// Minimum LIDAR confidence for a box to participate in assertions.
pub const LIDAR_SCORE_MIN: f64 = 0.3;

/// The fixed configuration of an AV experiment.
#[derive(Debug, Clone)]
pub struct AvScenario {
    /// Unlabeled pool samples, flattened across scenes.
    pub pool: Vec<AvSample>,
    /// Held-out test samples.
    pub test: Vec<AvSample>,
}

impl AvScenario {
    /// Builds a scenario from contiguous scene ranges (scenes are
    /// deterministic per index, so ranges are disjoint splits — the
    /// paper's by-scene splits of NuScenes).
    pub fn new(seed: u64, pool_scenes: u64, test_scenes: u64) -> Self {
        let world = AvWorld::new(AvConfig::default(), seed);
        let pool = (0..pool_scenes).flat_map(|i| world.scene(i)).collect();
        let test = (pool_scenes..pool_scenes + test_scenes)
            .flat_map(|i| world.scene(i))
            .collect();
        Self { pool, test }
    }

    /// Experiment-standard sizes (30 pool scenes, 12 test scenes at 20
    /// samples each).
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 30, 12)
    }
}

/// A globally unique frame index for a sample (per-scene indices repeat).
pub fn frame_key(sample: &AvSample) -> u64 {
    sample.scene * 10_000 + sample.index as u64
}

/// Runs the camera detector over samples.
pub fn detect_all(detector: &SimDetector, samples: &[AvSample]) -> Vec<Vec<Detection>> {
    samples
        .iter()
        .map(|s| detector.detect_frame(frame_key(s), &s.signals))
        .collect()
}

/// Builds the assertion-facing [`AvFrame`] for one sample.
pub fn av_frame(sample: &AvSample, dets: &[Detection]) -> AvFrame {
    AvFrame {
        time: sample.time,
        camera_dets: dets.iter().map(|d| d.scored).collect(),
        lidar_boxes: sample
            .lidar
            .iter()
            .filter(|l| l.score >= LIDAR_SCORE_MIN)
            .map(|l| l.bbox)
            .collect(),
        camera: sample.camera,
    }
}

/// Single-class mAP (percent) of the camera detector on samples.
pub fn evaluate_map(detector: &SimDetector, samples: &[AvSample]) -> f64 {
    let mut ev = DetectionEvaluator::new(0.5);
    for sample in samples {
        let dets = detector.detect_frame(frame_key(sample), &sample.signals);
        let scored: Vec<ScoredBox> = dets
            .iter()
            .map(|d| ScoredBox {
                class: 0,
                ..d.scored
            })
            .collect();
        let gts: Vec<GtBox> = sample
            .gt_2d
            .iter()
            .map(|g| GtBox {
                bbox: g.bbox,
                class: 0,
            })
            .collect();
        ev.add_frame(&scored, &gts);
    }
    ev.map_percent()
}

/// The AV weak-supervision experiment (Table 4, row 2): LIDAR-imputed
/// boxes fine-tune the camera model.
pub fn av_weak_supervision(
    scenario: &AvScenario,
    detector: &SimDetector,
    epochs: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_map(detector, &scenario.test);
    let dets = detect_all(detector, &scenario.pool);
    let batch = omg_domains::weak::av_weak_batch(&scenario.pool, &dets, 0.5);
    let mut tuned = detector.clone();
    if !batch.is_empty() {
        tuned.train(&batch, epochs, rng);
    }
    let after = evaluate_map(&tuned, &scenario.test);
    (before, after)
}

impl Scenario for AvScenario {
    type Item = AvFrame;
    type Sample = AvFrame;
    type Prep = Vec<BBox2D>;
    type Model = SimDetector;
    type Labels = TrainingBatch;

    fn name(&self) -> &'static str {
        "av"
    }

    fn title(&self) -> &'static str {
        "AVs"
    }

    fn metric_unit(&self) -> &'static str {
        "mAP"
    }

    fn pool_len(&self) -> usize {
        self.pool.len()
    }

    fn pretrained_model(&self, seed: u64) -> SimDetector {
        pretrained_camera(seed)
    }

    fn run_model(&self, model: &SimDetector) -> Vec<AvFrame> {
        self.pool
            .iter()
            .map(|s| av_frame(s, &model.detect_frame(frame_key(s), &s.signals)))
            .collect()
    }

    fn assertion_set(&self) -> omg_core::AssertionSet<AvFrame> {
        av_assertion_set()
    }

    fn prepared_set(&self) -> omg_core::AssertionSet<AvFrame, Vec<BBox2D>> {
        av_prepared_assertion_set()
    }

    fn preparer(&self) -> Box<dyn omg_core::stream::Prepare<AvFrame, Prepared = Vec<BBox2D>>> {
        Box::new(AvPrepare)
    }

    fn make_sample(&self, items: &[AvFrame], center: usize) -> AvFrame {
        // PANIC: the drivers pass center < items.len() by contract.
        items[center].clone()
    }

    fn uncertainty(&self, item: &AvFrame) -> f64 {
        detection_uncertainty(item.camera_dets.iter().map(|d| d.score))
    }

    fn initial_labels(&self) -> TrainingBatch {
        TrainingBatch::new()
    }

    fn label_into(&self, labels: &mut TrainingBatch, pool_index: usize) {
        for signal in &self.pool[pool_index].signals {
            if signal.is_clutter() {
                labels.add_labeled_background(signal);
            } else {
                labels.add_labeled_object(signal);
            }
        }
    }

    fn train(&self, model: &mut SimDetector, labels: &TrainingBatch, rng: &mut StdRng) {
        if !labels.is_empty() {
            model.train(labels, 4, rng);
        }
    }

    fn evaluate(&self, model: &SimDetector) -> f64 {
        evaluate_map(model, &self.test)
    }

    fn weak_supervision(&self, model: &SimDetector, rng: &mut StdRng) -> Option<(f64, f64)> {
        Some(av_weak_supervision(self, model, 2, rng))
    }
}

/// Builds the standard pretrained camera detector for the AV experiments
/// (higher detection noise: the AV camera is a harder deployment).
pub fn pretrained_camera(seed: u64) -> SimDetector {
    let config = DetectorConfig {
        detect_temperature: 2.6,
        ..DetectorConfig::default()
    };
    SimDetector::pretrained(config, seed)
}

/// The registry's shared pretrained camera (model seed 1); see
/// [`crate::video::shared_pretrained_detector`] for why it is cached.
pub fn shared_pretrained_camera() -> &'static SimDetector {
    static CAMERA: OnceLock<SimDetector> = OnceLock::new();
    CAMERA.get_or_init(|| pretrained_camera(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_active::ActiveLearner;
    use omg_core::runtime::ThreadPool;
    use omg_scenario::{score_scenario, stream_score_scenario, ScenarioLearner};
    use rand::SeedableRng;

    fn tiny() -> AvScenario {
        AvScenario::new(9, 4, 2)
    }

    #[test]
    fn scenario_sizes() {
        let s = tiny();
        assert_eq!(s.pool.len(), 80);
        assert_eq!(s.test.len(), 40);
    }

    #[test]
    fn scoring_has_two_assertion_dims() {
        let s = tiny();
        let items = s.run_model(&pretrained_camera(1));
        let (sev, unc) = score_scenario(&s, &s.assertion_set(), &items, &ThreadPool::exact(4));
        assert!(sev.iter_rows().all(|r| r.len() == 2));
        assert_eq!(unc.len(), 80);
        let agree_fires: f64 = sev.iter_rows().map(|r| r[0]).sum();
        assert!(
            agree_fires > 0.0,
            "camera misses with LIDAR hits must trip agree"
        );
    }

    #[test]
    fn map_is_low_but_positive_for_pretrained_camera() {
        let s = tiny();
        let det = pretrained_camera(1);
        let map = evaluate_map(&det, &s.test);
        assert!(map > 1.0, "mAP% {map}");
        assert!(map < 90.0, "mAP% {map} suspiciously high for dusk camera");
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny();
        let items = s.run_model(&pretrained_camera(1));
        let want = score_scenario(&s, &s.assertion_set(), &items, &ThreadPool::sequential());
        let prepared = s.prepared_set();
        let preparer = s.preparer();
        for threads in [1, 2, 8] {
            assert_eq!(
                stream_score_scenario(
                    &s,
                    &prepared,
                    &preparer,
                    &items,
                    &ThreadPool::exact(threads)
                ),
                want,
                "streaming AV scoring diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn duplicate_selection_claims_each_sample_once() {
        let s = tiny();
        let mut learner = ScenarioLearner::new(s, pretrained_camera(1));
        let mut rng = StdRng::seed_from_u64(3);
        learner.label_and_train(&[0, 0, 1, 0], &mut rng);
        assert_eq!(learner.pool().len(), 78, "two distinct samples claimed");
    }

    #[test]
    fn learner_round_trip() {
        let s = tiny();
        let mut learner = ScenarioLearner::new(s, pretrained_camera(1));
        let mut rng = StdRng::seed_from_u64(3);
        let pool = learner.pool();
        assert_eq!(pool.len(), 80);
        learner.label_and_train(&[0, 1, 2, 3, 4], &mut rng);
        assert_eq!(learner.pool().len(), 75);
        let m = learner.evaluate();
        assert!(m >= 0.0);
    }

    #[test]
    fn weak_supervision_runs() {
        let s = tiny();
        let det = pretrained_camera(1);
        let mut rng = StdRng::seed_from_u64(4);
        let (before, after) = av_weak_supervision(&s, &det, 6, &mut rng);
        assert!(before >= 0.0 && after >= 0.0);
    }
}
