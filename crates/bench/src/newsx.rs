//! The TV-news scenario (Tables 1-3), ported onto the generic
//! [`Scenario`] engine as its monitoring-only member.
//!
//! The paper had no training access for this domain ("We were unable to
//! access the training code for this domain", §5.1), so news contributes
//! monitoring statistics only: assertion fire counts and precision. On
//! the engine that means `trains()` is false — the registry hands out no
//! learner — while batch/stream scoring (and the flagged-group precision
//! analysis below) work like every other scenario.

use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow, Violation};
use omg_core::runtime::ThreadPool;
use omg_core::stream::Prepare;
use omg_domains::news::{news_assertion, NewsSpec};
use omg_domains::news_prepared_assertion_set;
use omg_scenario::Scenario;
use omg_sim::news::{Host, NewsConfig, NewsFace, NewsScene, NewsWorld};
use rand::rngs::StdRng;

/// The fixed configuration of a news experiment.
#[derive(Debug, Clone)]
pub struct NewsScenario {
    /// The world (roster + scene generator).
    pub world: NewsWorld,
    /// The monitored scenes.
    pub scenes: Vec<NewsScene>,
}

impl NewsScenario {
    /// Builds a scenario over `n_scenes` scenes.
    pub fn new(seed: u64, n_scenes: u64) -> Self {
        let world = NewsWorld::new(NewsConfig::default(), seed);
        let scenes = world.scenes(0..n_scenes);
        Self { world, scenes }
    }

    /// Experiment-standard size (the paper's lab gave 50 hour-long
    /// segments; 400 scenes keeps the statistics stable at laptop scale).
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 400)
    }
}

/// One flagged (scene, slot) group with whether a real model error exists
/// in it — the unit of the Table 3 precision check.
#[derive(Debug, Clone, PartialEq)]
pub struct FlaggedGroup {
    /// Scene index.
    pub scene: u64,
    /// Host slot within the scene.
    pub slot: usize,
    /// Whether some face output in the group is genuinely wrong.
    pub is_real_error: bool,
}

/// Extracts the flagged (scene, slot) groups from one scene's
/// already-grouped consistency window (deduplicated per scene/slot).
fn groups_in_scene(
    engine: &ConsistencyEngine<NewsSpec>,
    scene: &NewsScene,
    window: &ConsistencyWindow<NewsFace>,
    roster: &[Host],
) -> Vec<FlaggedGroup> {
    let mut seen: Vec<(u64, usize)> = Vec::new();
    let mut out = Vec::new();
    for violation in engine.check(window) {
        let Violation::AttributeMismatch { id, .. } = violation else {
            continue;
        };
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        let is_real_error = scene
            .faces
            .iter()
            .filter(|f| (f.scene, f.slot) == id)
            .any(|f| f.is_error(roster));
        out.push(FlaggedGroup {
            scene: id.0,
            slot: id.1,
            is_real_error,
        });
    }
    out
}

/// Runs the news assertion over all scenes and returns the flagged
/// groups (deduplicated per scene/slot). Scenes are independent, so the
/// consistency checks fan out across the runtime's workers and merge in
/// scene order. Each scene is grouped **once** via the shared
/// preparation layer; the grouping feeds both the assertion's violation
/// check and the flagged-group analysis.
pub fn flagged_groups(scenario: &NewsScenario, runtime: &ThreadPool) -> Vec<FlaggedGroup> {
    let engine = ConsistencyEngine::new(NewsSpec);
    let roster = scenario.world.roster();
    runtime
        .map_indexed(scenario.scenes.len(), |si| {
            let scene = &scenario.scenes[si];
            let window = omg_domains::NewsPrepare.prepare(scene);
            groups_in_scene(&engine, scene, &window, roster)
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Number of scenes on which the combined news assertion fires.
pub fn scenes_fired(scenario: &NewsScenario) -> usize {
    let assertion = news_assertion();
    scenario
        .scenes
        .iter()
        .filter(|s| omg_core::Assertion::check(&assertion, s).fired())
        .count()
}

impl Scenario for NewsScenario {
    type Item = NewsScene;
    type Sample = NewsScene;
    type Prep = ConsistencyWindow<NewsFace>;
    type Model = ();
    type Labels = ();

    fn name(&self) -> &'static str {
        "news"
    }

    fn title(&self) -> &'static str {
        "TV news"
    }

    fn pool_len(&self) -> usize {
        self.scenes.len()
    }

    fn pretrained_model(&self, _seed: u64) {}

    fn run_model(&self, _model: &()) -> Vec<NewsScene> {
        // The face pipeline's outputs are baked into the simulated
        // scenes; "running the model" is reading them off.
        self.scenes.clone()
    }

    fn assertion_set(&self) -> omg_core::AssertionSet<NewsScene> {
        let mut set = omg_core::AssertionSet::new();
        set.add(news_assertion());
        set
    }

    fn prepared_set(&self) -> omg_core::AssertionSet<NewsScene, ConsistencyWindow<NewsFace>> {
        news_prepared_assertion_set()
    }

    fn preparer(&self) -> Box<dyn Prepare<NewsScene, Prepared = ConsistencyWindow<NewsFace>>> {
        Box::new(omg_domains::NewsPrepare)
    }

    fn make_sample(&self, items: &[NewsScene], center: usize) -> NewsScene {
        // PANIC: the drivers pass center < items.len() by contract.
        items[center].clone()
    }

    fn uncertainty(&self, _item: &NewsScene) -> f64 {
        // No confidence signal is exposed by the news pipeline; the
        // paper's comparison for this domain is monitoring-only.
        0.0
    }

    fn trains(&self) -> bool {
        false
    }

    fn initial_labels(&self) {}

    fn label_into(&self, _labels: &mut (), _pool_index: usize) {}

    fn train(&self, _model: &mut (), _labels: &(), _rng: &mut StdRng) {}

    fn evaluate(&self, _model: &()) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_scenario::{score_scenario, stream_score_scenario};

    #[test]
    fn assertion_fires_on_some_scenes() {
        let s = NewsScenario::new(3, 200);
        let fired = scenes_fired(&s);
        assert!(fired > 5, "expected transient errors to fire: {fired}");
        assert!(fired < 200, "not every scene should fire: {fired}");
    }

    #[test]
    fn flagged_groups_are_mostly_real_errors() {
        let s = NewsScenario::new(3, 300);
        let flagged = flagged_groups(&s, &ThreadPool::sequential());
        assert!(!flagged.is_empty());
        assert_eq!(
            flagged_groups(&s, &ThreadPool::exact(4)),
            flagged,
            "parallel scene checks must merge in scene order"
        );
        let real = flagged.iter().filter(|g| g.is_real_error).count();
        let precision = real as f64 / flagged.len() as f64;
        assert!(
            precision > 0.95,
            "news consistency should be near-perfectly precise: {precision}"
        );
    }

    #[test]
    fn generic_scoring_matches_the_fire_count() {
        let s = NewsScenario::new(3, 150);
        let items = s.run_model(&());
        let batch_fired = scenes_fired(&s);
        let want = score_scenario(&s, &s.assertion_set(), &items, &ThreadPool::sequential());
        assert_eq!(
            want.0.iter_rows().filter(|r| r[0] > 0.0).count(),
            batch_fired,
            "generic batch severities must reproduce scenes_fired"
        );
        let prepared = s.prepared_set();
        let preparer = s.preparer();
        for threads in [1, 2, 8] {
            let got = stream_score_scenario(
                &s,
                &prepared,
                &preparer,
                &items,
                &ThreadPool::exact(threads),
            );
            assert_eq!(got, want, "news stream diverges at {threads} threads");
        }
    }

    #[test]
    fn flagged_groups_deduplicate() {
        let s = NewsScenario::new(3, 100);
        let flagged = flagged_groups(&s, &ThreadPool::sequential());
        let mut keys: Vec<(u64, usize)> = flagged.iter().map(|g| (g.scene, g.slot)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }
}
