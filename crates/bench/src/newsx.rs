//! The TV-news scenario (Tables 1-3).
//!
//! The paper had no training access for this domain ("We were unable to
//! access the training code for this domain", §5.1), so news contributes
//! monitoring statistics only: assertion fire counts and precision.

use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow, Violation};
use omg_core::runtime::ThreadPool;
use omg_core::stream::Prepare;
use omg_core::Assertion;
use omg_domains::news::{news_assertion, scene_window, NewsSpec};
use omg_domains::{news_prepared_assertion_set, NewsPrepare};
use omg_sim::news::{Host, NewsConfig, NewsFace, NewsScene, NewsWorld};

/// The fixed configuration of a news experiment.
#[derive(Debug, Clone)]
pub struct NewsScenario {
    /// The world (roster + scene generator).
    pub world: NewsWorld,
    /// The monitored scenes.
    pub scenes: Vec<NewsScene>,
}

impl NewsScenario {
    /// Builds a scenario over `n_scenes` scenes.
    pub fn new(seed: u64, n_scenes: u64) -> Self {
        let world = NewsWorld::new(NewsConfig::default(), seed);
        let scenes = world.scenes(0..n_scenes);
        Self { world, scenes }
    }

    /// Experiment-standard size (the paper's lab gave 50 hour-long
    /// segments; 400 scenes keeps the statistics stable at laptop scale).
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 400)
    }
}

/// One flagged (scene, slot) group with whether a real model error exists
/// in it — the unit of the Table 3 precision check.
#[derive(Debug, Clone, PartialEq)]
pub struct FlaggedGroup {
    /// Scene index.
    pub scene: u64,
    /// Host slot within the scene.
    pub slot: usize,
    /// Whether some face output in the group is genuinely wrong.
    pub is_real_error: bool,
}

/// Extracts the flagged (scene, slot) groups from one scene's
/// already-grouped consistency window (deduplicated per scene/slot).
fn groups_in_scene(
    engine: &ConsistencyEngine<NewsSpec>,
    scene: &NewsScene,
    window: &ConsistencyWindow<NewsFace>,
    roster: &[Host],
) -> Vec<FlaggedGroup> {
    let mut seen: Vec<(u64, usize)> = Vec::new();
    let mut out = Vec::new();
    for violation in engine.check(window) {
        let Violation::AttributeMismatch { id, .. } = violation else {
            continue;
        };
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        let is_real_error = scene
            .faces
            .iter()
            .filter(|f| (f.scene, f.slot) == id)
            .any(|f| f.is_error(roster));
        out.push(FlaggedGroup {
            scene: id.0,
            slot: id.1,
            is_real_error,
        });
    }
    out
}

/// Runs the news assertion over all scenes and returns the flagged
/// groups (deduplicated per scene/slot). Scenes are independent, so the
/// consistency checks fan out across the runtime's workers and merge in
/// scene order.
pub fn flagged_groups(scenario: &NewsScenario, runtime: &ThreadPool) -> Vec<FlaggedGroup> {
    let engine = ConsistencyEngine::new(NewsSpec);
    let roster = scenario.world.roster();
    runtime
        .map_indexed(scenario.scenes.len(), |si| {
            let scene = &scenario.scenes[si];
            let window = scene_window(scene);
            groups_in_scene(&engine, scene, &window, roster)
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Number of scenes on which the combined news assertion fires.
pub fn scenes_fired(scenario: &NewsScenario) -> usize {
    let assertion = news_assertion();
    scenario
        .scenes
        .iter()
        .filter(|s| assertion.check(s).fired())
        .count()
}

/// The full monitoring report for one scene: the combined assertion's
/// severity and the flagged groups, both derived from **one** scene
/// grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneReport {
    /// The combined news assertion's severity on the scene.
    pub severity: f64,
    /// The flagged (scene, slot) groups.
    pub groups: Vec<FlaggedGroup>,
}

/// The streaming counterpart of [`scenes_fired`] + [`flagged_groups`]:
/// each scene is grouped **once** (via the shared preparation layer) and
/// the grouping feeds both the prepared assertion set and the
/// flagged-group analysis — instead of the batch path's one grouping per
/// consumer. Identical severities and groups at any thread count.
pub fn stream_scene_reports(scenario: &NewsScenario, runtime: &ThreadPool) -> Vec<SceneReport> {
    let set = news_prepared_assertion_set();
    let engine = ConsistencyEngine::new(NewsSpec);
    let roster = scenario.world.roster();
    runtime.map_indexed(scenario.scenes.len(), |si| {
        let scene = &scenario.scenes[si];
        let window = NewsPrepare.prepare(scene);
        let severity = set.check_all_prepared(scene, &window)[0].1.value();
        let groups = groups_in_scene(&engine, scene, &window, roster);
        SceneReport { severity, groups }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertion_fires_on_some_scenes() {
        let s = NewsScenario::new(3, 200);
        let fired = scenes_fired(&s);
        assert!(fired > 5, "expected transient errors to fire: {fired}");
        assert!(fired < 200, "not every scene should fire: {fired}");
    }

    #[test]
    fn flagged_groups_are_mostly_real_errors() {
        let s = NewsScenario::new(3, 300);
        let flagged = flagged_groups(&s, &ThreadPool::sequential());
        assert!(!flagged.is_empty());
        assert_eq!(
            flagged_groups(&s, &ThreadPool::new(4)),
            flagged,
            "parallel scene checks must merge in scene order"
        );
        let real = flagged.iter().filter(|g| g.is_real_error).count();
        let precision = real as f64 / flagged.len() as f64;
        assert!(
            precision > 0.95,
            "news consistency should be near-perfectly precise: {precision}"
        );
    }

    #[test]
    fn stream_reports_match_batch_analyses() {
        let s = NewsScenario::new(3, 150);
        let batch_groups = flagged_groups(&s, &ThreadPool::sequential());
        let batch_fired = scenes_fired(&s);
        for threads in [1, 2, 8] {
            let reports = stream_scene_reports(&s, &ThreadPool::new(threads));
            assert_eq!(reports.len(), 150);
            let stream_groups: Vec<FlaggedGroup> =
                reports.iter().flat_map(|r| r.groups.clone()).collect();
            assert_eq!(
                stream_groups, batch_groups,
                "groups diverge at {threads} threads"
            );
            let stream_fired = reports.iter().filter(|r| r.severity > 0.0).count();
            assert_eq!(
                stream_fired, batch_fired,
                "fire counts diverge at {threads} threads"
            );
        }
    }

    #[test]
    fn flagged_groups_deduplicate() {
        let s = NewsScenario::new(3, 100);
        let flagged = flagged_groups(&s, &ThreadPool::sequential());
        let mut keys: Vec<(u64, usize)> = flagged.iter().map(|g| (g.scene, g.slot)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }
}
