//! The ECG / atrial-fibrillation scenario (Figure 5; Table 4, row 3).

use omg_active::{ActiveLearner, CandidatePool};
use omg_core::consistency::ConsistencyWindow;
use omg_core::runtime::ThreadPool;
use omg_core::stream::{score_stream_chunked, Prepare, SlidingWindows, StreamScorer};
use omg_core::{Assertion, AssertionSet};
use omg_domains::ecg::ecg_assertion;
use omg_domains::{ecg_prepared_assertion_set, EcgPrepare, EcgWindow};
use omg_learn::uncertainty::least_confidence;
use omg_learn::{Dataset, Mlp, MlpConfig};
use omg_sim::derive_rng;
use omg_sim::ecg::{EcgConfig, EcgPoint, EcgWorld, ECG_CLASSES, ECG_DIM};
use rand::rngs::StdRng;

/// Predictions of context included on each side when checking the
/// assertion around one window.
pub const ECG_CONTEXT: usize = 3;

/// The fixed configuration of an ECG experiment: train/unlabeled/test
/// splits of a continuous recording stream, as in the paper's CINC17
/// setup (§5.1).
#[derive(Debug, Clone)]
pub struct EcgScenario {
    /// The small bootstrap training split.
    pub train: Vec<EcgPoint>,
    /// The unlabeled pool.
    pub pool: Vec<EcgPoint>,
    /// The held-out test split.
    pub test: Vec<EcgPoint>,
}

impl EcgScenario {
    /// Builds a scenario with the given split sizes.
    pub fn new(seed: u64, train: usize, pool: usize, test: usize) -> Self {
        // Separate worlds = separate recordings; splits are disjoint.
        // The train split draws from several recordings so that every
        // rhythm class appears in it (CINC17's train split spans
        // thousands of patients).
        let mut train_points = Vec::with_capacity(train);
        let recordings = 4usize;
        for r in 0..recordings {
            let mut w = EcgWorld::new(EcgConfig::default(), seed ^ (0x1111 * (r as u64 + 1)));
            let take = if r + 1 == recordings {
                train - train_points.len()
            } else {
                train / recordings
            };
            train_points.extend(w.windows(take));
        }
        let mut pool_world = EcgWorld::new(EcgConfig::default(), seed ^ 0xAAAA);
        let mut test_world = EcgWorld::new(EcgConfig::default(), seed ^ 0x5555);
        Self {
            train: train_points,
            pool: pool_world.windows(pool),
            test: test_world.windows(test),
        }
    }

    /// Experiment-standard sizes, proportioned like CINC17's 8,528
    /// records: small train, large unlabeled pool, held-out test.
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 600, 2000, 1000)
    }
}

/// Converts ECG points into an `omg-learn` dataset.
pub fn to_dataset(points: &[EcgPoint]) -> Dataset {
    let mut d = Dataset::new(ECG_DIM);
    for p in points {
        d.push(p.features.clone(), p.true_class);
    }
    d
}

/// Pretrains the rhythm classifier on the bootstrap split — the stand-in
/// for the paper's ResNet "trained until the loss plateaus" on the CINC17
/// train split (the small split size is what caps accuracy near the
/// paper's 70.7%).
pub fn pretrained_classifier(scenario: &EcgScenario, seed: u64) -> Mlp {
    let mut rng = derive_rng(seed, 0xEC61);
    let mut mlp = Mlp::new(
        MlpConfig {
            input_dim: ECG_DIM,
            hidden: vec![12],
            classes: ECG_CLASSES,
            lr: 0.05,
        },
        &mut rng,
    );
    let data = to_dataset(&scenario.train);
    for _ in 0..60 {
        mlp.train_epoch(&data, 16, &mut rng);
    }
    mlp
}

/// Accuracy (percent) of a classifier on a split.
pub fn evaluate_accuracy(mlp: &Mlp, points: &[EcgPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let hits = points
        .iter()
        .filter(|p| mlp.predict(&p.features) == p.true_class)
        .count();
    100.0 * hits as f64 / points.len() as f64
}

/// Builds the context window centered on prediction `center` (clamped at
/// stream edges).
///
/// # Panics
///
/// Panics if `center` is not a valid prediction index or the times and
/// predictions don't line up.
pub fn ecg_window_at(times: &[f64], preds: &[usize], center: usize) -> EcgWindow {
    assert_eq!(
        times.len(),
        preds.len(),
        "need one prediction per timestamp"
    );
    assert!(
        center < times.len(),
        "window center {center} out of range for {} predictions",
        times.len()
    );
    let lo = center.saturating_sub(ECG_CONTEXT);
    let hi = (center + ECG_CONTEXT + 1).min(times.len());
    EcgWindow::new(times[lo..hi].to_vec(), preds[lo..hi].to_vec(), center - lo)
}

/// Per-point severity (the single ECG assertion) and uncertainty over a
/// prediction stream. The prediction pass runs once sequentially (each
/// window needs its neighbours' predictions); the window checks and
/// uncertainty scores then fan out across the runtime's workers.
pub fn score_pool(mlp: &Mlp, pool: &[EcgPoint], runtime: &ThreadPool) -> (Vec<Vec<f64>>, Vec<f64>) {
    let assertion = ecg_assertion();
    let preds: Vec<usize> = pool.iter().map(|p| mlp.predict(&p.features)).collect();
    let times: Vec<f64> = pool.iter().map(|p| p.time).collect();
    runtime
        .map_indexed(pool.len(), |i| {
            let window = ecg_window_at(&times, &preds, i);
            (
                vec![assertion.check(&window).value()],
                least_confidence(&mlp.predict_proba(&pool[i].features)),
            )
        })
        .into_iter()
        .unzip()
}

/// An incremental ECG scorer: ingests one (time, prediction) pair at a
/// time over a ring buffer, segments each completed context window once,
/// and checks the prepared assertion set against the shared segments —
/// the streaming counterpart of [`score_pool`]'s scoring pass.
pub struct EcgStreamScorer<'a> {
    set: &'a AssertionSet<EcgWindow, ConsistencyWindow<usize>>,
    mlp: &'a Mlp,
    pool: &'a [EcgPoint],
    times: &'a [f64],
    preds: &'a [usize],
    /// Global index of the first item this scorer is fed.
    offset: usize,
    slider: SlidingWindows<(f64, usize)>,
}

impl<'a> EcgStreamScorer<'a> {
    /// Creates a scorer over a prediction stream; `offset` is the global
    /// index of the first item that will be pushed. Uncertainties are
    /// computed at emission time on whichever worker runs the chunk,
    /// like the batch path does.
    pub fn new(
        set: &'a AssertionSet<EcgWindow, ConsistencyWindow<usize>>,
        mlp: &'a Mlp,
        pool: &'a [EcgPoint],
        times: &'a [f64],
        preds: &'a [usize],
        offset: usize,
    ) -> Self {
        assert_eq!(
            times.len(),
            preds.len(),
            "need one prediction per timestamp"
        );
        assert_eq!(
            times.len(),
            pool.len(),
            "need one pool point per prediction"
        );
        Self {
            set,
            mlp,
            pool,
            times,
            preds,
            offset,
            slider: SlidingWindows::new(ECG_CONTEXT),
        }
    }

    fn score(
        &self,
        items: Vec<(f64, usize)>,
        center: usize,
        local_index: usize,
    ) -> (Vec<f64>, f64) {
        let (t, p): (Vec<f64>, Vec<usize>) = items.into_iter().unzip();
        let window = EcgWindow::new(t, p, center);
        let prep = EcgPrepare.prepare(&window);
        let severities = self
            .set
            .check_all_prepared(&window, &prep)
            .iter()
            .map(|&(_, s)| s.value())
            .collect();
        let point = &self.pool[self.offset + local_index];
        (
            severities,
            least_confidence(&self.mlp.predict_proba(&point.features)),
        )
    }
}

impl StreamScorer for EcgStreamScorer<'_> {
    type Output = (Vec<f64>, f64);

    fn push(&mut self, index: usize) -> Option<(Vec<f64>, f64)> {
        let ready = self.slider.push((self.times[index], self.preds[index]));
        ready.map(|w| self.score(w.items, w.center, w.index))
    }

    fn finish(mut self) -> Vec<(Vec<f64>, f64)> {
        let tail = self.slider.finish();
        tail.into_iter()
            .map(|w| self.score(w.items, w.center, w.index))
            .collect()
    }
}

/// The streaming counterpart of [`score_pool`]: identical severities and
/// uncertainties, computed incrementally over a ring buffer with one
/// segmentation per window, chunked across the runtime's workers.
pub fn stream_score_pool(
    mlp: &Mlp,
    pool: &[EcgPoint],
    runtime: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let set = ecg_prepared_assertion_set();
    let preds: Vec<usize> = pool.iter().map(|p| mlp.predict(&p.features)).collect();
    let times: Vec<f64> = pool.iter().map(|p| p.time).collect();
    score_stream_chunked(pool.len(), ECG_CONTEXT, runtime, |offset| {
        EcgStreamScorer::new(&set, mlp, pool, &times, &preds, offset)
    })
    .into_iter()
    .unzip()
}

/// The ECG active learner of Figure 5.
pub struct EcgLearner {
    scenario: EcgScenario,
    classifier: Mlp,
    unlabeled: Vec<usize>,
    labeled: Dataset,
    epochs_per_round: usize,
    runtime: ThreadPool,
}

impl EcgLearner {
    /// Creates a learner around a pretrained classifier; the bootstrap
    /// split stays in the training set and continued training runs at a
    /// fine-tuning rate. Pools are scored on the harness-wide runtime
    /// (`--threads`).
    pub fn new(scenario: EcgScenario, mut classifier: Mlp) -> Self {
        classifier.set_lr(0.02);
        let labeled = to_dataset(&scenario.train);
        let n = scenario.pool.len();
        Self {
            scenario,
            classifier,
            unlabeled: (0..n).collect(),
            labeled,
            epochs_per_round: 15,
            runtime: crate::runtime(),
        }
    }

    /// Overrides the scoring runtime.
    pub fn with_runtime(mut self, runtime: ThreadPool) -> Self {
        self.runtime = runtime;
        self
    }

    /// The current classifier.
    pub fn classifier(&self) -> &Mlp {
        &self.classifier
    }
}

impl ActiveLearner for EcgLearner {
    fn pool(&mut self) -> CandidatePool {
        let (sev, unc) = stream_score_pool(&self.classifier, &self.scenario.pool, &self.runtime);
        let severities = self.unlabeled.iter().map(|&i| sev[i].clone()).collect();
        let uncertainties = self.unlabeled.iter().map(|&i| unc[i]).collect();
        CandidatePool::new(severities, uncertainties).expect("consistent pool")
    }

    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng) {
        for &i in &crate::claim_selection(&mut self.unlabeled, selection) {
            let p = &self.scenario.pool[i];
            self.labeled.push(p.features.clone(), p.true_class);
        }
        for _ in 0..self.epochs_per_round {
            self.classifier.train_epoch(&self.labeled, 16, rng);
        }
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_accuracy(&self.classifier, &self.scenario.test)
    }
}

/// The ECG weak-supervision experiment (Table 4, row 3): oscillation
/// corrections relabel blip windows with the surrounding rhythm and the
/// classifier fine-tunes on them.
pub fn ecg_weak_supervision(
    scenario: &EcgScenario,
    classifier: &Mlp,
    max_weak: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_accuracy(classifier, &scenario.test);
    let preds: Vec<usize> = scenario
        .pool
        .iter()
        .map(|p| classifier.predict(&p.features))
        .collect();
    let times: Vec<f64> = scenario.pool.iter().map(|p| p.time).collect();
    let weak = omg_domains::weak::ecg_weak_labels(&times, &preds, 30.0);

    let mut data = to_dataset(&scenario.train);
    for (i, class) in weak.into_iter().take(max_weak) {
        data.push_weighted(scenario.pool[i].features.clone(), class, 0.3);
    }
    // Fine-tune gently: the weak labels are noisy and the paper keeps
    // "the same training procedure" but from an already-trained model.
    let mut tuned = classifier.clone();
    tuned.set_lr(0.01);
    for _ in 0..8 {
        tuned.train_epoch(&data, 16, rng);
    }
    let after = evaluate_accuracy(&tuned, &scenario.test);
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> EcgScenario {
        EcgScenario::new(3, 150, 300, 300)
    }

    #[test]
    fn splits_are_disjoint_streams() {
        let s = tiny();
        assert_eq!(s.train.len(), 150);
        assert_ne!(s.train[0].features, s.pool[0].features);
    }

    #[test]
    fn pretrained_classifier_is_better_than_chance_but_imperfect() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let acc = evaluate_accuracy(&mlp, &s.test);
        assert!(acc > 40.0, "accuracy {acc} too low");
        assert!(acc < 95.0, "accuracy {acc} suspiciously high");
    }

    #[test]
    fn scoring_yields_one_severity_dim() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let (sev, unc) = score_pool(&mlp, &s.pool, &ThreadPool::new(2));
        assert_eq!(
            score_pool(&mlp, &s.pool, &ThreadPool::sequential()),
            (sev.clone(), unc.clone()),
            "parallel scoring must match sequential"
        );
        assert_eq!(sev.len(), 300);
        assert!(sev.iter().all(|r| r.len() == 1));
        assert!(unc.iter().all(|&u| (0.0..=1.0).contains(&u)));
        let fires: f64 = sev.iter().map(|r| r[0]).sum();
        assert!(
            fires > 0.0,
            "an imperfect classifier must oscillate somewhere"
        );
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let want = score_pool(&mlp, &s.pool, &ThreadPool::sequential());
        for threads in [1, 2, 8] {
            assert_eq!(
                stream_score_pool(&mlp, &s.pool, &ThreadPool::new(threads)),
                want,
                "streaming ECG scoring diverged at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ecg_window_at_rejects_out_of_range_center() {
        ecg_window_at(&[0.0, 10.0], &[0, 1], 2);
    }

    #[test]
    fn duplicate_selection_labels_each_point_once() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut learner = EcgLearner::new(s, mlp);
        let mut rng = StdRng::seed_from_u64(5);
        let before = learner.labeled.len();
        learner.label_and_train(&[4, 4, 9, 4], &mut rng);
        assert_eq!(learner.unlabeled.len(), 298);
        assert_eq!(learner.labeled.len(), before + 2, "each point labeled once");
    }

    #[test]
    fn learner_improves_with_labels() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut learner = EcgLearner::new(s, mlp);
        let before = learner.evaluate();
        let mut rng = StdRng::seed_from_u64(5);
        // Label 150 pool points spread across the stream (a contiguous
        // prefix would be one or two rhythm runs — a class-skewed batch
        // no selection strategy would ever produce).
        let selection: Vec<usize> = (0..300).step_by(2).collect();
        learner.label_and_train(&selection, &mut rng);
        let after = learner.evaluate();
        assert!(
            after > before - 2.0,
            "training on 150 extra labels should not hurt: {before} -> {after}"
        );
    }

    #[test]
    fn weak_supervision_runs_and_reports() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let (before, after) = ecg_weak_supervision(&s, &mlp, 500, &mut rng);
        assert!(before > 0.0 && after > 0.0);
    }
}
