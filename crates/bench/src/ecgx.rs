//! The ECG / atrial-fibrillation scenario (Figure 5; Table 4, row 3).

use omg_active::{ActiveLearner, CandidatePool};
use omg_core::runtime::ThreadPool;
use omg_core::Assertion;
use omg_domains::ecg::ecg_assertion;
use omg_domains::EcgWindow;
use omg_learn::uncertainty::least_confidence;
use omg_learn::{Dataset, Mlp, MlpConfig};
use omg_sim::derive_rng;
use omg_sim::ecg::{EcgConfig, EcgPoint, EcgWorld, ECG_CLASSES, ECG_DIM};
use rand::rngs::StdRng;

/// Predictions of context included on each side when checking the
/// assertion around one window.
pub const ECG_CONTEXT: usize = 3;

/// The fixed configuration of an ECG experiment: train/unlabeled/test
/// splits of a continuous recording stream, as in the paper's CINC17
/// setup (§5.1).
#[derive(Debug, Clone)]
pub struct EcgScenario {
    /// The small bootstrap training split.
    pub train: Vec<EcgPoint>,
    /// The unlabeled pool.
    pub pool: Vec<EcgPoint>,
    /// The held-out test split.
    pub test: Vec<EcgPoint>,
}

impl EcgScenario {
    /// Builds a scenario with the given split sizes.
    pub fn new(seed: u64, train: usize, pool: usize, test: usize) -> Self {
        // Separate worlds = separate recordings; splits are disjoint.
        // The train split draws from several recordings so that every
        // rhythm class appears in it (CINC17's train split spans
        // thousands of patients).
        let mut train_points = Vec::with_capacity(train);
        let recordings = 4usize;
        for r in 0..recordings {
            let mut w = EcgWorld::new(EcgConfig::default(), seed ^ (0x1111 * (r as u64 + 1)));
            let take = if r + 1 == recordings {
                train - train_points.len()
            } else {
                train / recordings
            };
            train_points.extend(w.windows(take));
        }
        let mut pool_world = EcgWorld::new(EcgConfig::default(), seed ^ 0xAAAA);
        let mut test_world = EcgWorld::new(EcgConfig::default(), seed ^ 0x5555);
        Self {
            train: train_points,
            pool: pool_world.windows(pool),
            test: test_world.windows(test),
        }
    }

    /// Experiment-standard sizes, proportioned like CINC17's 8,528
    /// records: small train, large unlabeled pool, held-out test.
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 600, 2000, 1000)
    }
}

/// Converts ECG points into an `omg-learn` dataset.
pub fn to_dataset(points: &[EcgPoint]) -> Dataset {
    let mut d = Dataset::new(ECG_DIM);
    for p in points {
        d.push(p.features.clone(), p.true_class);
    }
    d
}

/// Pretrains the rhythm classifier on the bootstrap split — the stand-in
/// for the paper's ResNet "trained until the loss plateaus" on the CINC17
/// train split (the small split size is what caps accuracy near the
/// paper's 70.7%).
pub fn pretrained_classifier(scenario: &EcgScenario, seed: u64) -> Mlp {
    let mut rng = derive_rng(seed, 0xEC61);
    let mut mlp = Mlp::new(
        MlpConfig {
            input_dim: ECG_DIM,
            hidden: vec![12],
            classes: ECG_CLASSES,
            lr: 0.05,
        },
        &mut rng,
    );
    let data = to_dataset(&scenario.train);
    for _ in 0..60 {
        mlp.train_epoch(&data, 16, &mut rng);
    }
    mlp
}

/// Accuracy (percent) of a classifier on a split.
pub fn evaluate_accuracy(mlp: &Mlp, points: &[EcgPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let hits = points
        .iter()
        .filter(|p| mlp.predict(&p.features) == p.true_class)
        .count();
    100.0 * hits as f64 / points.len() as f64
}

/// Per-point severity (the single ECG assertion) and uncertainty over a
/// prediction stream. The prediction pass runs once sequentially (each
/// window needs its neighbours' predictions); the window checks and
/// uncertainty scores then fan out across the runtime's workers.
pub fn score_pool(mlp: &Mlp, pool: &[EcgPoint], runtime: &ThreadPool) -> (Vec<Vec<f64>>, Vec<f64>) {
    let assertion = ecg_assertion();
    let preds: Vec<usize> = pool.iter().map(|p| mlp.predict(&p.features)).collect();
    let times: Vec<f64> = pool.iter().map(|p| p.time).collect();
    runtime
        .map_indexed(pool.len(), |i| {
            let lo = i.saturating_sub(ECG_CONTEXT);
            let hi = (i + ECG_CONTEXT + 1).min(pool.len());
            let window = EcgWindow::new(times[lo..hi].to_vec(), preds[lo..hi].to_vec(), i - lo);
            (
                vec![assertion.check(&window).value()],
                least_confidence(&mlp.predict_proba(&pool[i].features)),
            )
        })
        .into_iter()
        .unzip()
}

/// The ECG active learner of Figure 5.
pub struct EcgLearner {
    scenario: EcgScenario,
    classifier: Mlp,
    unlabeled: Vec<usize>,
    labeled: Dataset,
    epochs_per_round: usize,
    runtime: ThreadPool,
}

impl EcgLearner {
    /// Creates a learner around a pretrained classifier; the bootstrap
    /// split stays in the training set and continued training runs at a
    /// fine-tuning rate. Pools are scored on the harness-wide runtime
    /// (`--threads`).
    pub fn new(scenario: EcgScenario, mut classifier: Mlp) -> Self {
        classifier.set_lr(0.02);
        let labeled = to_dataset(&scenario.train);
        let n = scenario.pool.len();
        Self {
            scenario,
            classifier,
            unlabeled: (0..n).collect(),
            labeled,
            epochs_per_round: 15,
            runtime: crate::runtime(),
        }
    }

    /// Overrides the scoring runtime.
    pub fn with_runtime(mut self, runtime: ThreadPool) -> Self {
        self.runtime = runtime;
        self
    }

    /// The current classifier.
    pub fn classifier(&self) -> &Mlp {
        &self.classifier
    }
}

impl ActiveLearner for EcgLearner {
    fn pool(&mut self) -> CandidatePool {
        let (sev, unc) = score_pool(&self.classifier, &self.scenario.pool, &self.runtime);
        let severities = self.unlabeled.iter().map(|&i| sev[i].clone()).collect();
        let uncertainties = self.unlabeled.iter().map(|&i| unc[i]).collect();
        CandidatePool::new(severities, uncertainties).expect("consistent pool")
    }

    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng) {
        let mut chosen: Vec<usize> = selection.iter().map(|&p| self.unlabeled[p]).collect();
        chosen.sort_unstable();
        for &i in &chosen {
            let p = &self.scenario.pool[i];
            self.labeled.push(p.features.clone(), p.true_class);
        }
        self.unlabeled.retain(|i| !chosen.contains(i));
        for _ in 0..self.epochs_per_round {
            self.classifier.train_epoch(&self.labeled, 16, rng);
        }
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_accuracy(&self.classifier, &self.scenario.test)
    }
}

/// The ECG weak-supervision experiment (Table 4, row 3): oscillation
/// corrections relabel blip windows with the surrounding rhythm and the
/// classifier fine-tunes on them.
pub fn ecg_weak_supervision(
    scenario: &EcgScenario,
    classifier: &Mlp,
    max_weak: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_accuracy(classifier, &scenario.test);
    let preds: Vec<usize> = scenario
        .pool
        .iter()
        .map(|p| classifier.predict(&p.features))
        .collect();
    let times: Vec<f64> = scenario.pool.iter().map(|p| p.time).collect();
    let weak = omg_domains::weak::ecg_weak_labels(&times, &preds, 30.0);

    let mut data = to_dataset(&scenario.train);
    for (i, class) in weak.into_iter().take(max_weak) {
        data.push_weighted(scenario.pool[i].features.clone(), class, 0.3);
    }
    // Fine-tune gently: the weak labels are noisy and the paper keeps
    // "the same training procedure" but from an already-trained model.
    let mut tuned = classifier.clone();
    tuned.set_lr(0.01);
    for _ in 0..8 {
        tuned.train_epoch(&data, 16, rng);
    }
    let after = evaluate_accuracy(&tuned, &scenario.test);
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> EcgScenario {
        EcgScenario::new(3, 150, 300, 300)
    }

    #[test]
    fn splits_are_disjoint_streams() {
        let s = tiny();
        assert_eq!(s.train.len(), 150);
        assert_ne!(s.train[0].features, s.pool[0].features);
    }

    #[test]
    fn pretrained_classifier_is_better_than_chance_but_imperfect() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let acc = evaluate_accuracy(&mlp, &s.test);
        assert!(acc > 40.0, "accuracy {acc} too low");
        assert!(acc < 95.0, "accuracy {acc} suspiciously high");
    }

    #[test]
    fn scoring_yields_one_severity_dim() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let (sev, unc) = score_pool(&mlp, &s.pool, &ThreadPool::new(2));
        assert_eq!(
            score_pool(&mlp, &s.pool, &ThreadPool::sequential()),
            (sev.clone(), unc.clone()),
            "parallel scoring must match sequential"
        );
        assert_eq!(sev.len(), 300);
        assert!(sev.iter().all(|r| r.len() == 1));
        assert!(unc.iter().all(|&u| (0.0..=1.0).contains(&u)));
        let fires: f64 = sev.iter().map(|r| r[0]).sum();
        assert!(
            fires > 0.0,
            "an imperfect classifier must oscillate somewhere"
        );
    }

    #[test]
    fn learner_improves_with_labels() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut learner = EcgLearner::new(s, mlp);
        let before = learner.evaluate();
        let mut rng = StdRng::seed_from_u64(5);
        // Label 150 pool points spread across the stream (a contiguous
        // prefix would be one or two rhythm runs — a class-skewed batch
        // no selection strategy would ever produce).
        let selection: Vec<usize> = (0..300).step_by(2).collect();
        learner.label_and_train(&selection, &mut rng);
        let after = learner.evaluate();
        assert!(
            after > before - 2.0,
            "training on 150 extra labels should not hurt: {before} -> {after}"
        );
    }

    #[test]
    fn weak_supervision_runs_and_reports() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let (before, after) = ecg_weak_supervision(&s, &mlp, 500, &mut rng);
        assert!(before > 0.0 && after > 0.0);
    }
}
