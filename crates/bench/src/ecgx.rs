//! The ECG / atrial-fibrillation scenario (Figure 5; Table 4, row 3),
//! ported onto the generic [`Scenario`] engine.

use omg_core::consistency::ConsistencyWindow;
use omg_domains::{ecg_assertion_set, ecg_prepared_assertion_set, EcgPrepare, EcgWindow};
use omg_learn::uncertainty::least_confidence;
use omg_learn::{Dataset, Mlp, MlpConfig};
use omg_scenario::Scenario;
use omg_sim::derive_rng;
use omg_sim::ecg::{EcgConfig, EcgPoint, EcgWorld, ECG_CLASSES, ECG_DIM};
use rand::rngs::StdRng;

/// Predictions of context included on each side when checking the
/// assertion around one window.
pub const ECG_CONTEXT: usize = 3;

/// The fixed configuration of an ECG experiment: train/unlabeled/test
/// splits of a continuous recording stream, as in the paper's CINC17
/// setup (§5.1).
#[derive(Debug, Clone)]
pub struct EcgScenario {
    /// The small bootstrap training split.
    pub train: Vec<EcgPoint>,
    /// The unlabeled pool.
    pub pool: Vec<EcgPoint>,
    /// The held-out test split.
    pub test: Vec<EcgPoint>,
}

impl EcgScenario {
    /// Builds a scenario with the given split sizes.
    pub fn new(seed: u64, train: usize, pool: usize, test: usize) -> Self {
        // Separate worlds = separate recordings; splits are disjoint.
        // The train split draws from several recordings so that every
        // rhythm class appears in it (CINC17's train split spans
        // thousands of patients).
        let mut train_points = Vec::with_capacity(train);
        let recordings = 4usize;
        for r in 0..recordings {
            let mut w = EcgWorld::new(EcgConfig::default(), seed ^ (0x1111 * (r as u64 + 1)));
            let take = if r + 1 == recordings {
                train - train_points.len()
            } else {
                train / recordings
            };
            train_points.extend(w.windows(take));
        }
        let mut pool_world = EcgWorld::new(EcgConfig::default(), seed ^ 0xAAAA);
        let mut test_world = EcgWorld::new(EcgConfig::default(), seed ^ 0x5555);
        Self {
            train: train_points,
            pool: pool_world.windows(pool),
            test: test_world.windows(test),
        }
    }

    /// Experiment-standard sizes, proportioned like CINC17's 8,528
    /// records: small train, large unlabeled pool, held-out test.
    pub fn standard(seed: u64) -> Self {
        Self::new(seed, 600, 2000, 1000)
    }
}

/// One position of the ECG prediction stream: the classifier's output
/// and its least-confidence uncertainty for one recording window.
#[derive(Debug, Clone, Copy)]
pub struct EcgItem {
    /// Timestamp of the prediction, seconds.
    pub time: f64,
    /// Predicted rhythm class.
    pub pred: usize,
    /// Least-confidence uncertainty of the prediction.
    pub unc: f64,
}

/// Converts ECG points into an `omg-learn` dataset.
pub fn to_dataset(points: &[EcgPoint]) -> Dataset {
    let mut d = Dataset::new(ECG_DIM);
    for p in points {
        d.push(p.features.clone(), p.true_class);
    }
    d
}

/// Pretrains the rhythm classifier on the bootstrap split — the stand-in
/// for the paper's ResNet "trained until the loss plateaus" on the CINC17
/// train split (the small split size is what caps accuracy near the
/// paper's 70.7%).
pub fn pretrained_classifier(scenario: &EcgScenario, seed: u64) -> Mlp {
    let mut rng = derive_rng(seed, 0xEC61);
    let mut mlp = Mlp::new(
        MlpConfig {
            input_dim: ECG_DIM,
            hidden: vec![12],
            classes: ECG_CLASSES,
            lr: 0.05,
        },
        &mut rng,
    );
    let data = to_dataset(&scenario.train);
    for _ in 0..60 {
        mlp.train_epoch(&data, 16, &mut rng);
    }
    mlp
}

/// Accuracy (percent) of a classifier on a split.
pub fn evaluate_accuracy(mlp: &Mlp, points: &[EcgPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let hits = points
        .iter()
        .filter(|p| mlp.predict(&p.features) == p.true_class)
        .count();
    100.0 * hits as f64 / points.len() as f64
}

/// The ECG weak-supervision experiment (Table 4, row 3): oscillation
/// corrections relabel blip windows with the surrounding rhythm and the
/// classifier fine-tunes on them.
pub fn ecg_weak_supervision(
    scenario: &EcgScenario,
    classifier: &Mlp,
    max_weak: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_accuracy(classifier, &scenario.test);
    let preds: Vec<usize> = scenario
        .pool
        .iter()
        .map(|p| classifier.predict(&p.features))
        .collect();
    let times: Vec<f64> = scenario.pool.iter().map(|p| p.time).collect();
    let weak = omg_domains::weak::ecg_weak_labels(&times, &preds, 30.0);

    let mut data = to_dataset(&scenario.train);
    for (i, class) in weak.into_iter().take(max_weak) {
        data.push_weighted(scenario.pool[i].features.clone(), class, 0.3);
    }
    // Fine-tune gently: the weak labels are noisy and the paper keeps
    // "the same training procedure" but from an already-trained model.
    let mut tuned = classifier.clone();
    tuned.set_lr(0.01);
    for _ in 0..8 {
        tuned.train_epoch(&data, 16, rng);
    }
    let after = evaluate_accuracy(&tuned, &scenario.test);
    (before, after)
}

impl Scenario for EcgScenario {
    type Item = EcgItem;
    type Sample = EcgWindow;
    type Prep = ConsistencyWindow<usize>;
    type Model = Mlp;
    type Labels = Dataset;

    fn name(&self) -> &'static str {
        "ecg"
    }

    fn title(&self) -> &'static str {
        "ECG"
    }

    fn metric_unit(&self) -> &'static str {
        "% accuracy"
    }

    fn window_half(&self) -> usize {
        ECG_CONTEXT
    }

    fn pool_len(&self) -> usize {
        self.pool.len()
    }

    fn pretrained_model(&self, seed: u64) -> Mlp {
        pretrained_classifier(self, seed)
    }

    fn run_model(&self, model: &Mlp) -> Vec<EcgItem> {
        self.pool
            .iter()
            .map(|p| EcgItem {
                time: p.time,
                pred: model.predict(&p.features),
                unc: least_confidence(&model.predict_proba(&p.features)),
            })
            .collect()
    }

    fn assertion_set(&self) -> omg_core::AssertionSet<EcgWindow> {
        ecg_assertion_set()
    }

    fn prepared_set(&self) -> omg_core::AssertionSet<EcgWindow, ConsistencyWindow<usize>> {
        ecg_prepared_assertion_set()
    }

    fn preparer(
        &self,
    ) -> Box<dyn omg_core::stream::Prepare<EcgWindow, Prepared = ConsistencyWindow<usize>>> {
        Box::new(EcgPrepare)
    }

    fn make_sample(&self, items: &[EcgItem], center: usize) -> EcgWindow {
        EcgWindow::new(
            items.iter().map(|it| it.time).collect(),
            items.iter().map(|it| it.pred).collect(),
            center,
        )
    }

    fn uncertainty(&self, item: &EcgItem) -> f64 {
        item.unc
    }

    fn initial_labels(&self) -> Dataset {
        // The bootstrap split stays in the training set.
        to_dataset(&self.train)
    }

    fn label_into(&self, labels: &mut Dataset, pool_index: usize) {
        let p = &self.pool[pool_index];
        labels.push(p.features.clone(), p.true_class);
    }

    fn train(&self, model: &mut Mlp, labels: &Dataset, rng: &mut StdRng) {
        // Continued training runs at a fine-tuning rate.
        model.set_lr(0.02);
        for _ in 0..15 {
            model.train_epoch(labels, 16, rng);
        }
    }

    fn evaluate(&self, model: &Mlp) -> f64 {
        evaluate_accuracy(model, &self.test)
    }

    fn weak_supervision(&self, model: &Mlp, rng: &mut StdRng) -> Option<(f64, f64)> {
        Some(ecg_weak_supervision(self, model, 1000, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_active::ActiveLearner;
    use omg_core::runtime::ThreadPool;
    use omg_scenario::{score_scenario, stream_score_scenario, ScenarioLearner};
    use rand::SeedableRng;

    fn tiny() -> EcgScenario {
        EcgScenario::new(3, 150, 300, 300)
    }

    #[test]
    fn splits_are_disjoint_streams() {
        let s = tiny();
        assert_eq!(s.train.len(), 150);
        assert_ne!(s.train[0].features, s.pool[0].features);
    }

    #[test]
    fn pretrained_classifier_is_better_than_chance_but_imperfect() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let acc = evaluate_accuracy(&mlp, &s.test);
        assert!(acc > 40.0, "accuracy {acc} too low");
        assert!(acc < 95.0, "accuracy {acc} suspiciously high");
    }

    #[test]
    fn scoring_yields_one_severity_dim() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let items = s.run_model(&mlp);
        let set = s.assertion_set();
        let (sev, unc) = score_scenario(&s, &set, &items, &ThreadPool::exact(2));
        assert_eq!(
            score_scenario(&s, &set, &items, &ThreadPool::sequential()),
            (sev.clone(), unc.clone()),
            "parallel scoring must match sequential"
        );
        assert_eq!(sev.len(), 300);
        assert!(sev.iter_rows().all(|r| r.len() == 1));
        assert!(unc.iter().all(|&u| (0.0..=1.0).contains(&u)));
        let fires: f64 = sev.iter_rows().map(|r| r[0]).sum();
        assert!(
            fires > 0.0,
            "an imperfect classifier must oscillate somewhere"
        );
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let items = s.run_model(&mlp);
        let want = score_scenario(&s, &s.assertion_set(), &items, &ThreadPool::sequential());
        let prepared = s.prepared_set();
        let preparer = s.preparer();
        for threads in [1, 2, 8] {
            assert_eq!(
                stream_score_scenario(
                    &s,
                    &prepared,
                    &preparer,
                    &items,
                    &ThreadPool::exact(threads)
                ),
                want,
                "streaming ECG scoring diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn duplicate_selection_labels_each_point_once() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut learner = ScenarioLearner::new(s, mlp);
        let mut rng = StdRng::seed_from_u64(5);
        learner.label_and_train(&[4, 4, 9, 4], &mut rng);
        assert_eq!(learner.unlabeled_len(), 298, "each point claimed once");
    }

    #[test]
    fn learner_improves_with_labels() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut learner = ScenarioLearner::new(s, mlp);
        let before = learner.evaluate();
        let mut rng = StdRng::seed_from_u64(5);
        // Label 150 pool points spread across the stream (a contiguous
        // prefix would be one or two rhythm runs — a class-skewed batch
        // no selection strategy would ever produce).
        let selection: Vec<usize> = (0..300).step_by(2).collect();
        learner.label_and_train(&selection, &mut rng);
        let after = learner.evaluate();
        assert!(
            after > before - 2.0,
            "training on 150 extra labels should not hurt: {before} -> {after}"
        );
    }

    #[test]
    fn weak_supervision_runs_and_reports() {
        let s = tiny();
        let mlp = pretrained_classifier(&s, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let (before, after) = ecg_weak_supervision(&s, &mlp, 500, &mut rng);
        assert!(before > 0.0 && after > 0.0);
    }
}
