//! Lines-of-code accounting for Table 2.
//!
//! The paper counts the LOC of each assertion's main body and, separately,
//! the body plus the shared helper functions it uses ("we double counted
//! the helper functions when used between assertions"). The assertion
//! sources in `omg-domains` carry `// BEGIN ASSERTION` / `// END
//! ASSERTION` and `// BEGIN HELPER <name>` / `// END HELPER <name>`
//! markers; this module counts the non-blank, non-comment lines between
//! them.

/// LOC of one assertion, mirroring Table 2's two columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocEntry {
    /// Assertion name (Table 2 row).
    pub assertion: &'static str,
    /// Whether it is built on the consistency API (Table 2 groups
    /// consistency assertions above custom ones).
    pub consistency_api: bool,
    /// LOC of the assertion body.
    pub body: usize,
    /// LOC including the shared helpers it uses.
    pub with_helpers: usize,
}

const NEWS_SRC: &str = include_str!("../../domains/src/news.rs");
const ECG_SRC: &str = include_str!("../../domains/src/ecg.rs");
const FLICKER_SRC: &str = include_str!("../../domains/src/flicker.rs");
const APPEAR_SRC: &str = include_str!("../../domains/src/appear.rs");
const MULTIBOX_SRC: &str = include_str!("../../domains/src/multibox.rs");
const AGREE_SRC: &str = include_str!("../../domains/src/agree.rs");
const HELPERS_SRC: &str = include_str!("../../domains/src/helpers.rs");

/// Extracts the text between two marker lines (exclusive).
///
/// # Panics
///
/// Panics if either marker is missing — the markers are part of the
/// Table 2 contract.
fn between<'a>(src: &'a str, begin: &str, end: &str) -> &'a str {
    let start = src
        .find(begin)
        .unwrap_or_else(|| panic!("missing marker {begin:?}"));
    let after = start + begin.len();
    let stop = src[after..]
        .find(end)
        .unwrap_or_else(|| panic!("missing marker {end:?}"));
    &src[after..after + stop]
}

/// Counts non-blank, non-comment lines.
fn code_lines(block: &str) -> usize {
    block
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// LOC of a file's `ASSERTION` block.
fn assertion_loc(src: &str) -> usize {
    code_lines(between(src, "// BEGIN ASSERTION", "// END ASSERTION"))
}

/// LOC of a named helper block in the given source (helpers usually live
/// in `helpers.rs`, but domain-local helpers sit next to their
/// assertion).
fn helper_loc_in(src: &str, name: &str) -> usize {
    let begin = format!("// BEGIN HELPER {name}");
    let end = format!("// END HELPER {name}");
    code_lines(between(src, &begin, &end))
}

/// LOC of a named helper block in `helpers.rs`.
fn helper_loc(name: &str) -> usize {
    helper_loc_in(HELPERS_SRC, name)
}

/// The Table 2 rows: each assertion's body LOC and body+helpers LOC
/// (helpers double-counted across assertions, as in the paper).
pub fn table2_entries() -> Vec<LocEntry> {
    let track_helpers = helper_loc("tracked_box") + helper_loc("track_window");
    let rows = [
        (
            "news",
            true,
            assertion_loc(NEWS_SRC),
            helper_loc_in(NEWS_SRC, "scene_window"),
        ),
        ("ecg", true, assertion_loc(ECG_SRC), 0),
        ("flicker", true, assertion_loc(FLICKER_SRC), track_helpers),
        ("appear", true, assertion_loc(APPEAR_SRC), track_helpers),
        (
            "multibox",
            false,
            assertion_loc(MULTIBOX_SRC),
            helper_loc("overlap_triples"),
        ),
        (
            "agree",
            false,
            assertion_loc(AGREE_SRC),
            helper_loc("no_overlap"),
        ),
    ];
    rows.into_iter()
        .map(|(assertion, consistency_api, body, helpers)| LocEntry {
            assertion,
            consistency_api,
            body,
            with_helpers: body + helpers,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_assertions_are_counted() {
        let entries = table2_entries();
        let names: Vec<&str> = entries.iter().map(|e| e.assertion).collect();
        assert_eq!(
            names,
            vec!["news", "ecg", "flicker", "appear", "multibox", "agree"]
        );
    }

    #[test]
    fn bodies_stay_within_the_papers_bound() {
        // "The assertion main body could be written in under 25 LOC in
        // all cases" — our API is comparably terse; hold bodies to ~40
        // lines (Rust is more explicit than Python) and totals to the
        // paper's 60-line bound plus the same margin.
        for e in table2_entries() {
            assert!(
                e.body <= 45,
                "{} body too long: {} LOC",
                e.assertion,
                e.body
            );
            assert!(
                e.with_helpers <= 95,
                "{} with helpers too long: {} LOC",
                e.assertion,
                e.with_helpers
            );
            assert!(e.body > 0);
            assert!(e.with_helpers >= e.body);
        }
    }

    #[test]
    fn consistency_rows_are_grouped_first() {
        let entries = table2_entries();
        assert!(entries[0].consistency_api && entries[3].consistency_api);
        assert!(!entries[4].consistency_api && !entries[5].consistency_api);
    }

    #[test]
    fn code_line_counting_skips_comments_and_blanks() {
        let block = "\n// comment\n/// doc\nlet x = 1;\n\nlet y = 2;\n";
        assert_eq!(code_lines(block), 2);
    }

    #[test]
    #[should_panic(expected = "missing marker")]
    fn missing_marker_panics() {
        between("no markers here", "// BEGIN X", "// END X");
    }
}
