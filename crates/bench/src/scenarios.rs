//! The runtime **scenario registry**: every deployed use case, behind
//! the type-erased [`DynScenario`] face, in one list that binaries,
//! benches, and the conformance suite iterate.
//!
//! Registering a scenario here is the *last* step of adding a use case
//! (see README "Adding a scenario"): once listed, it is automatically
//! covered by the registry-driven stream==batch conformance suite, the
//! prepare-once probes, and `exp_throughput --stream`'s
//! `BENCH_stream_<name>.json` archive — no edits to any of them.

use omg_scenario::{DynScenario, Scenario, ScenarioHarness, ScenarioLearner};
use omg_service::{DynService, ServiceConfig, ServiceHarness};

/// Every registered scenario's name, in registry order — the cheap
/// (no worlds, no models) form of the registry that
/// `exp_throughput --check-stream-archive` and CI enforce the
/// `BENCH_stream_<name>.json` archive against. Must match
/// [`all_scenarios`]'s names exactly (a unit test pins this).
pub const SCENARIO_NAMES: [&str; 5] = ["video", "av", "ecg", "news", "highway"];

use crate::avx::AvScenario;
use crate::ecgx::EcgScenario;
use crate::highway::HighwayScenario;
use crate::newsx::NewsScenario;
use crate::video::VideoScenario;
use crate::{avx, ecgx, highway, video};

/// Scenes the AV world needs for roughly `size` samples (20 per scene).
fn av_scenes(size: usize) -> u64 {
    (size / 20).max(1) as u64
}

/// Scenes the news world monitors for a `size`-window benchmark budget
/// (scene checks are several times the per-window cost of the others).
fn news_scenes(size: usize) -> u64 {
    (size / 4).max(5) as u64
}

/// Every registered scenario at *bench/conformance* scale: worlds seeded
/// with `seed`, sized to roughly `size` stream positions each, models
/// pretrained once per process and shared (the conformance suite varies
/// the world per case, not the model — pretraining is the expensive
/// step).
pub fn all_scenarios(seed: u64, size: usize) -> Vec<Box<dyn DynScenario>> {
    let ecg = EcgScenario::new(seed, 40, size.max(8), 10);
    let ecg_model = ecgx::pretrained_classifier(&ecg, seed ^ 3);
    vec![
        ScenarioHarness::boxed(
            VideoScenario::night_street(seed, size, 1),
            video::shared_pretrained_detector().clone(),
        ),
        ScenarioHarness::boxed(
            AvScenario::new(seed, av_scenes(size), 1),
            avx::shared_pretrained_camera().clone(),
        ),
        ScenarioHarness::boxed(ecg, ecg_model),
        ScenarioHarness::boxed(NewsScenario::new(seed, news_scenes(size)), ()),
        ScenarioHarness::boxed(
            HighwayScenario::highway(seed, size, 1),
            highway::shared_pretrained_primary().clone(),
        ),
    ]
}

/// One registered scenario wrapped as a multi-tenant
/// [`omg_service::MonitorService`] at bench/conformance scale — same
/// worlds, sizes, and shared pretrained models as [`all_scenarios`], so
/// the service path is measured and conformance-tested against exactly
/// the scenarios the single-stream suite covers. `None` for an
/// unregistered name.
pub fn service_for(
    name: &str,
    seed: u64,
    size: usize,
    config: ServiceConfig,
) -> Option<Box<dyn DynService>> {
    Some(match name {
        "video" => ServiceHarness::boxed(
            VideoScenario::night_street(seed, size, 1),
            video::shared_pretrained_detector().clone(),
            config,
        ),
        "av" => ServiceHarness::boxed(
            AvScenario::new(seed, av_scenes(size), 1),
            avx::shared_pretrained_camera().clone(),
            config,
        ),
        "ecg" => {
            let ecg = EcgScenario::new(seed, 40, size.max(8), 10);
            let model = ecgx::pretrained_classifier(&ecg, seed ^ 3);
            ServiceHarness::boxed(ecg, model, config)
        }
        "news" => ServiceHarness::boxed(NewsScenario::new(seed, news_scenes(size)), (), config),
        "highway" => ServiceHarness::boxed(
            HighwayScenario::highway(seed, size, 1),
            highway::shared_pretrained_primary().clone(),
            config,
        ),
        _ => return None,
    })
}

/// Every registered scenario as a service (the [`service_for`] of each
/// [`SCENARIO_NAMES`] entry) — what the service conformance suite and
/// the `exp service` soak benchmark iterate.
pub fn all_services(seed: u64, size: usize, config: &ServiceConfig) -> Vec<Box<dyn DynService>> {
    SCENARIO_NAMES
        .into_iter()
        .map(|name| {
            service_for(name, seed, size, config.clone())
                .expect("SCENARIO_NAMES entries are registered")
        })
        .collect()
}

/// Boxes one scenario at experiment scale with the model its own
/// [`Scenario::pretrained_model`] hook builds for the trial seed.
fn standard_entry<Sc>(scenario: Sc, seed: u64) -> Box<dyn DynScenario>
where
    Sc: Scenario + Clone + 'static,
    Sc::Model: Clone,
{
    let model = scenario.pretrained_model(seed ^ 1);
    ScenarioHarness::boxed(scenario, model)
}

/// Every registered scenario at *experiment* scale: the standard sizes
/// the paper's tables/figures use, with models pretrained per trial seed
/// (`seed ^ 1`, matching the active-learning experiments) through each
/// scenario's own [`Scenario::pretrained_model`] hook.
pub fn standard_scenarios(seed: u64) -> Vec<Box<dyn DynScenario>> {
    vec![
        standard_entry(VideoScenario::standard(seed), seed),
        standard_entry(AvScenario::standard(seed), seed),
        standard_entry(EcgScenario::standard(seed), seed),
        standard_entry(NewsScenario::standard(seed), seed),
        standard_entry(HighwayScenario::standard(seed), seed),
    ]
}

/// Builds a [`ScenarioLearner`] scoring on the harness-wide runtime
/// (`--threads`) — the constructor the experiment modules use.
pub fn learner<Sc: Scenario>(scenario: Sc, model: Sc::Model) -> ScenarioLearner<Sc> {
    ScenarioLearner::new(scenario, model).with_runtime(crate::runtime())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_five_distinct_scenarios() {
        let scenarios = all_scenarios(3, 20);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        assert_eq!(
            names, SCENARIO_NAMES,
            "SCENARIO_NAMES must mirror the registry exactly"
        );
        for s in &scenarios {
            assert!(!s.is_empty(), "{} built an empty stream", s.name());
            assert!(
                !s.assertion_names().is_empty(),
                "{} has no assertions",
                s.name()
            );
        }
    }

    #[test]
    fn service_registry_mirrors_the_scenario_registry() {
        let services = all_services(3, 16, &ServiceConfig::default());
        let names: Vec<&str> = services.iter().map(|s| s.name()).collect();
        assert_eq!(names, SCENARIO_NAMES);
        assert!(service_for("nope", 3, 16, ServiceConfig::default()).is_none());
        for s in &services {
            assert!(s.stream_len() > 0, "{} built an empty stream", s.name());
            assert!(
                !s.assertion_names().is_empty(),
                "{} has no assertions",
                s.name()
            );
        }
    }

    #[test]
    fn only_the_news_scenario_is_monitoring_only() {
        for s in all_scenarios(5, 16) {
            let learner = s.learner(omg_scenario::ThreadPool::sequential());
            assert_eq!(
                learner.is_some(),
                s.name() != "news",
                "unexpected learner availability for {}",
                s.name()
            );
        }
    }
}
