//! Crowded-scene benchmark plumbing: the clutter-heavy windows behind
//! `exp_throughput --crowded` and `benchmarks/BENCH_crowded.json`.
//!
//! [`omg_sim::crowd::CrowdWorld`] generates frames with an exact box
//! count; this module packages them as the [`VideoWindow`]s the video
//! assertion set consumes, so the benchmark exercises the real
//! matcher-bound code paths (tracker association inside `flicker`,
//! duplicate triples inside `multibox`) at 100/300/1000 boxes per frame
//! under both matcher backends.

use omg_domains::{VideoFrame, VideoWindow};
use omg_sim::crowd::{CrowdConfig, CrowdWorld};

/// The boxes-per-frame ladder the crowded benchmark sweeps.
pub const CROWD_SIZES: [usize; 3] = [100, 300, 1000];

/// Frames per crowded window (center frame in the middle).
pub const CROWD_WINDOW_FRAMES: usize = 3;

/// Builds `n_windows` consecutive clutter-heavy windows with exactly
/// `boxes_per_frame` boxes on every frame, deterministic per seed.
pub fn crowd_windows(boxes_per_frame: usize, n_windows: usize, seed: u64) -> Vec<VideoWindow> {
    let mut world = CrowdWorld::new(CrowdConfig::clutter_heavy(boxes_per_frame), seed);
    let frames = world.steps(n_windows * CROWD_WINDOW_FRAMES);
    let fps = 10.0;
    frames
        .chunks(CROWD_WINDOW_FRAMES)
        .map(|chunk| {
            let vf: Vec<VideoFrame> = chunk
                .iter()
                .enumerate()
                .map(|(fi, dets)| {
                    // Window-local indices/times: each window stands alone,
                    // exactly like the sliding night-street windows.
                    VideoFrame {
                        index: fi as u64,
                        time: fi as f64 / fps,
                        dets: dets.clone(),
                    }
                })
                .collect();
            VideoWindow::new(vf, CROWD_WINDOW_FRAMES / 2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::FLICKER_T;
    use omg_domains::video_assertion_set;
    use omg_geom::matchers::{with_backend, MatchBackend};

    #[test]
    fn windows_have_exact_density() {
        let windows = crowd_windows(100, 4, 3);
        assert_eq!(windows.len(), 4);
        for w in &windows {
            assert_eq!(w.frames.len(), CROWD_WINDOW_FRAMES);
            for f in &w.frames {
                assert_eq!(f.dets.len(), 100);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(crowd_windows(50, 2, 9), crowd_windows(50, 2, 9));
        assert_ne!(crowd_windows(50, 2, 9), crowd_windows(50, 2, 10));
    }

    #[test]
    fn video_set_severities_match_across_backends() {
        // The full video assertion set over crowded windows — the exact
        // computation the benchmark times — must be bit-for-bit
        // identical under both matcher backends. Dense enough to clear
        // the INDEX_MIN cutoff so the grid path really runs.
        let windows = crowd_windows(200, 2, 3);
        let set = video_assertion_set(FLICKER_T);
        let score = || -> Vec<_> { windows.iter().map(|w| set.check_all(w)).collect() };
        let indexed = with_backend(MatchBackend::Indexed, score);
        let reference = with_backend(MatchBackend::Reference, score);
        assert_eq!(indexed, reference);
    }
}
