//! Table 1: tasks, models, and assertions used in the evaluation.

use omg_eval::table::Table;

/// Renders Table 1.
pub fn run() -> String {
    let mut t = Table::new(vec!["Task", "Model", "Assertions"]).with_title(
        "Table 1: tasks, models, and assertions (paper Table 1; models are the \
         simulated equivalents of DESIGN.md §2)",
    );
    t.row(vec![
        "TV news".into(),
        "Custom (simulated face/identity/gender/hair pipeline)".into(),
        "Consistency (news: identity, gender, hair per scene slot)".into(),
    ]);
    t.row(vec![
        "Object detection (video)".into(),
        "SimDetector (SSD stand-in, pretrained on still images)".into(),
        "multibox; consistency flicker + appear (T = 0.45 s)".into(),
    ]);
    t.row(vec![
        "Vehicle detection (AVs)".into(),
        "LidarSim (Second stand-in) + SimDetector camera".into(),
        "agree (3D-to-2D projection overlap); multibox".into(),
    ]);
    t.row(vec![
        "AF classification".into(),
        "MLP rhythm classifier (ResNet stand-in) on CINC17-like stream".into(),
        "Consistency within a 30 s window (ECG)".into(),
    ]);
    t.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn has_all_four_tasks() {
        let s = super::run();
        for task in ["TV news", "video", "AVs", "AF classification"] {
            assert!(s.contains(task), "missing {task}");
        }
    }
}
