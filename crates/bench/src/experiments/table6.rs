//! Table 6 (Appendix E): validating human labels with a tracking
//! consistency assertion.

use omg_domains::label_check::check_labels;
use omg_eval::table::{Align, Table};
use omg_sim::labeler::HumanLabeler;
use omg_sim::traffic::{TrafficConfig, TrafficWorld};

/// Runs the label-validation experiment: a Scale-like labeler annotates
/// several night-street clips; the tracker-based assertion flags
/// inconsistent labels. Renders Table 6.
pub fn run(seed: u64) -> String {
    // Several short clips (≈ the paper's 469 boxes in total): per-track
    // confusion is lumpy, so one clip's error count has huge variance.
    let mut total = 0usize;
    let mut errors = 0usize;
    let mut caught = 0usize;
    for clip in 0..3u64 {
        let mut world = TrafficWorld::new(TrafficConfig::night_street(), seed + 31 * clip);
        let frames = world.steps(60);
        let labeler = HumanLabeler::scale_like(seed ^ (0x5CA1E + clip));
        let labeled: Vec<_> = frames.iter().map(|f| labeler.label_frame(f)).collect();
        total += labeled.iter().map(Vec::len).sum::<usize>();
        errors += labeled
            .iter()
            .flat_map(|f| f.iter())
            .filter(|l| l.is_error())
            .count();
        let report = check_labels(&labeled);
        caught += report.caught_errors(&labeled);
    }

    let mut t = Table::new(vec!["Description", "Number"])
        .with_title(
            "Table 6: human-label validation on a night-street clip \
             (paper: 469 labels, 32 errors, 4 caught = 12.5%)",
        )
        .with_aligns(vec![Align::Left, Align::Right]);
    t.row(vec!["All labels".into(), total.to_string()]);
    t.row(vec!["Errors".into(), errors.to_string()]);
    t.row(vec!["Errors caught".into(), caught.to_string()]);
    let pct = if errors > 0 {
        100.0 * caught as f64 / errors as f64
    } else {
        0.0
    };
    format!(
        "{t}\nThe assertion catches {pct:.1}% of label errors: only *inconsistent* labels \
         are visible to it; a labeler who mislabels the same vehicle identically in every \
         frame is undetectable (the paper's central caveat).\n"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_counts() {
        let s = super::run(99);
        assert!(s.contains("All labels"));
        assert!(s.contains("Errors caught"));
    }
}
