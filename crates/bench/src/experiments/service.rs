//! `exp service` — the multi-tenant soak benchmark.
//!
//! Runs the night-street video scenario through
//! [`omg_service::MonitorService`] at a ladder of concurrent session
//! counts, measuring aggregate throughput (items/sec) and per-drain p99
//! latency while verifying the service's two load-bearing contracts on
//! every rung:
//!
//! * **conformance** — each session's delivered outputs are bit-for-bit
//!   the sequential single-stream run of the same items;
//! * **flat memory** — with retention configured, resident database
//!   rows never exceed `sessions x cap x assertions`, no matter how
//!   many items flow through.
//!
//! Results print as a table and land in `BENCH_service.json` under the
//! same committed top-level `benchmarks/` directory as the other archives (CI's
//! `exp_throughput --check-stream-archive` gate requires it).

use std::time::Instant;

use omg_core::runtime::ThreadPool;
use omg_scenario::Scores;
use omg_service::{ServiceConfig, SessionId};

use crate::scenarios::service_for;

/// Concurrent-session rungs the soak ladder climbs.
const SESSION_LADDER: [usize; 3] = [4, 16, 64];

/// Items each session replays per rung (a session replays the stream
/// prefix, wrapping if the ladder outgrows the precomputed stream).
const ITEMS_PER_SESSION: usize = 192;

/// Items offered to each session between drains.
const BURST: usize = 8;

/// Per-session queue capacity — small enough that the soak actually
/// exercises the `QueueFull` backpressure path.
const QUEUE_CAPACITY: usize = 16;

/// Per-session retained database rows (the flat-memory knob).
const RETAINED_SAMPLES: usize = 32;

/// One rung's measurements.
struct Rung {
    sessions: usize,
    items: usize,
    items_per_sec: f64,
    p99_drain_ms: f64,
    max_resident: usize,
    resident_bound: usize,
}

/// Runs one rung: `sessions` concurrent sessions round-robin over the
/// stream, drained on `workers` workers, with backpressure honored
/// (a full queue pauses that session's feed until the next drain).
fn run_rung(seed: u64, sessions: usize, workers: usize) -> Rung {
    let config = ServiceConfig::default()
        .with_queue_capacity(QUEUE_CAPACITY)
        .with_retention(RETAINED_SAMPLES);
    let svc = service_for("video", seed, ITEMS_PER_SESSION, config).expect("video is registered");
    let stream_len = svc.stream_len();
    let per_session = ITEMS_PER_SESSION.min(stream_len);
    let assertions = svc.assertion_names().len();
    let pool = ThreadPool::new(workers);

    let mut cursors = vec![0usize; sessions];
    let mut delivered: Vec<Scores> = vec![(omg_core::SeverityMatrix::new(), Vec::new()); sessions];
    let mut drain_ms: Vec<f64> = Vec::new();
    let mut max_resident = 0usize;
    let t0 = Instant::now();
    loop {
        let mut progressed = false;
        for (s, cursor) in cursors.iter_mut().enumerate() {
            let session = SessionId(s as u64);
            for _ in 0..BURST {
                if *cursor >= per_session {
                    break;
                }
                // Backpressure: a full queue defers the rest of this
                // session's burst to after the next drain.
                if svc.try_ingest_position(session, *cursor).is_err() {
                    break;
                }
                *cursor += 1;
                progressed = true;
            }
        }
        let d0 = Instant::now();
        svc.drain(&pool);
        drain_ms.push(d0.elapsed().as_secs_f64() * 1e3);
        max_resident = max_resident.max(svc.resident_records());
        for (s, out) in delivered.iter_mut().enumerate() {
            let (sev, unc) = svc.poll(SessionId(s as u64)).expect("open session");
            out.0.append(&sev);
            out.1.extend(unc);
        }
        if !progressed && svc.queued() == 0 {
            break;
        }
    }
    for (s, out) in delivered.iter_mut().enumerate() {
        let (sev, unc) = svc.finish(SessionId(s as u64)).expect("open session");
        out.0.append(&sev);
        out.1.extend(unc);
    }
    let secs = t0.elapsed().as_secs_f64();

    // Conformance: every session delivered exactly the sequential
    // single-stream run of its items. Sessions replay the same prefix,
    // so one reference covers them all.
    let want = svc.sequential_reference(0, per_session);
    for (s, out) in delivered.iter().enumerate() {
        assert_eq!(
            out, &want,
            "session {s} diverged from the sequential reference ({sessions} sessions)"
        );
    }
    // Flat memory: retention bounds resident rows at every sample point.
    let resident_bound = sessions * RETAINED_SAMPLES * assertions;
    assert!(
        max_resident <= resident_bound,
        "resident rows {max_resident} exceed the flat bound {resident_bound}"
    );

    let items = sessions * per_session;
    Rung {
        sessions,
        items,
        items_per_sec: items as f64 / secs,
        p99_drain_ms: omg_eval::stats::quantile(&drain_ms, 0.99),
        max_resident,
        resident_bound,
    }
}

/// Writes the soak results as `BENCH_service.json` next to the other
/// bench archives. A write failure is fatal: CI's archive gate requires
/// the file, so a missing archive must fail the run.
fn write_service_json(workers: usize, rungs: &[Rung]) {
    let rows: Vec<String> = rungs
        .iter()
        .map(|r| {
            format!(
                "    {{\"sessions\": {}, \"items\": {}, \"items_per_sec\": {:.1}, \
                 \"p99_drain_ms\": {:.3}, \"max_resident_records\": {}}}",
                r.sessions, r.items, r.items_per_sec, r.p99_drain_ms, r.max_resident
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"scenario\": \"video\",\n  \"workers\": {workers},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join("BENCH_service.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Runs the soak ladder and returns the rendered table.
pub fn run(seed: u64) -> String {
    let workers = crate::runtime().threads();
    let mut out = String::new();
    out.push_str(&format!(
        "== multi-tenant service soak: video scenario, {workers} workers ==\n\
         (per session: {ITEMS_PER_SESSION} items, queue capacity {QUEUE_CAPACITY}, \
         retention {RETAINED_SAMPLES} samples)\n\n"
    ));
    out.push_str(&format!(
        "{:>10} {:>10} {:>14} {:>14} {:>22}\n",
        "sessions", "items", "items/sec", "p99 drain ms", "resident rows (bound)"
    ));
    let mut rungs = Vec::new();
    for sessions in SESSION_LADDER {
        let rung = run_rung(seed, sessions, workers);
        out.push_str(&format!(
            "{:>10} {:>10} {:>14.0} {:>14.3} {:>15} ({:>5})\n",
            rung.sessions,
            rung.items,
            rung.items_per_sec,
            rung.p99_drain_ms,
            rung.max_resident,
            rung.resident_bound
        ));
        rungs.push(rung);
    }
    out.push_str(
        "\n(every session verified bit-for-bit against its sequential run; \
         resident rows stayed under the retention bound)\n",
    );
    write_service_json(workers, &rungs);
    out
}
