//! Figure 3: confidence percentile of the top-10 errors (by confidence)
//! each video assertion finds.
//!
//! The point of the figure: assertions catch errors the model is
//! *confident* about (94th percentile in the paper), which
//! uncertainty-based monitoring can never flag.

use omg_eval::stats::percentile_rank;
use omg_eval::table::{Align, Table};
use omg_scenario::{errors_by_assertion, Scenario};

use crate::video::{all_confidences, pretrained_detector, VideoScenario};

/// Renders Figure 3 as a rank → percentile table (one column per
/// assertion).
pub fn run(seed: u64) -> String {
    let scenario = VideoScenario::night_street(seed, 1500, 10);
    let items = scenario.run_model(&pretrained_detector(1));
    let set = scenario.assertion_set();
    let population = all_confidences(&items);

    let by_assertion = errors_by_assertion(&scenario, &set, &items);
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, mut errors) in by_assertion {
        errors.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        let percentiles: Vec<f64> = errors
            .iter()
            .take(10)
            .map(|e| percentile_rank(&population, e.confidence))
            .collect();
        columns.push((name, percentiles));
    }

    let mut t = Table::new(vec!["Rank", "appear", "multibox", "flicker"])
        .with_title(
            "Figure 3: percentile of confidence (among all detections) of the top-10 \
             errors by confidence caught per assertion (paper: up to the 94th percentile)",
        )
        .with_aligns(vec![Align::Right, Align::Right, Align::Right, Align::Right]);
    let col = |name: &str, rank: usize| -> String {
        columns
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, p)| p.get(rank))
            .map_or("-".to_string(), |v| format!("{v:.0}"))
    };
    for rank in 0..10 {
        t.row(vec![
            (rank + 1).to_string(),
            col("appear", rank),
            col("multibox", rank),
            col("flicker", rank),
        ]);
    }
    let top: Vec<f64> = columns
        .iter()
        .filter_map(|(_, p)| p.first().copied())
        .collect();
    let max_top = top.iter().cloned().fold(0.0f64, omg_core::float::fmax);
    format!(
        "{t}\nHighest-confidence caught error sits at the {max_top:.0}th percentile \
         of all detection confidences — invisible to uncertainty-based monitoring.\n"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn finds_high_confidence_errors() {
        let s = super::run(77);
        assert!(s.contains("Rank"));
        assert!(s.contains("percentile"));
    }

    #[test]
    fn report_is_identical_across_runs() {
        // The sort and the top-percentile fold are total-order based:
        // the rendered figure must be byte-identical run to run.
        assert_eq!(super::run(77), super::run(77));
    }
}
