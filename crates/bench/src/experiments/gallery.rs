//! Qualitative error gallery (Figures 1, 6, 7, 8): concrete caught errors
//! rendered as text.

use omg_domains::video_assertion_set;
use omg_sim::detector::Provenance;
use omg_sim::news::{NewsConfig, NewsWorld};

use crate::video::{detect_all, pretrained_detector, window_at, VideoScenario, FLICKER_T};

/// Renders a few caught errors per error class.
pub fn run(seed: u64) -> String {
    let mut out = String::new();
    let scenario = VideoScenario::night_street(seed, 600, 10);
    let detector = pretrained_detector(1);
    let dets = detect_all(&detector, &scenario.pool_frames);
    let set = video_assertion_set(FLICKER_T);

    // Figure 1: a flicker — a vehicle detected, missed, detected.
    'flicker: for center in 1..scenario.pool_frames.len() - 1 {
        let window = window_at(&scenario.pool_frames, &dets, center);
        let outcomes = set.check_all(&window);
        if !outcomes[1].1.fired() {
            continue;
        }
        let detected = |f: usize, track: u64| {
            dets[f].iter().any(|d| {
                matches!(d.provenance, Provenance::Object { track_id, .. } if track_id == track)
            })
        };
        for s in scenario.pool_frames[center]
            .signals
            .iter()
            .filter(|s| !s.is_clutter())
        {
            if !detected(center, s.track_id)
                && detected(center - 1, s.track_id)
                && detected(center + 1, s.track_id)
            {
                out.push_str(&format!(
                    "Figure 1 (flicker): vehicle track#{} at frames {}..={}\n  frame {}: DETECTED\n  frame {}: MISSED   <- assertion fires; correction interpolates box {:?}\n  frame {}: DETECTED\n\n",
                    s.track_id,
                    center - 1,
                    center + 1,
                    center - 1,
                    center,
                    (s.bbox.x1().round(), s.bbox.y1().round(), s.bbox.x2().round(), s.bbox.y2().round()),
                    center + 1,
                ));
                break 'flicker;
            }
        }
    }

    // Figure 7: a multibox cluster.
    'multibox: for (f, frame_dets) in dets.iter().enumerate() {
        let dups: Vec<_> = frame_dets
            .iter()
            .filter(|d| matches!(d.provenance, Provenance::Duplicate { .. }))
            .collect();
        if dups.len() >= 2 {
            out.push_str(&format!(
                "Figure 7 (multibox): frame {f} has {} boxes on one vehicle:\n",
                dups.len() + 1
            ));
            for d in frame_dets {
                if d.track_id() == dups[0].track_id() {
                    let kind = match d.provenance {
                        Provenance::Duplicate { .. } => "DUPLICATE",
                        _ => "real",
                    };
                    out.push_str(&format!(
                        "  box ({:>4}, {:>4})-({:>4}, {:>4}) conf {:.2} [{kind}]\n",
                        d.scored.bbox.x1().round(),
                        d.scored.bbox.y1().round(),
                        d.scored.bbox.x2().round(),
                        d.scored.bbox.y2().round(),
                        d.scored.score,
                    ));
                }
            }
            out.push('\n');
            break 'multibox;
        }
    }

    // Figure 6: a within-scene identity swap in TV news.
    let news = NewsWorld::new(NewsConfig::default(), seed);
    'news: for scene in news.scenes(0..300) {
        for w in scene.faces.windows(3) {
            if w[0].slot == w[1].slot
                && w[1].slot == w[2].slot
                && w[0].identity == w[2].identity
                && w[0].identity != w[1].identity
            {
                out.push_str(&format!(
                    "Figure 6 (news identity swap): scene {}, slot {}\n  t={:>5.1}s identity #{}\n  t={:>5.1}s identity #{}   <- inconsistent attribute; majority-vote correction restores #{}\n  t={:>5.1}s identity #{}\n\n",
                    scene.scene, w[0].slot,
                    w[0].time, w[0].identity,
                    w[1].time, w[1].identity, w[0].identity,
                    w[2].time, w[2].identity,
                ));
                break 'news;
            }
        }
    }

    if out.is_empty() {
        out.push_str("(no qualitative examples found at this seed)\n");
    }
    format!("Qualitative error gallery (Figures 1, 6, 7)\n\n{out}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn gallery_finds_examples() {
        let s = super::run(5);
        assert!(s.contains("flicker") || s.contains("multibox") || s.contains("identity"));
    }
}
