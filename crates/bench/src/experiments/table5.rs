//! Table 5 (Appendix B): the assertion-class taxonomy.

use omg_core::taxonomy::taxonomy;
use omg_eval::table::Table;

/// Renders Table 5.
pub fn run() -> String {
    let mut t = Table::new(vec![
        "Assertion class",
        "Sub-class",
        "Description",
        "Examples",
    ])
    .with_title("Table 5: classes of model assertions (Appendix B)");
    for e in taxonomy() {
        t.row(vec![
            e.class.name().to_string(),
            e.subclass.name().to_string(),
            e.description.to_string(),
            e.examples.join("; "),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_nine_rows() {
        let s = super::run();
        assert!(s.contains("Multi-modal"));
        assert!(s.contains("Schema validation"));
        assert_eq!(s.matches('\n').count(), 2 + 9 + 1); // title + header + sep + 9 rows
    }
}
