//! Figure 5: active learning for ECG with a single assertion.

use omg_active::SelectionStrategy;
use omg_active::{run_rounds, BalStrategy, FallbackPolicy, RandomStrategy, UncertaintyStrategy};
use omg_eval::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::trial_seeds;
use crate::scenarios::learner as scenario_learner;
use crate::{ecgx, summarize_series};

/// Figure 5 compares only random, uncertainty, and BAL ("due to the
/// limited data quantities for the ECG dataset, we were unable to deploy
/// more than one assertion" — uniform-MA degenerates to BAL's round 0).
fn strategies() -> Vec<(&'static str, Box<dyn SelectionStrategy>)> {
    vec![
        ("Random", Box::new(RandomStrategy)),
        ("Uncertainty", Box::new(UncertaintyStrategy)),
        (
            "BAL",
            Box::new(BalStrategy::new(FallbackPolicy::Uncertainty)),
        ),
    ]
}

/// Runs the ECG active-learning experiment: `rounds` rounds × `budget`
/// windows, averaged over `trials` trials (the paper runs 8 trials of
/// 5 rounds × 100 examples).
pub fn run(trials: usize, rounds: usize, budget: usize) -> String {
    let mut series = Vec::new();
    for (name, mut strategy) in strategies() {
        let mut per_trial = Vec::new();
        for &seed in &trial_seeds(trials) {
            strategy.reset();
            let scenario = ecgx::EcgScenario::standard(seed);
            let classifier = ecgx::pretrained_classifier(&scenario, seed ^ 1);
            let mut learner = scenario_learner(scenario, classifier);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD4);
            let records = run_rounds(&mut learner, strategy.as_mut(), rounds, budget, &mut rng);
            per_trial.push(records.into_iter().map(|r| r.metric).collect());
        }
        series.push(summarize_series(name, &per_trial));
    }
    let mut headers = vec!["Strategy".to_string()];
    for r in 1..=rounds {
        headers.push(format!("Round {r}"));
    }
    let mut t = Table::new(headers).with_title(format!(
        "Figure 5: ECG active learning with a single assertion, {budget} windows/round \
         (accuracy%, mean ± s.e. over {trials} trials)"
    ));
    for s in &series {
        let mut row = vec![s.label.clone()];
        for r in 0..rounds {
            row.push(format!("{:.1}±{:.1}", s.mean[r], s.stderr[r]));
        }
        t.row(row);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_three_strategies() {
        let s = super::run(1, 2, 40);
        assert!(s.contains("Random") && s.contains("Uncertainty") && s.contains("BAL"));
    }
}
