//! Table 2: lines of code per assertion.

use omg_eval::table::{Align, Table};

use crate::loc::table2_entries;

/// Renders Table 2.
pub fn run() -> String {
    let mut t = Table::new(vec!["Assertion", "LOC (no helpers)", "LOC (inc. helpers)"])
        .with_title(
            "Table 2: lines of code per assertion (paper: body <= 25, with helpers <= 60; \
             Rust is more explicit than Python, so bounds scale accordingly). \
             Consistency-API assertions above the rule, custom below.",
        )
        .with_aligns(vec![Align::Left, Align::Right, Align::Right]);
    for e in table2_entries() {
        t.row(vec![
            e.assertion.to_string(),
            e.body.to_string(),
            e.with_helpers.to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_assertions() {
        let s = super::run();
        for a in ["news", "ecg", "flicker", "appear", "multibox", "agree"] {
            assert!(s.contains(a), "missing {a}");
        }
    }
}
