//! Table 4: weak supervision — pretrained vs. weakly supervised model
//! quality, with no human labels.
//!
//! Registry-driven: every registered scenario with a weak-supervision
//! rule contributes a row (monitoring-only scenarios and scenarios
//! without a rule are skipped), so a new scenario that defines
//! [`omg_scenario::Scenario::weak_supervision`] appears here with no
//! edits to this module.

use omg_eval::stats::mean;
use omg_eval::table::{Align, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::trial_seeds;
use crate::scenarios::standard_scenarios;

/// Runs every registered weak-supervision rule over `trials` trials and
/// renders Table 4.
pub fn run(trials: usize) -> String {
    // label -> (before, after) samples across trials, in registry order.
    let mut rows: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for &seed in &trial_seeds(trials) {
        for scenario in standard_scenarios(seed) {
            // Derive the fine-tuning rng from the scenario's *stable
            // name*, not its registry position, so reordering or
            // inserting scenarios never shifts another row's numbers.
            let salt = scenario
                .name()
                .bytes()
                .fold(0xE5u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
            let mut rng = StdRng::seed_from_u64(seed ^ salt);
            let Some((before, after)) = scenario.weak_supervision(&mut rng) else {
                continue;
            };
            let label = format!("{} ({})", scenario.title(), scenario.metric_unit());
            if let Some(row) = rows.iter_mut().find(|(l, _, _)| *l == label) {
                row.1.push(before);
                row.2.push(after);
            } else {
                rows.push((label, vec![before], vec![after]));
            }
        }
    }

    let mut t = Table::new(vec![
        "Domain",
        "Pretrained",
        "Weakly supervised",
        "Relative change",
    ])
    .with_title(format!(
        "Table 4: weak supervision with no human labels (mean over {trials} trials; \
         paper: video 34.4->49.9 mAP, AVs 10.6->14.1 mAP, ECG 70.7->72.1%)"
    ))
    .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    for (domain, before_samples, after_samples) in rows {
        let before = mean(&before_samples);
        let after = mean(&after_samples);
        let rel = 100.0 * (after - before) / before.max(1e-9);
        t.row(vec![
            domain,
            format!("{before:.1}"),
            format!("{after:.1}"),
            format!("{rel:+.1}%"),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_three_domains() {
        let s = super::run(1);
        assert!(s.contains("Video analytics"));
        assert!(s.contains("AVs"));
        assert!(s.contains("ECG"));
    }
}
