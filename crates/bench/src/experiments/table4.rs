//! Table 4: weak supervision — pretrained vs. weakly supervised model
//! quality, with no human labels.

use omg_eval::stats::mean;
use omg_eval::table::{Align, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::trial_seeds;
use crate::{avx, ecgx, video};

/// Runs the three weak-supervision experiments over `trials` trials and
/// renders Table 4.
pub fn run(trials: usize) -> String {
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    let mut before_v = Vec::new();
    let mut after_v = Vec::new();
    for &seed in &trial_seeds(trials) {
        let scenario = video::VideoScenario::standard(seed);
        let detector = video::pretrained_detector(seed ^ 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE5);
        let (b, a) = video::video_weak_supervision(&scenario, &detector, 6, &mut rng);
        before_v.push(b);
        after_v.push(a);
    }
    rows.push((
        "Video analytics (mAP)".into(),
        mean(&before_v),
        mean(&after_v),
    ));

    let mut before_av = Vec::new();
    let mut after_av = Vec::new();
    for &seed in &trial_seeds(trials) {
        let scenario = avx::AvScenario::standard(seed);
        let detector = avx::pretrained_camera(seed ^ 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF6);
        let (b, a) = avx::av_weak_supervision(&scenario, &detector, 2, &mut rng);
        before_av.push(b);
        after_av.push(a);
    }
    rows.push(("AVs (mAP)".into(), mean(&before_av), mean(&after_av)));

    let mut before_e = Vec::new();
    let mut after_e = Vec::new();
    for &seed in &trial_seeds(trials) {
        let scenario = ecgx::EcgScenario::standard(seed);
        let classifier = ecgx::pretrained_classifier(&scenario, seed ^ 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA7);
        let (b, a) = ecgx::ecg_weak_supervision(&scenario, &classifier, 1000, &mut rng);
        before_e.push(b);
        after_e.push(a);
    }
    rows.push(("ECG (% accuracy)".into(), mean(&before_e), mean(&after_e)));

    let mut t = Table::new(vec![
        "Domain",
        "Pretrained",
        "Weakly supervised",
        "Relative change",
    ])
    .with_title(format!(
        "Table 4: weak supervision with no human labels (mean over {trials} trials; \
         paper: video 34.4->49.9 mAP, AVs 10.6->14.1 mAP, ECG 70.7->72.1%)"
    ))
    .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    for (domain, before, after) in rows {
        let rel = 100.0 * (after - before) / before.max(1e-9);
        t.row(vec![
            domain,
            format!("{before:.1}"),
            format!("{after:.1}"),
            format!("{rel:+.1}%"),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_three_domains() {
        let s = super::run(1);
        assert!(s.contains("Video analytics"));
        assert!(s.contains("AVs"));
        assert!(s.contains("ECG"));
    }
}
