//! Figures 4a/4b (and 9a/9b): active learning on night-street and the AV
//! world with random, uncertainty, uniform-MA, and BAL selection.

use omg_active::{
    run_rounds, BalStrategy, FallbackPolicy, RandomStrategy, SelectionStrategy,
    UncertaintyStrategy, UniformAssertionStrategy,
};
use omg_eval::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::trial_seeds;
use crate::scenarios::learner as scenario_learner;
use crate::{avx, summarize_series, video, SeriesSummary};

/// The four strategies of §5.4, in the paper's legend order.
pub fn strategies() -> Vec<(&'static str, Box<dyn SelectionStrategy>)> {
    vec![
        ("Random", Box::new(RandomStrategy)),
        ("Uncertainty", Box::new(UncertaintyStrategy)),
        ("Uniform MA", Box::new(UniformAssertionStrategy)),
        (
            "BAL",
            Box::new(BalStrategy::new(FallbackPolicy::Uncertainty)),
        ),
    ]
}

fn render(
    title: &str,
    unit: &str,
    rounds: usize,
    series: &[SeriesSummary],
    all_rounds: bool,
) -> String {
    let first_shown = if all_rounds { 1 } else { 2 };
    let mut headers = vec!["Strategy".to_string()];
    for r in first_shown..=rounds {
        headers.push(format!("Round {r}"));
    }
    let mut t = Table::new(headers).with_title(format!("{title} ({unit}, mean ± s.e.)"));
    for s in series {
        let mut row = vec![s.label.clone()];
        for r in first_shown..=rounds {
            row.push(format!("{:.1}±{:.1}", s.mean[r - 1], s.stderr[r - 1]));
        }
        t.row(row);
    }
    t.to_string()
}

/// Runs the night-street experiment: `rounds` rounds × `budget` frames,
/// averaged over `trials` trials. `all_rounds` renders rounds 1..N
/// (Figure 9a); otherwise rounds 2..N (Figure 4a, "the first round is
/// required for calibration").
pub fn run_video(trials: usize, rounds: usize, budget: usize, all_rounds: bool) -> String {
    let mut series = Vec::new();
    for (name, mut strategy) in strategies() {
        let mut per_trial = Vec::new();
        for &seed in &trial_seeds(trials) {
            strategy.reset();
            let scenario = video::VideoScenario::standard(seed);
            let mut learner = scenario_learner(scenario, video::pretrained_detector(seed ^ 1));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA1);
            let records = run_rounds(&mut learner, strategy.as_mut(), rounds, budget, &mut rng);
            per_trial.push(records.into_iter().map(|r| r.metric).collect());
        }
        series.push(summarize_series(name, &per_trial));
    }
    let fig = if all_rounds { "Figure 9a" } else { "Figure 4a" };
    render(
        &format!("{fig}: active learning for night-street, {budget} frames/round"),
        "mAP%",
        rounds,
        &series,
        all_rounds,
    )
}

/// Runs the AV experiment (Figure 4b / 9b).
pub fn run_av(trials: usize, rounds: usize, budget: usize, all_rounds: bool) -> String {
    let mut series = Vec::new();
    for (name, mut strategy) in strategies() {
        let mut per_trial = Vec::new();
        for &seed in &trial_seeds(trials) {
            strategy.reset();
            let scenario = avx::AvScenario::standard(seed);
            let mut learner = scenario_learner(scenario, avx::pretrained_camera(seed ^ 1));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB2);
            let records = run_rounds(&mut learner, strategy.as_mut(), rounds, budget, &mut rng);
            per_trial.push(records.into_iter().map(|r| r.metric).collect());
        }
        series.push(summarize_series(name, &per_trial));
    }
    let fig = if all_rounds { "Figure 9b" } else { "Figure 4b" };
    render(
        &format!("{fig}: active learning for the AV world, {budget} samples/round"),
        "mAP%",
        rounds,
        &series,
        all_rounds,
    )
}

/// The paper's headline label-efficiency claim: labels needed by BAL vs
/// random sampling to reach a fixed mAP target.
pub fn label_savings(trials: usize, rounds: usize, budget: usize, target: f64) -> String {
    let needed = |strategy: &mut dyn SelectionStrategy| -> Vec<f64> {
        let mut out = Vec::new();
        for &seed in &trial_seeds(trials) {
            strategy.reset();
            let scenario = video::VideoScenario::standard(seed);
            let mut learner = scenario_learner(scenario, video::pretrained_detector(seed ^ 1));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC3);
            let records = run_rounds(&mut learner, strategy, rounds, budget, &mut rng);
            let labels = records
                .iter()
                .find(|r| r.metric >= target)
                .map_or((rounds * budget) as f64, |r| (r.round * budget) as f64);
            out.push(labels);
        }
        out
    };
    let random = omg_eval::stats::mean(&needed(&mut RandomStrategy));
    let bal = omg_eval::stats::mean(&needed(&mut BalStrategy::new(FallbackPolicy::Uncertainty)));
    let saving = 100.0 * (random - bal) / random.max(1.0);
    format!(
        "Label efficiency at the {target:.0} mAP% crossover: random needs ~{random:.0} labels, BAL ~{bal:.0} \
         ({saving:.0}% fewer; paper reports 40% fewer at its 62 mAP target).\n"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn video_experiment_renders() {
        // One tiny trial keeps the test fast; the real binary uses more.
        let s = super::run_video(1, 2, 20, true);
        assert!(s.contains("BAL") && s.contains("Random"));
        assert!(s.contains("Round 1") && s.contains("Round 2"));
    }
}
