//! Table 3: precision of the deployed assertions on 50 sampled triggers.
//!
//! For each assertion we sample 50 flagged samples and manually check —
//! here: check against simulator ground truth — "whether that data point
//! had an incorrect output from the ML model" (§5.2). For consistency
//! assertions the paper reports two precisions: counting errors in the
//! identification function *and* the model outputs (an identifier mistake
//! still means the flag surfaced an error), and counting model-output
//! errors only.

use omg_core::AssertionSet;
use omg_domains::helpers::track_window;
use omg_domains::{av_assertion_set, video_assertion_set, VideoWindow};
use omg_eval::stats::Proportion;
use omg_eval::table::{Align, Table};
use omg_sim::detector::{Detection, Provenance};
use omg_sim::traffic::GtFrame;

use omg_scenario::{score_scenario, Scenario};

use crate::video::{detect_all, pretrained_detector, window_at, VideoScenario, FLICKER_T};
use crate::{avx, ecgx, newsx};

/// Takes up to `k` evenly spaced elements.
fn sample_up_to<T: Copy>(xs: &[T], k: usize) -> Vec<T> {
    if xs.len() <= k {
        return xs.to_vec();
    }
    (0..k).map(|i| xs[i * xs.len() / k]).collect()
}

/// Whether any *model output* in the window is wrong: an erroneous
/// detection, or a ground-truth object missed at an interior frame while
/// detected on both neighbours (a flicker miss).
fn window_has_output_error(frames: &[GtFrame], dets: &[Vec<Detection>], center: usize) -> bool {
    let lo = center.saturating_sub(crate::video::WINDOW_HALF);
    let hi = (center + crate::video::WINDOW_HALF + 1).min(frames.len());
    for f in lo..hi {
        if dets[f].iter().any(Detection::is_error) {
            return true;
        }
        if f > 0 && f + 1 < frames.len() {
            let detected = |fi: usize, track: u64| {
                dets[fi].iter().any(|d| {
                    matches!(d.provenance, Provenance::Object { track_id, .. } if track_id == track)
                })
            };
            for s in frames[f].signals.iter().filter(|s| !s.is_clutter()) {
                if !detected(f, s.track_id)
                    && detected(f - 1, s.track_id)
                    && detected(f + 1, s.track_id)
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether the tracker's identification made a mistake in the window: a
/// tracker track whose observations come from more than one underlying
/// provenance source.
fn window_has_identifier_error(frames: &[GtFrame], dets: &[Vec<Detection>], center: usize) -> bool {
    let window = window_at(frames, dets, center);
    let tracked = track_window(&window);
    let lo = center.saturating_sub(crate::video::WINDOW_HALF);
    // Map tracker track -> set of provenance track ids.
    let mut sources: std::collections::HashMap<u64, Vec<u64>> = Default::default();
    for ti in 0..tracked.len() {
        for (oi, tb) in tracked.outputs_at(ti).iter().enumerate() {
            let det = &dets[lo + ti][oi];
            sources.entry(tb.track).or_default().push(det.track_id());
        }
    }
    sources.values_mut().any(|v| {
        v.sort_unstable();
        v.dedup();
        v.len() > 1
    })
}

struct Row {
    assertion: &'static str,
    consistency: bool,
    id_and_output: Option<Proportion>,
    output_only: Proportion,
}

fn video_rows(seed: u64) -> Vec<Row> {
    let scenario = VideoScenario::night_street(seed, 900, 10);
    let detector = pretrained_detector(1);
    let dets = detect_all(&detector, &scenario.pool_frames);
    let set: AssertionSet<VideoWindow> = video_assertion_set(FLICKER_T);
    // Flagged window centers per assertion.
    let mut flagged: Vec<Vec<usize>> = vec![Vec::new(); set.len()];
    for center in 0..scenario.pool_frames.len() {
        let window = window_at(&scenario.pool_frames, &dets, center);
        for (aid, sev) in set.check_all(&window) {
            if sev.fired() {
                flagged[aid.0].push(center);
            }
        }
    }
    let names = ["multibox", "flicker", "appear"];
    let consistency = [false, true, true];
    names
        .iter()
        .zip(consistency)
        .enumerate()
        .map(|(m, (&assertion, consistency))| {
            let sampled = sample_up_to(&flagged[m], 50);
            let output_only = omg_eval::stats::proportion(&sampled, |&c| {
                window_has_output_error(&scenario.pool_frames, &dets, c)
            });
            let id_and_output = consistency.then(|| {
                omg_eval::stats::proportion(&sampled, |&c| {
                    window_has_output_error(&scenario.pool_frames, &dets, c)
                        || window_has_identifier_error(&scenario.pool_frames, &dets, c)
                })
            });
            Row {
                assertion,
                consistency,
                id_and_output,
                output_only,
            }
        })
        .collect()
}

fn av_agree_row(seed: u64) -> Row {
    let scenario = avx::AvScenario::new(seed, 25, 1);
    let detector = avx::pretrained_camera(1);
    let dets = avx::detect_all(&detector, &scenario.pool);
    let set = av_assertion_set();
    let mut flagged = Vec::new();
    for (i, (sample, d)) in scenario.pool.iter().zip(&dets).enumerate() {
        let frame = avx::av_frame(sample, d);
        let outcomes = set.check_all(&frame);
        if outcomes[0].1.fired() {
            flagged.push(i);
        }
    }
    let sampled = sample_up_to(&flagged, 50);
    let output_only = omg_eval::stats::proportion(&sampled, |&i| {
        let sample = &scenario.pool[i];
        let d = &dets[i];
        // A real model error: an erroneous camera detection, a camera
        // miss of a ground-truth vehicle, or a LIDAR ghost.
        let camera_error = d.iter().any(Detection::is_error);
        let detected_tracks: Vec<u64> = d
            .iter()
            .filter_map(|x| match x.provenance {
                Provenance::Object { track_id, .. } => Some(track_id),
                _ => None,
            })
            .collect();
        let camera_miss = sample
            .signals
            .iter()
            .filter(|s| !s.is_clutter())
            .any(|s| !detected_tracks.contains(&s.track_id));
        let lidar_ghost = sample.lidar.iter().any(|l| l.source_track.is_none());
        camera_error || camera_miss || lidar_ghost
    });
    Row {
        assertion: "agree",
        consistency: false,
        id_and_output: None,
        output_only,
    }
}

fn ecg_row(seed: u64) -> Row {
    let scenario = ecgx::EcgScenario::standard(seed);
    let classifier = ecgx::pretrained_classifier(&scenario, 1);
    let items = scenario.run_model(&classifier);
    let (sev, _) = score_scenario(
        &scenario,
        &scenario.assertion_set(),
        &items,
        &crate::runtime(),
    );
    let flagged: Vec<usize> = (0..scenario.pool.len())
        .filter(|&i| sev[i][0] > 0.0)
        .collect();
    let sampled = sample_up_to(&flagged, 50);
    let preds: Vec<usize> = items.iter().map(|it| it.pred).collect();
    let output_only = omg_eval::stats::proportion(&sampled, |&i| {
        // Any prediction in the assertion's context is wrong. True
        // rhythms dwell >= 40 s, so any A->B->A inside 30 s must include
        // an error.
        let lo = i.saturating_sub(ecgx::ECG_CONTEXT);
        let hi = (i + ecgx::ECG_CONTEXT + 1).min(scenario.pool.len());
        (lo..hi).any(|j| preds[j] != scenario.pool[j].true_class)
    });
    Row {
        assertion: "ecg",
        consistency: true,
        id_and_output: Some(output_only),
        output_only,
    }
}

fn news_row(seed: u64) -> Row {
    let scenario = newsx::NewsScenario::standard(seed);
    let flagged = newsx::flagged_groups(&scenario, &crate::runtime());
    let sampled: Vec<bool> = flagged.iter().map(|g| g.is_real_error).collect();
    let sampled = sample_up_to(&sampled, 50);
    let p = omg_eval::stats::proportion(&sampled, |&e| e);
    Row {
        assertion: "news",
        consistency: true,
        id_and_output: Some(p),
        output_only: p,
    }
}

/// Renders Table 3.
pub fn run(seed: u64) -> String {
    let mut rows = vec![news_row(seed), ecg_row(seed)];
    let video = video_rows(seed);
    // Consistency assertions first (news, ecg, flicker, appear), then
    // custom (multibox, agree) — the paper's layout.
    rows.extend(video.iter().filter(|r| r.consistency).map(copy_row));
    rows.extend(video.iter().filter(|r| !r.consistency).map(copy_row));
    rows.push(av_agree_row(seed));

    let mut t = Table::new(vec![
        "Assertion",
        "Precision (identifier and output)",
        "Precision (model output only)",
        "Sampled",
    ])
    .with_title(
        "Table 3: precision of deployed assertions on up to 50 sampled triggers \
         (paper: 88-100% in all cases)",
    )
    .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    for r in rows {
        t.row(vec![
            r.assertion.to_string(),
            r.id_and_output
                .map_or("N/A".to_string(), |p| format!("{:.0}%", p.percent())),
            format!("{:.0}%", r.output_only.percent()),
            r.output_only.total.to_string(),
        ]);
    }
    t.to_string()
}

fn copy_row(r: &Row) -> Row {
    Row {
        assertion: r.assertion,
        consistency: r.consistency,
        id_and_output: r.id_and_output,
        output_only: r.output_only,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_assertions_with_high_precision() {
        let s = super::run(2024);
        for a in ["news", "ecg", "flicker", "appear", "multibox", "agree"] {
            assert!(s.contains(a), "missing {a} in:\n{s}");
        }
    }
}
