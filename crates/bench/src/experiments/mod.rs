//! One module per regenerated table/figure. Each experiment returns its
//! rendered output as a `String`; [`run_cli`] is the dispatch behind the
//! `exp` multiplexer binary (`exp table1`, `exp fig5`, `exp all`, …), so
//! the binaries stay thin and `exp all` can assemble
//! `EXPERIMENTS.md`-ready output.

use std::fs;
use std::path::Path;

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod gallery;
pub mod service;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

/// Standard trial seeds (experiments report mean ± s.e. across these).
pub fn trial_seeds(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 1000 + 37 * i).collect()
}

/// The experiment names `exp <name>` accepts, in `exp all` order.
pub const EXPERIMENTS: [&str; 13] = [
    "table1", "table2", "table3", "fig3", "fig4a", "fig4b", "fig5", "table4", "fig9", "table5",
    "table6", "gallery", "service",
];

/// Whether `name` is an experiment [`run_cli`] accepts (an entry of
/// [`EXPERIMENTS`], or `"all"`). Binaries check this up front so an
/// unknown name is a usage error, not a panic.
pub fn is_known(name: &str) -> bool {
    name == "all" || EXPERIMENTS.contains(&name)
}

/// Runs one named experiment with the suite-standard parameters and
/// returns its `(output name, rendered text)` pairs, or `None` for an
/// unknown name. `seed` (from `--seed`) overrides the default seed of
/// the seed-parameterized experiments; the trial-averaged experiments
/// use the fixed [`trial_seeds`] ladder regardless.
pub fn run_named(name: &str, seed: Option<u64>) -> Option<Vec<(&'static str, String)>> {
    let out = match name {
        "table1" => vec![("table1", table1::run())],
        "table2" => vec![("table2", table2::run())],
        "table3" => vec![("table3", table3::run(seed.unwrap_or(2024)))],
        "table4" => vec![("table4", table4::run(3))],
        "table5" => vec![("table5", table5::run())],
        "table6" => vec![("table6", table6::run(seed.unwrap_or(33)))],
        "fig3" => vec![("fig3", fig3::run(seed.unwrap_or(77)))],
        "fig4a" => vec![
            ("fig4a", fig4::run_video(2, 5, 100, false)),
            ("fig4a_savings", fig4::label_savings(2, 5, 100, 85.0)),
        ],
        "fig4b" => vec![("fig4b", fig4::run_av(4, 5, 60, false))],
        "fig5" => vec![("fig5", fig5::run(4, 5, 100))],
        "fig9" => vec![("fig9", {
            let mut s = fig4::run_video(2, 5, 100, true);
            s.push_str(&fig4::run_av(4, 5, 60, true));
            s
        })],
        "gallery" => vec![("gallery", gallery::run(seed.unwrap_or(5)))],
        "service" => vec![("service", service::run(seed.unwrap_or(7)))],
        _ => return None,
    };
    Some(out)
}

/// The `exp` binary's dispatch: `name` is an experiment from
/// [`EXPERIMENTS`] (printed to stdout) or `"all"` (every experiment, in
/// order, printed and archived under `target/experiments/`).
///
/// # Panics
///
/// Panics on an unknown experiment name, listing the valid ones.
pub fn run_cli(name: &str, seed: Option<u64>) {
    if name == "all" {
        let dir = Path::new("target/experiments");
        fs::create_dir_all(dir).expect("create output dir");
        let mut written = 0usize;
        for exp in EXPERIMENTS {
            for (out_name, text) in run_named(exp, seed).expect("suite names are valid") {
                fs::write(dir.join(format!("{out_name}.txt")), &text).expect("write output");
                println!("{text}");
                written += 1;
            }
        }
        println!("wrote {written} outputs under target/experiments/");
        return;
    }
    let outputs = run_named(name, seed).unwrap_or_else(|| {
        panic!(
            "unknown experiment {name:?}; expected one of {:?} or \"all\"",
            EXPERIMENTS
        )
    });
    for (_, text) in outputs {
        print!("{text}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds = trial_seeds(8);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn every_suite_name_dispatches() {
        // Cheap static experiments actually run; expensive ones only
        // need to be *known* — probe the dispatch table, not the work.
        assert!(run_named("table1", None).is_some());
        assert!(run_named("table2", None).is_some());
        assert!(run_named("table5", None).is_some());
        assert!(run_named("definitely-not-an-experiment", None).is_none());
    }

    #[test]
    fn is_known_covers_the_suite_and_all() {
        assert!(is_known("all"));
        for e in EXPERIMENTS {
            assert!(is_known(e), "{e}");
        }
        assert!(!is_known("table9"));
    }
}
