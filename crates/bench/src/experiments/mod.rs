//! One module per regenerated table/figure. Each experiment returns its
//! rendered output as a `String` so the `exp_*` binaries stay thin and
//! `exp_all` can assemble `EXPERIMENTS.md`-ready output.

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod gallery;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

/// Standard trial seeds (experiments report mean ± s.e. across these).
pub fn trial_seeds(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 1000 + 37 * i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds = trial_seeds(8);
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
    }
}
