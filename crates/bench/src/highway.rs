//! The **highway multi-sensor fusion** scenario — the fifth deployed
//! use case, and the scenario engine's proof of abstraction: it is built
//! entirely from existing `omg-sim` primitives (the traffic world and
//! two independently seeded [`SimDetector`]s) plus the `omg-domains`
//! fusion assertion set, and it required **zero** edits to the generic
//! drivers, the conformance suite, or `exp_throughput` to run end to
//! end (sim → streaming score → active-learning rounds → BENCH JSON).
//!
//! The setup: a six-lane daytime highway watched by a noisy primary
//! camera (the monitored, trainable model) and a cleaner fixed secondary
//! channel (think thermal/radar — like the AV scenario's bootstrapped
//! LIDAR). `fusion-agree` flags frames where the secondary sees a
//! vehicle the primary missed; `fusion-flicker` flags the primary's
//! temporal dropouts. Active learning improves the primary only.

use std::sync::OnceLock;

use omg_domains::fusion::{FusionFrame, FusionWindow};
use omg_domains::{fusion_assertion_set, fusion_prepared_assertion_set, FusionPrep, FusionPrepare};
use omg_scenario::{detection_uncertainty, Scenario};
use omg_sim::detector::{Detection, DetectorConfig, SimDetector, TrainingBatch};
use omg_sim::traffic::{GtFrame, TrafficConfig, TrafficWorld};
use rand::rngs::StdRng;

/// The temporal threshold for `fusion-flicker`, seconds (the video
/// scenario's `T`; the highway stream runs at the same 10 fps).
pub const FUSION_FLICKER_T: f64 = 0.45;

/// Frames of context on each side of a window's center frame.
pub const FUSION_WINDOW_HALF: usize = 2;

/// The highway world: a wider, busier, daytime variant of the street.
fn highway_config() -> TrafficConfig {
    TrafficConfig {
        lanes: 6,
        spawn_prob: 0.03,
        ..TrafficConfig::day_street()
    }
}

/// The fixed configuration of a highway fusion experiment.
#[derive(Debug, Clone)]
pub struct HighwayScenario {
    /// The unlabeled pool stream.
    pub pool_frames: Vec<GtFrame>,
    /// The held-out test stream.
    pub test_frames: Vec<GtFrame>,
    /// The fixed secondary sensor (not improved by labeling, like the
    /// AV scenario's bootstrapped LIDAR).
    secondary: SimDetector,
}

impl HighwayScenario {
    /// Builds the scenario: `pool_len` pool frames and `test_len` test
    /// frames from two different world seeds, with the shared fixed
    /// secondary sensor.
    pub fn highway(seed: u64, pool_len: usize, test_len: usize) -> Self {
        let mut pool_world = TrafficWorld::new(highway_config(), seed);
        let mut test_world = TrafficWorld::new(highway_config(), seed ^ 0x416);
        Self {
            pool_frames: pool_world.steps(pool_len),
            test_frames: test_world.steps(test_len),
            secondary: shared_secondary().clone(),
        }
    }

    /// The experiment-standard sizes (1,000-frame pool, 400-frame test).
    pub fn standard(seed: u64) -> Self {
        Self::highway(seed, 1000, 400)
    }

    /// The fixed secondary sensor.
    pub fn secondary(&self) -> &SimDetector {
        &self.secondary
    }
}

/// One position of the highway stream: the ground-truth frame plus both
/// sensors' outputs on it.
#[derive(Debug, Clone)]
pub struct HighwayItem {
    /// The simulated frame (ground truth + detector-facing signals).
    pub gt: GtFrame,
    /// The primary (monitored) camera's output.
    pub primary: Vec<Detection>,
    /// The secondary (fixed) sensor's output.
    pub secondary: Vec<Detection>,
}

/// Builds the standard *primary* camera: noticeably noisier than the
/// secondary (same noise knob as the AV camera), so cross-sensor
/// disagreement and flicker concentrate on the primary's systematic
/// misses — the errors active learning then fixes.
pub fn pretrained_primary(seed: u64) -> SimDetector {
    let config = DetectorConfig {
        detect_temperature: 2.2,
        ..DetectorConfig::default()
    };
    SimDetector::pretrained(config, seed)
}

/// The registry's shared pretrained primary camera (model seed 1); see
/// [`crate::video::shared_pretrained_detector`] for why it is cached.
pub fn shared_pretrained_primary() -> &'static SimDetector {
    static PRIMARY: OnceLock<SimDetector> = OnceLock::new();
    PRIMARY.get_or_init(|| pretrained_primary(1))
}

/// The shared fixed secondary sensor (default config, its own seed):
/// cleaner than the primary, so it confirms vehicles the primary drops.
fn shared_secondary() -> &'static SimDetector {
    static SECONDARY: OnceLock<SimDetector> = OnceLock::new();
    SECONDARY.get_or_init(|| SimDetector::pretrained(DetectorConfig::default(), 2))
}

/// The highway weak-supervision experiment: flicker/duplicate
/// corrections from the primary channel's consistency assertions (the
/// same rules as the video scenario, §4.2) fine-tune the primary camera
/// with no human labels. The secondary sensor is not involved — it has
/// no training access, like the paper's LIDAR.
pub fn highway_weak_supervision(
    scenario: &HighwayScenario,
    primary: &SimDetector,
    epochs: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = crate::video::evaluate_map(primary, &scenario.test_frames);
    let dets = crate::video::detect_all(primary, &scenario.pool_frames);
    let batch = omg_domains::weak::video_weak_batch(
        &scenario.pool_frames,
        &dets,
        &omg_domains::weak::VideoWeakConfig::default(),
    );
    let mut tuned = primary.clone();
    if !batch.is_empty() {
        tuned.train(&batch, epochs, rng);
    }
    let after = crate::video::evaluate_map(&tuned, &scenario.test_frames);
    (before, after)
}

impl Scenario for HighwayScenario {
    type Item = HighwayItem;
    type Sample = FusionWindow;
    type Prep = FusionPrep;
    type Model = SimDetector;
    type Labels = TrainingBatch;

    fn name(&self) -> &'static str {
        "highway"
    }

    fn title(&self) -> &'static str {
        "Highway fusion"
    }

    fn metric_unit(&self) -> &'static str {
        "mAP"
    }

    fn window_half(&self) -> usize {
        FUSION_WINDOW_HALF
    }

    fn pool_len(&self) -> usize {
        self.pool_frames.len()
    }

    fn pretrained_model(&self, seed: u64) -> SimDetector {
        pretrained_primary(seed)
    }

    fn run_model(&self, model: &SimDetector) -> Vec<HighwayItem> {
        self.pool_frames
            .iter()
            .map(|f| HighwayItem {
                gt: f.clone(),
                primary: model.detect_frame(f.index, &f.signals),
                secondary: self.secondary.detect_frame(f.index, &f.signals),
            })
            .collect()
    }

    fn assertion_set(&self) -> omg_core::AssertionSet<FusionWindow> {
        fusion_assertion_set(FUSION_FLICKER_T)
    }

    fn prepared_set(&self) -> omg_core::AssertionSet<FusionWindow, FusionPrep> {
        fusion_prepared_assertion_set(FUSION_FLICKER_T)
    }

    fn preparer(&self) -> Box<dyn omg_core::stream::Prepare<FusionWindow, Prepared = FusionPrep>> {
        Box::new(FusionPrepare::new(FUSION_FLICKER_T))
    }

    fn make_sample(&self, items: &[HighwayItem], center: usize) -> FusionWindow {
        let frames = items
            .iter()
            .map(|it| FusionFrame {
                index: it.gt.index,
                time: it.gt.time,
                primary: it.primary.iter().map(|d| d.scored).collect(),
                secondary: it.secondary.iter().map(|d| d.scored).collect(),
            })
            .collect();
        FusionWindow::new(frames, center)
    }

    fn uncertainty(&self, item: &HighwayItem) -> f64 {
        detection_uncertainty(item.primary.iter().map(|d| d.scored.score))
    }

    fn initial_labels(&self) -> TrainingBatch {
        TrainingBatch::new()
    }

    fn label_into(&self, labels: &mut TrainingBatch, pool_index: usize) {
        crate::video::label_frame_into(labels, &self.pool_frames[pool_index]);
    }

    fn train(&self, model: &mut SimDetector, labels: &TrainingBatch, rng: &mut StdRng) {
        if !labels.is_empty() {
            model.train(labels, 4, rng);
        }
    }

    fn evaluate(&self, model: &SimDetector) -> f64 {
        crate::video::evaluate_map(model, &self.test_frames)
    }

    fn weak_supervision(&self, model: &SimDetector, rng: &mut StdRng) -> Option<(f64, f64)> {
        Some(highway_weak_supervision(self, model, 6, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_active::ActiveLearner;
    use omg_core::runtime::ThreadPool;
    use omg_scenario::{score_scenario, stream_score_scenario, ScenarioLearner};
    use rand::SeedableRng;

    fn tiny() -> HighwayScenario {
        HighwayScenario::highway(7, 120, 60)
    }

    #[test]
    fn both_fusion_assertions_fire_on_the_highway() {
        let s = tiny();
        let items = s.run_model(shared_pretrained_primary());
        let set = s.assertion_set();
        let (sev, unc) = score_scenario(&s, &set, &items, &ThreadPool::sequential());
        assert_eq!(sev.len(), 120);
        assert!(unc.iter().all(|&u| (0.0..=1.0).contains(&u)));
        let agree: f64 = sev.iter_rows().map(|r| r[0]).sum();
        let flicker: f64 = sev.iter_rows().map(|r| r[1]).sum();
        assert!(agree > 0.0, "secondary must confirm missed vehicles");
        assert!(flicker > 0.0, "the noisy primary must flicker somewhere");
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny();
        let items = s.run_model(shared_pretrained_primary());
        let want = score_scenario(&s, &s.assertion_set(), &items, &ThreadPool::sequential());
        let prepared = s.prepared_set();
        let preparer = s.preparer();
        for threads in [1, 2, 8] {
            assert_eq!(
                stream_score_scenario(
                    &s,
                    &prepared,
                    &preparer,
                    &items,
                    &ThreadPool::exact(threads)
                ),
                want,
                "streaming highway scoring diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn learner_improves_the_primary_only() {
        let s = tiny();
        let secondary_before = s.secondary().clone();
        let mut learner = ScenarioLearner::new(s, shared_pretrained_primary().clone());
        let before = learner.evaluate();
        let mut rng = StdRng::seed_from_u64(11);
        let selection: Vec<usize> = (0..120).step_by(3).collect();
        learner.label_and_train(&selection, &mut rng);
        assert_eq!(learner.unlabeled_len(), 80);
        let after = learner.evaluate();
        assert!(
            after > before - 2.0,
            "labels should not hurt the primary: {before} -> {after}"
        );
        // The secondary is a fixed sensor: training must not touch it.
        let frame = &learner.scenario().test_frames[0];
        assert_eq!(
            learner
                .scenario()
                .secondary()
                .detect_frame(frame.index, &frame.signals),
            secondary_before.detect_frame(frame.index, &frame.signals),
        );
    }
}
