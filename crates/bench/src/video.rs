//! The `night-street` video-analytics scenario (Figures 3, 4a, 9a;
//! Tables 3, 4, 6).

use std::collections::VecDeque;

use omg_active::{ActiveLearner, CandidatePool};
use omg_core::runtime::ThreadPool;
use omg_core::stream::{score_stream_chunked, Prepare, SlidingWindows, StreamScorer};
use omg_core::AssertionSet;
use omg_domains::{video_prepared_assertion_set, VideoFrame, VideoPrep, VideoPrepare, VideoWindow};
use omg_eval::DetectionEvaluator;
use omg_sim::detector::{Detection, DetectorConfig, Provenance, SimDetector, TrainingBatch};
use omg_sim::traffic::{GtFrame, TrafficConfig, TrafficWorld};
use rand::rngs::StdRng;

/// The temporal threshold `T` for the video consistency assertions,
/// seconds.
pub const FLICKER_T: f64 = 0.45;

/// Frames of context on each side of a window's center frame.
pub const WINDOW_HALF: usize = 2;

/// The fixed configuration of a night-street experiment.
#[derive(Debug, Clone)]
pub struct VideoScenario {
    /// The unlabeled pool: one "day" of video.
    pub pool_frames: Vec<GtFrame>,
    /// The held-out test set: "a separate day of video" (§5.1).
    pub test_frames: Vec<GtFrame>,
}

impl VideoScenario {
    /// Builds the scenario: `pool_len` frames of pool video and
    /// `test_len` frames of test video from two different seeds.
    pub fn night_street(seed: u64, pool_len: usize, test_len: usize) -> Self {
        let mut pool_world = TrafficWorld::new(TrafficConfig::night_street(), seed);
        let mut test_world = TrafficWorld::new(TrafficConfig::night_street(), seed ^ 0x5EED);
        Self {
            pool_frames: pool_world.steps(pool_len),
            test_frames: test_world.steps(test_len),
        }
    }

    /// The experiment-standard sizes (1,200-frame pool, 500-frame test).
    pub fn standard(seed: u64) -> Self {
        Self::night_street(seed, 1200, 500)
    }
}

/// Runs the detector over a frame sequence.
pub fn detect_all(detector: &SimDetector, frames: &[GtFrame]) -> Vec<Vec<Detection>> {
    frames
        .iter()
        .map(|f| detector.detect_frame(f.index, &f.signals))
        .collect()
}

/// Builds the sliding assertion window centered on `center` (clamped at
/// sequence edges).
///
/// # Panics
///
/// Panics if `center` is not a valid frame index or the detection lists
/// don't line up with the frames.
pub fn window_at(frames: &[GtFrame], dets: &[Vec<Detection>], center: usize) -> VideoWindow {
    assert_eq!(
        frames.len(),
        dets.len(),
        "need one detection list per frame"
    );
    assert!(
        center < frames.len(),
        "window center {center} out of range for {} frames",
        frames.len()
    );
    let lo = center.saturating_sub(WINDOW_HALF);
    let hi = (center + WINDOW_HALF + 1).min(frames.len());
    let vf: Vec<VideoFrame> = (lo..hi)
        .map(|i| VideoFrame {
            index: frames[i].index,
            time: frames[i].time,
            dets: dets[i].iter().map(|d| d.scored).collect(),
        })
        .collect();
    VideoWindow::new(vf, center - lo)
}

/// Per-frame severity vectors and uncertainty scores over a sequence.
///
/// Each frame's window is built and checked independently, so the work
/// fans out across the runtime's workers and merges in frame order —
/// identical output at any thread count.
pub fn score_frames(
    set: &AssertionSet<VideoWindow>,
    frames: &[GtFrame],
    dets: &[Vec<Detection>],
    runtime: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    runtime
        .map_indexed(frames.len(), |i| {
            let window = window_at(frames, dets, i);
            let outcomes = set.check_all(&window);
            let severities: Vec<f64> = outcomes.iter().map(|(_, s)| s.value()).collect();
            (severities, frame_uncertainty(&dets[i]))
        })
        .into_iter()
        .unzip()
}

/// The per-frame uncertainty signal shared by the batch and streaming
/// scorers: least-confidence over the frame's detections (frames with no
/// detections carry no uncertainty — exactly the blind spot of
/// uncertainty sampling the paper exploits).
pub fn frame_uncertainty(dets: &[Detection]) -> f64 {
    dets.iter()
        .map(|d| 1.0 - d.scored.score)
        .fold(0.0f64, f64::max)
}

/// An incremental night-street scorer: ingests one frame at a time over
/// a ring buffer, prepares each completed window **once** (one tracker
/// run + one consistency check), and shares the artifact across all
/// three video assertions — the streaming counterpart of
/// [`score_frames`], bit-for-bit equal to it.
pub struct VideoStreamScorer<'a> {
    set: &'a AssertionSet<VideoWindow, VideoPrep>,
    preparer: &'a (dyn Prepare<VideoWindow, Prepared = VideoPrep> + 'a),
    frames: &'a [GtFrame],
    dets: &'a [Vec<Detection>],
    slider: SlidingWindows<VideoFrame>,
    /// Uncertainties of frames whose windows are still pending.
    pending_unc: VecDeque<f64>,
}

impl<'a> VideoStreamScorer<'a> {
    /// Creates a scorer over a frame/detection stream. The preparer must
    /// use the same temporal threshold the set was built with (pass a
    /// counting probe to verify the prepare-once invariant).
    pub fn new(
        set: &'a AssertionSet<VideoWindow, VideoPrep>,
        preparer: &'a (dyn Prepare<VideoWindow, Prepared = VideoPrep> + 'a),
        frames: &'a [GtFrame],
        dets: &'a [Vec<Detection>],
    ) -> Self {
        assert_eq!(
            frames.len(),
            dets.len(),
            "need one detection list per frame"
        );
        Self {
            set,
            preparer,
            frames,
            dets,
            slider: SlidingWindows::new(WINDOW_HALF),
            pending_unc: VecDeque::with_capacity(WINDOW_HALF + 1),
        }
    }

    /// Scores one completed window: prepare once, check every assertion
    /// against the shared tracked window.
    fn score(&mut self, items: Vec<VideoFrame>, center: usize) -> (Vec<f64>, f64) {
        let window = VideoWindow::new(items, center);
        let prep = self.preparer.prepare(&window);
        let severities = self
            .set
            .check_all_prepared(&window, &prep)
            .iter()
            .map(|&(_, s)| s.value())
            .collect();
        let unc = self
            .pending_unc
            .pop_front()
            .expect("one pending uncertainty per completed window");
        (severities, unc)
    }
}

impl StreamScorer for VideoStreamScorer<'_> {
    type Output = (Vec<f64>, f64);

    fn push(&mut self, index: usize) -> Option<(Vec<f64>, f64)> {
        let frame = &self.frames[index];
        let vf = VideoFrame {
            index: frame.index,
            time: frame.time,
            dets: self.dets[index].iter().map(|d| d.scored).collect(),
        };
        self.pending_unc
            .push_back(frame_uncertainty(&self.dets[index]));
        let ready = self.slider.push(vf);
        ready.map(|w| self.score(w.items, w.center))
    }

    fn finish(mut self) -> Vec<(Vec<f64>, f64)> {
        let tail = self.slider.finish();
        tail.into_iter()
            .map(|w| self.score(w.items, w.center))
            .collect()
    }
}

/// The streaming counterpart of [`score_frames`]: same per-frame severity
/// vectors and uncertainties, computed incrementally over a ring buffer
/// with **one** preparation per window (tracking + consistency check,
/// shared by all three assertions) instead of one per assertion. Chunks
/// of the stream fan out across the runtime's workers and merge in frame
/// order — bit-for-bit identical to the batch path at any thread count.
pub fn stream_score_frames(
    set: &AssertionSet<VideoWindow, VideoPrep>,
    preparer: &VideoPrepare,
    frames: &[GtFrame],
    dets: &[Vec<Detection>],
    runtime: &ThreadPool,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    assert_eq!(
        frames.len(),
        dets.len(),
        "need one detection list per frame"
    );
    score_stream_chunked(frames.len(), WINDOW_HALF, runtime, |_offset| {
        VideoStreamScorer::new(set, preparer, frames, dets)
    })
    .into_iter()
    .unzip()
}

/// Builds `n` sliding monitor windows over a fresh night-street stream —
/// the shared input of the engine benchmarks and `exp_throughput`.
pub fn monitor_windows(n: usize, seed: u64) -> Vec<VideoWindow> {
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), seed);
    let frames = world.steps(n);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets = detect_all(&det, &frames);
    (0..n).map(|c| window_at(&frames, &dets, c)).collect()
}

/// mAP (percent) of the detector on a frame sequence.
pub fn evaluate_map(detector: &SimDetector, frames: &[GtFrame]) -> f64 {
    let mut ev = DetectionEvaluator::new(0.5);
    for frame in frames {
        let dets = detector.detect_frame(frame.index, &frame.signals);
        let scored: Vec<_> = dets.iter().map(|d| d.scored).collect();
        ev.add_frame(&scored, &frame.gt_boxes());
    }
    ev.map_percent()
}

/// Adds full human labels for one frame to a training batch (every object
/// box + background patches — what a labeling service returns for the
/// frame).
pub fn label_frame_into(batch: &mut TrainingBatch, frame: &GtFrame) {
    for signal in &frame.signals {
        if signal.is_clutter() {
            batch.add_labeled_background(signal);
        } else {
            batch.add_labeled_object(signal);
        }
    }
}

/// The night-street active learner of Figure 4a.
pub struct VideoLearner {
    scenario: VideoScenario,
    detector: SimDetector,
    assertions: AssertionSet<VideoWindow, VideoPrep>,
    preparer: VideoPrepare,
    /// Pool positions (into `scenario.pool_frames`) still unlabeled.
    unlabeled: Vec<usize>,
    labeled_batch: TrainingBatch,
    epochs_per_round: usize,
    runtime: ThreadPool,
}

impl VideoLearner {
    /// Creates a learner around a pretrained detector, scoring pools on
    /// the harness-wide runtime (`--threads`) via the streaming path
    /// (one tracker run per window, shared by all three assertions).
    pub fn new(scenario: VideoScenario, detector: SimDetector) -> Self {
        let n = scenario.pool_frames.len();
        Self {
            scenario,
            detector,
            assertions: video_prepared_assertion_set(FLICKER_T),
            preparer: VideoPrepare::new(FLICKER_T),
            unlabeled: (0..n).collect(),
            labeled_batch: TrainingBatch::new(),
            epochs_per_round: 4,
            runtime: crate::runtime(),
        }
    }

    /// Overrides the scoring runtime (results are identical at any
    /// thread count; only wall-clock changes).
    pub fn with_runtime(mut self, runtime: ThreadPool) -> Self {
        self.runtime = runtime;
        self
    }

    /// The current detector.
    pub fn detector(&self) -> &SimDetector {
        &self.detector
    }

    /// Number of frames still unlabeled.
    pub fn unlabeled_len(&self) -> usize {
        self.unlabeled.len()
    }
}

impl ActiveLearner for VideoLearner {
    fn pool(&mut self) -> CandidatePool {
        // Score the whole stream once (windows need neighbours) on the
        // streaming path, then project onto the unlabeled positions.
        let dets = detect_all(&self.detector, &self.scenario.pool_frames);
        let (sev, unc) = stream_score_frames(
            &self.assertions,
            &self.preparer,
            &self.scenario.pool_frames,
            &dets,
            &self.runtime,
        );
        let severities = self.unlabeled.iter().map(|&i| sev[i].clone()).collect();
        let uncertainties = self.unlabeled.iter().map(|&i| unc[i]).collect();
        CandidatePool::new(severities, uncertainties).expect("consistent pool")
    }

    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng) {
        for &frame_idx in &crate::claim_selection(&mut self.unlabeled, selection) {
            label_frame_into(
                &mut self.labeled_batch,
                &self.scenario.pool_frames[frame_idx],
            );
        }
        if !self.labeled_batch.is_empty() {
            self.detector
                .train(&self.labeled_batch, self.epochs_per_round, rng);
        }
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_map(&self.detector, &self.scenario.test_frames)
    }
}

/// The weak-supervision experiment for video (Table 4, row 1): corrections
/// from the consistency assertions fine-tune the pretrained detector with
/// no human labels.
pub fn video_weak_supervision(
    scenario: &VideoScenario,
    detector: &SimDetector,
    epochs: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_map(detector, &scenario.test_frames);
    let dets = detect_all(detector, &scenario.pool_frames);
    let batch = omg_domains::weak::video_weak_batch(
        &scenario.pool_frames,
        &dets,
        &omg_domains::weak::VideoWeakConfig::default(),
    );
    let mut tuned = detector.clone();
    if !batch.is_empty() {
        tuned.train(&batch, epochs, rng);
    }
    let after = evaluate_map(&tuned, &scenario.test_frames);
    (before, after)
}

/// A detection-level error with its confidence, for the Figure 3
/// analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundError {
    /// Confidence attributed to the error.
    pub confidence: f64,
    /// Pool frame index where it was found.
    pub frame: usize,
    /// Identity of the erroneous track or cluster within the frame.
    /// `(frame, source)` is the error's dedup key across overlapping
    /// windows: two *distinct* errors in one frame stay distinct even
    /// when they happen to share a confidence.
    pub source: u64,
}

/// Collects, per assertion name, the *true* errors found in flagged
/// windows, with the confidence the paper's analysis assigns them
/// (duplicates/FPs use their own confidence; flicker misses use "the
/// average of the surrounding boxes", §5.3).
pub fn errors_by_assertion(
    frames: &[GtFrame],
    dets: &[Vec<Detection>],
    set: &AssertionSet<VideoWindow>,
) -> Vec<(String, Vec<FoundError>)> {
    let mut out: Vec<(String, Vec<FoundError>)> = set
        .names()
        .iter()
        .map(|n| (n.to_string(), Vec::new()))
        .collect();
    for center in 0..frames.len() {
        let window = window_at(frames, dets, center);
        let outcomes = set.check_all(&window);
        for (aid, severity) in outcomes {
            if !severity.fired() {
                continue;
            }
            let name = set.name(aid);
            let errors = match name {
                "multibox" => duplicate_errors(&dets[center], center),
                "appear" => clutter_errors(&dets[center], center),
                "flicker" => flicker_miss_errors(frames, dets, center),
                _ => Vec::new(),
            };
            out[aid.0].1.extend(errors);
        }
    }
    // Deduplicate per assertion (overlapping windows re-find the same
    // error) by track/cluster identity — *not* by confidence, which
    // would collapse distinct same-confidence errors in one frame.
    for (_, errs) in &mut out {
        dedup_errors(errs);
    }
    out
}

/// Sorts errors into (frame, source) order and drops re-findings of the
/// same error from overlapping windows. Identity — not confidence — is
/// the key: two distinct errors in one frame that happen to share a
/// confidence both survive.
pub(crate) fn dedup_errors(errs: &mut Vec<FoundError>) {
    errs.sort_by(|a, b| a.frame.cmp(&b.frame).then(a.source.cmp(&b.source)));
    errs.dedup_by(|a, b| a.frame == b.frame && a.source == b.source);
}

pub(crate) fn duplicate_errors(dets: &[Detection], frame: usize) -> Vec<FoundError> {
    // Table 5 scores a multibox cluster by "the maximum confidence of 3
    // vehicles that highly overlap": attribute the cluster's max
    // confidence to the error — one error per duplicated cluster, no
    // matter how many duplicate members it has.
    let mut clusters: Vec<u64> = dets
        .iter()
        .filter(|d| matches!(d.provenance, Provenance::Duplicate { .. }))
        .map(|d| d.track_id())
        .collect();
    clusters.sort_unstable();
    clusters.dedup();
    clusters
        .into_iter()
        .map(|track| {
            let cluster_max = dets
                .iter()
                .filter(|o| o.track_id() == track)
                .map(|o| o.scored.score)
                .fold(0.0f64, f64::max);
            FoundError {
                confidence: cluster_max,
                frame,
                source: track,
            }
        })
        .collect()
}

pub(crate) fn clutter_errors(dets: &[Detection], frame: usize) -> Vec<FoundError> {
    dets.iter()
        .filter(|d| matches!(d.provenance, Provenance::Clutter { .. }))
        .map(|d| FoundError {
            confidence: d.scored.score,
            frame,
            source: d.track_id(),
        })
        .collect()
}

/// Missed objects at `center` that were detected on both adjacent frames
/// (a flicker miss); confidence = mean of the neighbours' confidences.
fn flicker_miss_errors(
    frames: &[GtFrame],
    dets: &[Vec<Detection>],
    center: usize,
) -> Vec<FoundError> {
    if center == 0 || center + 1 >= frames.len() {
        return Vec::new();
    }
    let detected_conf = |frame_idx: usize, track: u64| -> Option<f64> {
        dets[frame_idx].iter().find_map(|d| match d.provenance {
            Provenance::Object { track_id, .. } if track_id == track => Some(d.scored.score),
            _ => None,
        })
    };
    let mut errors = Vec::new();
    for signal in frames[center].signals.iter().filter(|s| !s.is_clutter()) {
        if detected_conf(center, signal.track_id).is_some() {
            continue;
        }
        if let (Some(before), Some(after)) = (
            detected_conf(center - 1, signal.track_id),
            detected_conf(center + 1, signal.track_id),
        ) {
            errors.push(FoundError {
                confidence: (before + after) / 2.0,
                frame: center,
                source: signal.track_id,
            });
        }
    }
    errors
}

/// All detection confidences in the sequence (the Figure 3 population).
pub fn all_confidences(dets: &[Vec<Detection>]) -> Vec<f64> {
    dets.iter()
        .flat_map(|d| d.iter().map(|x| x.scored.score))
        .collect()
}

/// Builds the standard pretrained detector for the video experiments.
pub fn pretrained_detector(seed: u64) -> SimDetector {
    SimDetector::pretrained(DetectorConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_domains::video_assertion_set;
    use rand::SeedableRng;

    fn tiny_scenario() -> VideoScenario {
        VideoScenario::night_street(5, 120, 80)
    }

    #[test]
    fn scenario_has_disjoint_pool_and_test() {
        let s = tiny_scenario();
        assert_eq!(s.pool_frames.len(), 120);
        assert_eq!(s.test_frames.len(), 80);
        assert_ne!(s.pool_frames[0], s.test_frames[0]);
    }

    #[test]
    fn windows_clamp_at_edges() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        let w0 = window_at(&s.pool_frames, &dets, 0);
        assert_eq!(w0.center, 0);
        assert_eq!(w0.len(), WINDOW_HALF + 1);
        let wmid = window_at(&s.pool_frames, &dets, 60);
        assert_eq!(wmid.len(), 2 * WINDOW_HALF + 1);
        assert_eq!(wmid.center, WINDOW_HALF);
        let wend = window_at(&s.pool_frames, &dets, 119);
        assert_eq!(wend.center, WINDOW_HALF);
        assert_eq!(wend.len(), WINDOW_HALF + 1);
    }

    #[test]
    fn assertions_fire_on_night_street() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        let set = video_assertion_set(FLICKER_T);
        let (sev, unc) = score_frames(&set, &s.pool_frames, &dets, &ThreadPool::sequential());
        assert_eq!(sev.len(), 120);
        assert_eq!(unc.len(), 120);
        let total_fires: f64 = sev.iter().flat_map(|r| r.iter()).sum();
        assert!(
            total_fires > 0.0,
            "the pretrained night detector must trip assertions"
        );
        // The fan-out path merges in frame order: identical scores at
        // any thread count.
        for threads in [2, 8] {
            let (psev, punc) = score_frames(&set, &s.pool_frames, &dets, &ThreadPool::new(threads));
            assert_eq!(psev, sev, "severities differ at {threads} threads");
            assert_eq!(punc, unc, "uncertainties differ at {threads} threads");
        }
    }

    #[test]
    fn learner_trains_and_pool_shrinks() {
        let s = tiny_scenario();
        let mut learner = VideoLearner::new(s, pretrained_detector(1));
        let mut rng = StdRng::seed_from_u64(2);
        let pool = learner.pool();
        assert_eq!(pool.len(), 120);
        learner.label_and_train(&[0, 5, 10], &mut rng);
        assert_eq!(learner.unlabeled_len(), 117);
        let metric = learner.evaluate();
        assert!(metric > 0.0 && metric < 100.0, "mAP% {metric}");
    }

    #[test]
    fn duplicate_selection_labels_each_frame_once() {
        // Regression: a selection with repeated positions used to label
        // (and budget-count) the frame twice; the learner must end up in
        // exactly the state a deduplicated selection produces.
        let mut dup = VideoLearner::new(tiny_scenario(), pretrained_detector(1));
        let mut clean = VideoLearner::new(tiny_scenario(), pretrained_detector(1));
        let mut rng_dup = StdRng::seed_from_u64(2);
        let mut rng_clean = StdRng::seed_from_u64(2);
        dup.label_and_train(&[7, 3, 7, 7, 3], &mut rng_dup);
        clean.label_and_train(&[3, 7], &mut rng_clean);
        assert_eq!(dup.unlabeled_len(), 118);
        assert_eq!(dup.unlabeled_len(), clean.unlabeled_len());
        // Identical training data => identical detector behaviour.
        let frame = &dup.scenario.test_frames[0];
        assert_eq!(
            dup.detector().detect_frame(frame.index, &frame.signals),
            clean.detector().detect_frame(frame.index, &frame.signals),
            "double-labeled batch changed training"
        );
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        let batch_set = video_assertion_set(FLICKER_T);
        let (sev, unc) = score_frames(&batch_set, &s.pool_frames, &dets, &ThreadPool::sequential());
        let stream_set = video_prepared_assertion_set(FLICKER_T);
        let preparer = VideoPrepare::new(FLICKER_T);
        for threads in [1, 2, 8] {
            let (ssev, sunc) = stream_score_frames(
                &stream_set,
                &preparer,
                &s.pool_frames,
                &dets,
                &ThreadPool::new(threads),
            );
            assert_eq!(ssev, sev, "severities diverge at {threads} threads");
            assert_eq!(sunc, unc, "uncertainties diverge at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_at_rejects_out_of_range_center() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        window_at(&s.pool_frames, &dets, s.pool_frames.len());
    }

    fn det(score: f64, provenance: Provenance) -> Detection {
        use omg_eval::ScoredBox;
        use omg_geom::BBox2D;
        Detection {
            scored: ScoredBox {
                bbox: BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap(),
                class: 0,
                score,
            },
            provenance,
        }
    }

    #[test]
    fn multi_member_cluster_counts_as_one_error() {
        // Regression: a cluster with two Duplicate members used to push
        // its max confidence once per member.
        let dets = vec![
            det(
                0.9,
                Provenance::Object {
                    track_id: 5,
                    true_class: 0,
                },
            ),
            det(
                0.8,
                Provenance::Duplicate {
                    track_id: 5,
                    true_class: 0,
                },
            ),
            det(
                0.7,
                Provenance::Duplicate {
                    track_id: 5,
                    true_class: 0,
                },
            ),
            det(
                0.6,
                Provenance::Duplicate {
                    track_id: 9,
                    true_class: 0,
                },
            ),
        ];
        let errs = duplicate_errors(&dets, 3);
        assert_eq!(errs.len(), 2, "one error per duplicated cluster");
        assert_eq!(
            errs[0],
            FoundError {
                confidence: 0.9,
                frame: 3,
                source: 5
            }
        );
        assert_eq!(
            errs[1],
            FoundError {
                confidence: 0.6,
                frame: 3,
                source: 9
            }
        );
    }

    #[test]
    fn equal_confidence_distinct_errors_survive_dedup() {
        // Regression: dedup used to key on (frame, confidence), merging
        // two distinct same-frame errors that tie on confidence.
        let mut errs = vec![
            FoundError {
                confidence: 0.8,
                frame: 4,
                source: 11,
            },
            FoundError {
                confidence: 0.8,
                frame: 4,
                source: 22,
            },
            FoundError {
                confidence: 0.8,
                frame: 4,
                source: 11,
            }, // re-found by the next window
            FoundError {
                confidence: 0.5,
                frame: 2,
                source: 11,
            },
        ];
        dedup_errors(&mut errs);
        assert_eq!(
            errs,
            vec![
                FoundError {
                    confidence: 0.5,
                    frame: 2,
                    source: 11
                },
                FoundError {
                    confidence: 0.8,
                    frame: 4,
                    source: 11
                },
                FoundError {
                    confidence: 0.8,
                    frame: 4,
                    source: 22
                },
            ]
        );
        // And the clutter extractor tags sources so ties stay distinct.
        let dets = vec![
            det(0.8, Provenance::Clutter { track_id: 1 }),
            det(0.8, Provenance::Clutter { track_id: 2 }),
        ];
        let mut found = clutter_errors(&dets, 4);
        dedup_errors(&mut found);
        assert_eq!(
            found.len(),
            2,
            "equal-confidence clutter errors are distinct"
        );
    }

    #[test]
    fn error_collection_is_well_formed() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        let set = video_assertion_set(FLICKER_T);
        let by_assertion = errors_by_assertion(&s.pool_frames, &dets, &set);
        assert_eq!(by_assertion.len(), 3);
        for (_, errs) in &by_assertion {
            for e in errs {
                assert!((0.0..=1.0).contains(&e.confidence));
                assert!(e.frame < 120);
            }
        }
        let confs = all_confidences(&dets);
        assert!(!confs.is_empty());
    }
}
