//! The `night-street` video-analytics scenario (Figures 3, 4a, 9a;
//! Tables 3, 4, 6), ported onto the generic [`Scenario`] engine.
//!
//! This module keeps only what is *specific* to night-street: the world,
//! the detector hookup, the error-attribution rules, and the
//! weak-supervision recipe. Batch scoring, streaming scoring, the active
//! learner, and the error-collection loop are the generic drivers in
//! `omg-scenario`.

use std::sync::OnceLock;

use omg_domains::{video_assertion_set, video_prepared_assertion_set, VideoPrep, VideoPrepare};
use omg_domains::{VideoFrame, VideoWindow};
use omg_eval::DetectionEvaluator;
use omg_scenario::{detection_uncertainty, FoundError, Scenario};
use omg_sim::detector::{Detection, DetectorConfig, Provenance, SimDetector, TrainingBatch};
use omg_sim::traffic::{GtFrame, TrafficConfig, TrafficWorld};
use rand::rngs::StdRng;

/// The temporal threshold `T` for the video consistency assertions,
/// seconds.
pub const FLICKER_T: f64 = 0.45;

/// Frames of context on each side of a window's center frame.
pub const WINDOW_HALF: usize = 2;

/// The fixed configuration of a night-street experiment.
#[derive(Debug, Clone)]
pub struct VideoScenario {
    /// The unlabeled pool: one "day" of video.
    pub pool_frames: Vec<GtFrame>,
    /// The held-out test set: "a separate day of video" (§5.1).
    pub test_frames: Vec<GtFrame>,
}

impl VideoScenario {
    /// Builds the scenario: `pool_len` frames of pool video and
    /// `test_len` frames of test video from two different seeds.
    pub fn night_street(seed: u64, pool_len: usize, test_len: usize) -> Self {
        let mut pool_world = TrafficWorld::new(TrafficConfig::night_street(), seed);
        let mut test_world = TrafficWorld::new(TrafficConfig::night_street(), seed ^ 0x5EED);
        Self {
            pool_frames: pool_world.steps(pool_len),
            test_frames: test_world.steps(test_len),
        }
    }

    /// The experiment-standard sizes (1,200-frame pool, 500-frame test).
    pub fn standard(seed: u64) -> Self {
        Self::night_street(seed, 1200, 500)
    }
}

/// One position of the night-street stream: the ground-truth frame and
/// the detector's output on it. The ground truth and provenance ride
/// along for the error-attribution and labeling hooks; the assertions
/// only ever see the scored boxes.
#[derive(Debug, Clone)]
pub struct VideoItem {
    /// The simulated frame (ground truth + detector-facing signals).
    pub gt: GtFrame,
    /// The detector's output on the frame.
    pub dets: Vec<Detection>,
}

/// Runs the detector over a frame sequence.
pub fn detect_all(detector: &SimDetector, frames: &[GtFrame]) -> Vec<Vec<Detection>> {
    frames
        .iter()
        .map(|f| detector.detect_frame(f.index, &f.signals))
        .collect()
}

/// Builds the sliding assertion window centered on `center` (clamped at
/// sequence edges).
///
/// # Panics
///
/// Panics if `center` is not a valid frame index or the detection lists
/// don't line up with the frames.
pub fn window_at(frames: &[GtFrame], dets: &[Vec<Detection>], center: usize) -> VideoWindow {
    assert_eq!(
        frames.len(),
        dets.len(),
        "need one detection list per frame"
    );
    assert!(
        center < frames.len(),
        "window center {center} out of range for {} frames",
        frames.len()
    );
    let lo = center.saturating_sub(WINDOW_HALF);
    let hi = (center + WINDOW_HALF + 1).min(frames.len());
    let vf: Vec<VideoFrame> = (lo..hi)
        .map(|i| VideoFrame {
            index: frames[i].index,
            time: frames[i].time,
            dets: dets[i].iter().map(|d| d.scored).collect(),
        })
        .collect();
    VideoWindow::new(vf, center - lo)
}

/// Builds `n` sliding monitor windows over a fresh night-street stream —
/// the shared input of the engine benchmarks and `exp_throughput`.
pub fn monitor_windows(n: usize, seed: u64) -> Vec<VideoWindow> {
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), seed);
    let frames = world.steps(n);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets = detect_all(&det, &frames);
    (0..n).map(|c| window_at(&frames, &dets, c)).collect()
}

/// mAP (percent) of the detector on a frame sequence.
pub fn evaluate_map(detector: &SimDetector, frames: &[GtFrame]) -> f64 {
    let mut ev = DetectionEvaluator::new(0.5);
    for frame in frames {
        let dets = detector.detect_frame(frame.index, &frame.signals);
        let scored: Vec<_> = dets.iter().map(|d| d.scored).collect();
        ev.add_frame(&scored, &frame.gt_boxes());
    }
    ev.map_percent()
}

/// Adds full human labels for one frame to a training batch (every object
/// box + background patches — what a labeling service returns for the
/// frame).
pub fn label_frame_into(batch: &mut TrainingBatch, frame: &GtFrame) {
    for signal in &frame.signals {
        if signal.is_clutter() {
            batch.add_labeled_background(signal);
        } else {
            batch.add_labeled_object(signal);
        }
    }
}

/// The weak-supervision experiment for video (Table 4, row 1): corrections
/// from the consistency assertions fine-tune the pretrained detector with
/// no human labels.
pub fn video_weak_supervision(
    scenario: &VideoScenario,
    detector: &SimDetector,
    epochs: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let before = evaluate_map(detector, &scenario.test_frames);
    let dets = detect_all(detector, &scenario.pool_frames);
    let batch = omg_domains::weak::video_weak_batch(
        &scenario.pool_frames,
        &dets,
        &omg_domains::weak::VideoWeakConfig::default(),
    );
    let mut tuned = detector.clone();
    if !batch.is_empty() {
        tuned.train(&batch, epochs, rng);
    }
    let after = evaluate_map(&tuned, &scenario.test_frames);
    (before, after)
}

impl Scenario for VideoScenario {
    type Item = VideoItem;
    type Sample = VideoWindow;
    type Prep = VideoPrep;
    type Model = SimDetector;
    type Labels = TrainingBatch;

    fn name(&self) -> &'static str {
        "video"
    }

    fn title(&self) -> &'static str {
        "Video analytics"
    }

    fn metric_unit(&self) -> &'static str {
        "mAP"
    }

    fn window_half(&self) -> usize {
        WINDOW_HALF
    }

    fn pool_len(&self) -> usize {
        self.pool_frames.len()
    }

    fn pretrained_model(&self, seed: u64) -> SimDetector {
        pretrained_detector(seed)
    }

    fn run_model(&self, model: &SimDetector) -> Vec<VideoItem> {
        self.pool_frames
            .iter()
            .map(|f| VideoItem {
                gt: f.clone(),
                dets: model.detect_frame(f.index, &f.signals),
            })
            .collect()
    }

    fn assertion_set(&self) -> omg_core::AssertionSet<VideoWindow> {
        video_assertion_set(FLICKER_T)
    }

    fn prepared_set(&self) -> omg_core::AssertionSet<VideoWindow, VideoPrep> {
        video_prepared_assertion_set(FLICKER_T)
    }

    fn preparer(&self) -> Box<dyn omg_core::stream::Prepare<VideoWindow, Prepared = VideoPrep>> {
        Box::new(VideoPrepare::new(FLICKER_T))
    }

    fn make_sample(&self, items: &[VideoItem], center: usize) -> VideoWindow {
        let frames = items
            .iter()
            .map(|it| VideoFrame {
                index: it.gt.index,
                time: it.gt.time,
                dets: it.dets.iter().map(|d| d.scored).collect(),
            })
            .collect();
        VideoWindow::new(frames, center)
    }

    fn uncertainty(&self, item: &VideoItem) -> f64 {
        detection_uncertainty(item.dets.iter().map(|d| d.scored.score))
    }

    fn initial_labels(&self) -> TrainingBatch {
        TrainingBatch::new()
    }

    fn label_into(&self, labels: &mut TrainingBatch, pool_index: usize) {
        label_frame_into(labels, &self.pool_frames[pool_index]);
    }

    fn train(&self, model: &mut SimDetector, labels: &TrainingBatch, rng: &mut StdRng) {
        if !labels.is_empty() {
            model.train(labels, 4, rng);
        }
    }

    fn evaluate(&self, model: &SimDetector) -> f64 {
        evaluate_map(model, &self.test_frames)
    }

    fn weak_supervision(&self, model: &SimDetector, rng: &mut StdRng) -> Option<(f64, f64)> {
        Some(video_weak_supervision(self, model, 6, rng))
    }

    fn item_errors(&self, assertion: &str, items: &[VideoItem], center: usize) -> Vec<FoundError> {
        // PANIC: item_errors receives a center inside `items`.
        match assertion {
            "multibox" => duplicate_errors(&items[center].dets, center),
            "appear" => clutter_errors(&items[center].dets, center),
            "flicker" => flicker_miss_errors(items, center),
            _ => Vec::new(),
        }
    }
}

pub(crate) fn duplicate_errors(dets: &[Detection], frame: usize) -> Vec<FoundError> {
    // Table 5 scores a multibox cluster by "the maximum confidence of 3
    // vehicles that highly overlap": attribute the cluster's max
    // confidence to the error — one error per duplicated cluster, no
    // matter how many duplicate members it has.
    let mut clusters: Vec<u64> = dets
        .iter()
        .filter(|d| matches!(d.provenance, Provenance::Duplicate { .. }))
        .map(|d| d.track_id())
        .collect();
    clusters.sort_unstable();
    clusters.dedup();
    clusters
        .into_iter()
        .map(|track| {
            let cluster_max = dets
                .iter()
                .filter(|o| o.track_id() == track)
                .map(|o| o.scored.score)
                .fold(0.0f64, omg_core::float::fmax);
            FoundError {
                confidence: cluster_max,
                frame,
                source: track,
            }
        })
        .collect()
}

pub(crate) fn clutter_errors(dets: &[Detection], frame: usize) -> Vec<FoundError> {
    dets.iter()
        .filter(|d| matches!(d.provenance, Provenance::Clutter { .. }))
        .map(|d| FoundError {
            confidence: d.scored.score,
            frame,
            source: d.track_id(),
        })
        .collect()
}

/// Missed objects at `center` that were detected on both adjacent frames
/// (a flicker miss); confidence = mean of the neighbours' confidences.
fn flicker_miss_errors(items: &[VideoItem], center: usize) -> Vec<FoundError> {
    if center == 0 || center + 1 >= items.len() {
        return Vec::new();
    }
    let detected_conf = |item_idx: usize, track: u64| -> Option<f64> {
        // PANIC: called only with center±1, bounds-checked above.
        items[item_idx]
            .dets
            .iter()
            .find_map(|d| match d.provenance {
                Provenance::Object { track_id, .. } if track_id == track => Some(d.scored.score),
                _ => None,
            })
    };
    let mut errors = Vec::new();
    // PANIC: center + 1 < items.len() was checked at entry.
    for signal in items[center].gt.signals.iter().filter(|s| !s.is_clutter()) {
        if detected_conf(center, signal.track_id).is_some() {
            continue;
        }
        if let (Some(before), Some(after)) = (
            detected_conf(center - 1, signal.track_id),
            detected_conf(center + 1, signal.track_id),
        ) {
            errors.push(FoundError {
                confidence: (before + after) / 2.0,
                frame: center,
                source: signal.track_id,
            });
        }
    }
    errors
}

/// All detection confidences in the stream (the Figure 3 population).
pub fn all_confidences(items: &[VideoItem]) -> Vec<f64> {
    items
        .iter()
        .flat_map(|it| it.dets.iter().map(|x| x.scored.score))
        .collect()
}

/// Builds the standard pretrained detector for the video experiments.
pub fn pretrained_detector(seed: u64) -> SimDetector {
    SimDetector::pretrained(DetectorConfig::default(), seed)
}

/// The registry's shared pretrained detector (model seed 1): pretraining
/// is by far the most expensive step of building a harness (a
/// 7,000-example corpus, 30 epochs), and the conformance suite varies
/// the *world* per case, so one cached model serves them all.
pub fn shared_pretrained_detector() -> &'static SimDetector {
    static DETECTOR: OnceLock<SimDetector> = OnceLock::new();
    DETECTOR.get_or_init(|| pretrained_detector(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_active::ActiveLearner;
    use omg_core::runtime::ThreadPool;
    use omg_scenario::{
        dedup_errors, errors_by_assertion, score_scenario, stream_score_scenario, ScenarioLearner,
    };
    use rand::SeedableRng;

    fn tiny_scenario() -> VideoScenario {
        VideoScenario::night_street(5, 120, 80)
    }

    #[test]
    fn scenario_has_disjoint_pool_and_test() {
        let s = tiny_scenario();
        assert_eq!(s.pool_frames.len(), 120);
        assert_eq!(s.test_frames.len(), 80);
        assert_ne!(s.pool_frames[0], s.test_frames[0]);
    }

    #[test]
    fn windows_clamp_at_edges() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        let w0 = window_at(&s.pool_frames, &dets, 0);
        assert_eq!(w0.center, 0);
        assert_eq!(w0.len(), WINDOW_HALF + 1);
        let wmid = window_at(&s.pool_frames, &dets, 60);
        assert_eq!(wmid.len(), 2 * WINDOW_HALF + 1);
        assert_eq!(wmid.center, WINDOW_HALF);
        let wend = window_at(&s.pool_frames, &dets, 119);
        assert_eq!(wend.center, WINDOW_HALF);
        assert_eq!(wend.len(), WINDOW_HALF + 1);
    }

    #[test]
    fn generic_samples_match_hand_built_windows() {
        // The trait's make_sample must build exactly the clamped window
        // the pre-engine `window_at` reference built.
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        let items = s.run_model(&det);
        for center in [0usize, 1, 60, 118, 119] {
            let lo = center.saturating_sub(WINDOW_HALF);
            let hi = (center + WINDOW_HALF + 1).min(items.len());
            let sample = s.make_sample(&items[lo..hi], center - lo);
            assert_eq!(sample, window_at(&s.pool_frames, &dets, center));
        }
    }

    #[test]
    fn assertions_fire_on_night_street() {
        let s = tiny_scenario();
        let items = s.run_model(&pretrained_detector(1));
        let set = s.assertion_set();
        let (sev, unc) = score_scenario(&s, &set, &items, &ThreadPool::sequential());
        assert_eq!(sev.len(), 120);
        assert_eq!(unc.len(), 120);
        let total_fires: f64 = sev.iter_rows().flat_map(|r| r.iter()).sum();
        assert!(
            total_fires > 0.0,
            "the pretrained night detector must trip assertions"
        );
        // The fan-out path merges in frame order: identical scores at
        // any thread count.
        for threads in [2, 8] {
            let (psev, punc) = score_scenario(&s, &set, &items, &ThreadPool::exact(threads));
            assert_eq!(psev, sev, "severities differ at {threads} threads");
            assert_eq!(punc, unc, "uncertainties differ at {threads} threads");
        }
    }

    #[test]
    fn learner_trains_and_pool_shrinks() {
        let s = tiny_scenario();
        let mut learner = ScenarioLearner::new(s, pretrained_detector(1));
        let mut rng = StdRng::seed_from_u64(2);
        let pool = learner.pool();
        assert_eq!(pool.len(), 120);
        learner.label_and_train(&[0, 5, 10], &mut rng);
        assert_eq!(learner.unlabeled_len(), 117);
        let metric = learner.evaluate();
        assert!(metric > 0.0 && metric < 100.0, "mAP% {metric}");
    }

    #[test]
    fn duplicate_selection_labels_each_frame_once() {
        // Regression: a selection with repeated positions used to label
        // (and budget-count) the frame twice; the learner must end up in
        // exactly the state a deduplicated selection produces.
        let mut dup = ScenarioLearner::new(tiny_scenario(), pretrained_detector(1));
        let mut clean = ScenarioLearner::new(tiny_scenario(), pretrained_detector(1));
        let mut rng_dup = StdRng::seed_from_u64(2);
        let mut rng_clean = StdRng::seed_from_u64(2);
        dup.label_and_train(&[7, 3, 7, 7, 3], &mut rng_dup);
        clean.label_and_train(&[3, 7], &mut rng_clean);
        assert_eq!(dup.unlabeled_len(), 118);
        assert_eq!(dup.unlabeled_len(), clean.unlabeled_len());
        // Identical training data => identical detector behaviour.
        let frame = &dup.scenario().test_frames[0];
        assert_eq!(
            dup.model().detect_frame(frame.index, &frame.signals),
            clean.model().detect_frame(frame.index, &frame.signals),
            "double-labeled batch changed training"
        );
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let s = tiny_scenario();
        let items = s.run_model(&pretrained_detector(1));
        let want = score_scenario(&s, &s.assertion_set(), &items, &ThreadPool::sequential());
        let stream_set = s.prepared_set();
        let preparer = s.preparer();
        for threads in [1, 2, 8] {
            let got = stream_score_scenario(
                &s,
                &stream_set,
                &preparer,
                &items,
                &ThreadPool::exact(threads),
            );
            assert_eq!(got, want, "stream diverges from batch at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_at_rejects_out_of_range_center() {
        let s = tiny_scenario();
        let det = pretrained_detector(1);
        let dets = detect_all(&det, &s.pool_frames);
        window_at(&s.pool_frames, &dets, s.pool_frames.len());
    }

    fn det(score: f64, provenance: Provenance) -> Detection {
        use omg_eval::ScoredBox;
        use omg_geom::BBox2D;
        Detection {
            scored: ScoredBox {
                bbox: BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap(),
                class: 0,
                score,
            },
            provenance,
        }
    }

    #[test]
    fn multi_member_cluster_counts_as_one_error() {
        // Regression: a cluster with two Duplicate members used to push
        // its max confidence once per member.
        let dets = vec![
            det(
                0.9,
                Provenance::Object {
                    track_id: 5,
                    true_class: 0,
                },
            ),
            det(
                0.8,
                Provenance::Duplicate {
                    track_id: 5,
                    true_class: 0,
                },
            ),
            det(
                0.7,
                Provenance::Duplicate {
                    track_id: 5,
                    true_class: 0,
                },
            ),
            det(
                0.6,
                Provenance::Duplicate {
                    track_id: 9,
                    true_class: 0,
                },
            ),
        ];
        let errs = duplicate_errors(&dets, 3);
        assert_eq!(errs.len(), 2, "one error per duplicated cluster");
        assert_eq!(
            errs[0],
            FoundError {
                confidence: 0.9,
                frame: 3,
                source: 5
            }
        );
        assert_eq!(
            errs[1],
            FoundError {
                confidence: 0.6,
                frame: 3,
                source: 9
            }
        );
    }

    #[test]
    fn equal_confidence_clutter_errors_stay_distinct() {
        // The clutter extractor tags sources so confidence ties survive
        // the identity-keyed dedup.
        let dets = vec![
            det(0.8, Provenance::Clutter { track_id: 1 }),
            det(0.8, Provenance::Clutter { track_id: 2 }),
        ];
        let mut found = clutter_errors(&dets, 4);
        dedup_errors(&mut found);
        assert_eq!(
            found.len(),
            2,
            "equal-confidence clutter errors are distinct"
        );
    }

    #[test]
    fn error_collection_is_well_formed() {
        let s = tiny_scenario();
        let items = s.run_model(&pretrained_detector(1));
        let set = s.assertion_set();
        let by_assertion = errors_by_assertion(&s, &set, &items);
        assert_eq!(by_assertion.len(), 3);
        for (_, errs) in &by_assertion {
            for e in errs {
                assert!((0.0..=1.0).contains(&e.confidence));
                assert!(e.frame < 120);
            }
        }
        let confs = all_confidences(&items);
        assert!(!confs.is_empty());
    }

    #[test]
    fn duplicate_cluster_confidence_ignores_detection_order() {
        use omg_eval::ScoredBox;
        use omg_geom::BBox2D;
        let bb = BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let dup = |score: f64| Detection {
            scored: ScoredBox {
                bbox: bb,
                class: 0,
                score,
            },
            provenance: Provenance::Duplicate {
                track_id: 7,
                true_class: 0,
            },
        };
        let mut dets = vec![dup(0.3), dup(0.9), dup(0.6)];
        let fwd = duplicate_errors(&dets, 4);
        dets.reverse();
        let rev = duplicate_errors(&dets, 4);
        // One cluster; its confidence is the fmax fold over member
        // scores, identical whichever way the detections are iterated.
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].confidence, 0.9);
        assert_eq!(fwd[0].confidence.to_bits(), rev[0].confidence.to_bits());
    }
}
