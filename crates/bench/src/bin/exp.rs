//! The experiment multiplexer: one binary for the whole regeneration
//! suite.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p omg-bench --bin exp -- <experiment> \
//!     [--threads N] [--seed S]
//! ```
//!
//! `<experiment>` is one of the names in
//! [`omg_bench::experiments::EXPERIMENTS`] (`table1` … `table6`,
//! `fig3` … `fig9`, `gallery`, `service` — the multi-tenant soak, which
//! also archives `BENCH_service.json`) or `all` (the default), which
//! regenerates everything and archives the outputs under
//! `target/experiments/`.
//! `--threads` pins the scoring fan-out width (results are identical at
//! any setting); `--seed` overrides the default seed of the
//! seed-parameterized experiments. Anything else — an unknown flag, a
//! typo'd `--thread`, a value on a bare switch, a second positional —
//! is rejected with a usage message instead of being silently ignored.

/// The first positional (non-flag) argument, wherever it sits relative
/// to the flags. Every `exp` flag takes a value, so a bare `--flag`
/// consumes the following token; `exp --seed 5 table3` must select
/// `table3`, not silently fall back to `all`.
fn positional(args: &[String]) -> Option<&str> {
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            if !flag.contains('=') {
                it.next();
            }
            continue;
        }
        return Some(arg);
    }
    None
}

const USAGE: &str = "exp [<experiment>|all] [--threads N] [--seed S]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Reject unknown/malformed arguments before running anything: a
    // typo'd flag must not silently select a wrong configuration.
    omg_bench::validate_args_or_exit(
        &args,
        &omg_bench::CliSpec {
            value_flags: &["--threads", "--seed"],
            bare_flags: &[],
            max_positionals: 1,
        },
        USAGE,
    );
    let name = positional(&args).unwrap_or("all");
    if !omg_bench::experiments::is_known(name) {
        eprintln!(
            "error: unknown experiment {name:?}\nusage: {USAGE}\nexperiments: {}",
            omg_bench::experiments::EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    }
    omg_bench::init_runtime_from_args();
    let seed = omg_bench::parse_u64_flag_cli(&args, "--seed");
    omg_bench::experiments::run_cli(name, seed);
}
