//! Regenerates Table 6 (human-label validation, Appendix E).
fn main() {
    print!("{}", omg_bench::experiments::table6::run(33));
}
