//! Regenerates Table 6 (human-label validation, Appendix E).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::table6::run(33));
}
