//! Regenerates Figure 5 (ECG active learning with a single assertion).
fn main() {
    print!("{}", omg_bench::experiments::fig5::run(4, 5, 100));
}
