//! Regenerates Figure 5 (ECG active learning with a single assertion).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::fig5::run(4, 5, 100));
}
