//! Regenerates Figure 9 (full active-learning curves, all rounds).
fn main() {
    omg_bench::init_runtime_from_args();
    print!(
        "{}",
        omg_bench::experiments::fig4::run_video(2, 5, 100, true)
    );
    print!("{}", omg_bench::experiments::fig4::run_av(4, 5, 60, true));
}
