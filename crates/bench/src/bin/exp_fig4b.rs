//! Regenerates Figure 4b (AV active learning, rounds 2-5).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::fig4::run_av(4, 5, 60, false));
}
