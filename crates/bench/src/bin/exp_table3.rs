//! Regenerates Table 3 (precision of deployed assertions).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::table3::run(2024));
}
