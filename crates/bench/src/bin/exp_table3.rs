//! Regenerates Table 3 (precision of deployed assertions).
fn main() {
    print!("{}", omg_bench::experiments::table3::run(2024));
}
