//! Calibration scratchpad: quick, small-scale versions of the headline
//! experiments, used to tune simulator constants. Not part of the
//! regeneration suite (`exp_*` binaries are).

use omg_active::{
    run_rounds, BalStrategy, FallbackPolicy, RandomStrategy, SelectionStrategy,
    UncertaintyStrategy, UniformAssertionStrategy,
};
use omg_bench::scenarios::learner as scenario_learner;
use omg_bench::{avx, ecgx, video};
use omg_scenario::{score_scenario, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    omg_bench::validate_args_or_exit(
        &std::env::args().collect::<Vec<_>>(),
        &omg_bench::CliSpec {
            value_flags: &["--threads"],
            bare_flags: &[],
            max_positionals: 0,
        },
        "calibrate [--threads N]",
    );
    omg_bench::init_runtime_from_args();
    let t0 = std::time::Instant::now();

    // --- Video: pretrained quality + weak supervision ---
    let scenario = video::VideoScenario::night_street(11, 600, 400);
    let detector = video::pretrained_detector(1);
    let pre_map = video::evaluate_map(&detector, &scenario.test_frames);
    println!("[video] pretrained mAP% = {pre_map:.1}");

    let items = scenario.run_model(&detector);
    let set = scenario.assertion_set();
    let (sev, _unc) = score_scenario(&scenario, &set, &items, &omg_bench::runtime());
    for (m, name) in set.names().iter().enumerate() {
        let fires = sev.iter_rows().filter(|r| r[m] > 0.0).count();
        println!("[video] {name} fires on {fires}/{} frames", sev.len());
    }

    let mut rng = StdRng::seed_from_u64(5);
    let (before, after) = video::video_weak_supervision(&scenario, &detector, 6, &mut rng);
    println!(
        "[video] weak supervision: {before:.1} -> {after:.1} mAP% (relative {:+.1}%)",
        100.0 * (after - before) / before.max(1e-9)
    );

    // --- Video: one AL trial per strategy ---
    for (name, strategy) in strategies() {
        let mut s = strategy;
        let scenario = video::VideoScenario::night_street(11, 600, 400);
        let mut learner = scenario_learner(scenario, video::pretrained_detector(1));
        let mut rng = StdRng::seed_from_u64(17);
        let records = run_rounds(&mut learner, s.as_mut(), 5, 60, &mut rng);
        let series: Vec<String> = records.iter().map(|r| format!("{:.1}", r.metric)).collect();
        println!("[video-al] {name:<12} {}", series.join(" "));
    }
    println!("[t] {:.1}s", t0.elapsed().as_secs_f64());

    // --- ECG ---
    let ecg = ecgx::EcgScenario::standard(7);
    let clf = ecgx::pretrained_classifier(&ecg, 1);
    println!(
        "[ecg] pretrained accuracy% = {:.1}",
        ecgx::evaluate_accuracy(&clf, &ecg.test)
    );
    let (sev, _) = score_scenario(
        &ecg,
        &ecg.assertion_set(),
        &ecg.run_model(&clf),
        &omg_bench::runtime(),
    );
    let fires = sev.iter_rows().filter(|r| r[0] > 0.0).count();
    println!("[ecg] assertion fires on {fires}/{} windows", sev.len());
    let mut rng = StdRng::seed_from_u64(5);
    let (b, a) = ecgx::ecg_weak_supervision(&ecg, &clf, 600, &mut rng);
    println!("[ecg] weak supervision: {b:.1} -> {a:.1} acc%");
    for (name, strategy) in strategies() {
        let mut s = strategy;
        let ecg = ecgx::EcgScenario::standard(7);
        let clf = ecgx::pretrained_classifier(&ecg, 1);
        let mut learner = scenario_learner(ecg, clf);
        let mut rng = StdRng::seed_from_u64(23);
        let records = run_rounds(&mut learner, s.as_mut(), 5, 100, &mut rng);
        let series: Vec<String> = records.iter().map(|r| format!("{:.1}", r.metric)).collect();
        println!("[ecg-al] {name:<12} {}", series.join(" "));
    }
    println!("[t] {:.1}s", t0.elapsed().as_secs_f64());

    // --- AV ---
    let av = avx::AvScenario::standard(3);
    let cam = avx::pretrained_camera(1);
    println!(
        "[av] pretrained mAP% = {:.1}",
        avx::evaluate_map(&cam, &av.test)
    );
    let av_items = av.run_model(&cam);
    let set = av.assertion_set();
    let (sev, _) = score_scenario(&av, &set, &av_items, &omg_bench::runtime());
    for (m, name) in set.names().iter().enumerate() {
        let fires = sev.iter_rows().filter(|r| r[m] > 0.0).count();
        println!("[av] {name} fires on {fires}/{} samples", sev.len());
    }
    let mut rng = StdRng::seed_from_u64(5);
    let (b, a) = avx::av_weak_supervision(&av, &cam, 2, &mut rng);
    println!("[av] weak supervision: {b:.1} -> {a:.1} mAP%");
    for (name, strategy) in strategies() {
        let mut s = strategy;
        let av = avx::AvScenario::standard(3);
        let cam = avx::pretrained_camera(1);
        let mut learner = scenario_learner(av, cam);
        let mut rng = StdRng::seed_from_u64(29);
        let records = run_rounds(&mut learner, s.as_mut(), 5, 50, &mut rng);
        let series: Vec<String> = records.iter().map(|r| format!("{:.1}", r.metric)).collect();
        println!("[av-al] {name:<12} {}", series.join(" "));
    }
    println!("[t] total {:.1}s", t0.elapsed().as_secs_f64());
}

fn strategies() -> Vec<(&'static str, Box<dyn SelectionStrategy>)> {
    vec![
        ("random", Box::new(RandomStrategy)),
        ("uncertainty", Box::new(UncertaintyStrategy)),
        ("uniform-ma", Box::new(UniformAssertionStrategy)),
        (
            "bal",
            Box::new(BalStrategy::new(FallbackPolicy::Uncertainty)),
        ),
    ]
}
