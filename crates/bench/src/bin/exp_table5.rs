//! Regenerates Table 5 (assertion taxonomy, Appendix B).
fn main() {
    print!("{}", omg_bench::experiments::table5::run());
}
