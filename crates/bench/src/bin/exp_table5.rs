//! Regenerates Table 5 (assertion taxonomy, Appendix B).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::table5::run());
}
