//! Regenerates Figure 4a (night-street active learning, rounds 2-5).
fn main() {
    omg_bench::init_runtime_from_args();
    print!(
        "{}",
        omg_bench::experiments::fig4::run_video(2, 5, 100, false)
    );
    print!(
        "{}",
        omg_bench::experiments::fig4::label_savings(2, 5, 100, 85.0)
    );
}
