//! Sequential-vs-parallel monitor throughput (windows/sec) on the
//! night-street video stream — the scaling measurement behind the
//! parallel batch runtime (`Monitor::process_batch`).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p omg-bench --bin exp_throughput -- \
//!     [--threads N] [--windows W]
//! ```
//!
//! Runs the sequential `Monitor::process` loop, then `process_batch` at
//! 1, 2, 4, … up to a ceiling of `--threads` workers (else the
//! `OMG_THREADS` environment variable, else available parallelism),
//! verifying on every run that the parallel path's reports and database
//! match the sequential path bit-for-bit. Results print as a table and
//! land in `BENCH_throughput.json` under the same `target/bench/`
//! directory the criterion harnesses write to.

use std::time::Instant;

use omg_bench::video::{monitor_windows, FLICKER_T};
use omg_core::runtime::ThreadPool;
use omg_core::Monitor;
use omg_domains::{video_assertion_set, VideoWindow};

/// Best-of-`reps` wall-clock for one full pass over the stream.
fn best_secs<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let env_threads = std::env::var("OMG_THREADS")
        .ok()
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("OMG_THREADS expects a positive integer, got {v:?}"),
        });
    let max_threads = omg_bench::parse_usize_flag(&args, "--threads")
        .or(env_threads)
        .unwrap_or_else(|| ThreadPool::available().threads());
    let n_windows = omg_bench::parse_usize_flag(&args, "--windows").unwrap_or(2000);
    let reps = 3;

    eprintln!("building {n_windows} night-street windows…");
    let windows: Vec<VideoWindow> = monitor_windows(n_windows, 3);
    let fresh = || Monitor::with_assertions(video_assertion_set(FLICKER_T));

    // Reference run: the sequential per-invocation monitor.
    let mut reference = fresh();
    let reference_reports: Vec<_> = windows.iter().map(|w| reference.process(w)).collect();
    let seq_secs = best_secs(reps, || {
        let mut m = fresh();
        for w in &windows {
            std::hint::black_box(m.process(w));
        }
    });
    let seq_wps = n_windows as f64 / seq_secs;

    println!(
        "monitor throughput, {n_windows} windows x {} assertions (best of {reps}):",
        reference.assertions().len()
    );
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "sequential", seq_wps, 1.0);

    let mut rows = vec![("sequential".to_string(), seq_wps)];
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = ThreadPool::new(threads);
        // Correctness first: the parallel path must reproduce the
        // sequential reports and database exactly.
        let mut check = fresh();
        let reports = check.process_batch(&windows, &pool);
        assert_eq!(
            reports, reference_reports,
            "process_batch({threads}) diverged from the sequential reports"
        );
        assert_eq!(
            check.db(),
            reference.db(),
            "process_batch({threads}) diverged from the sequential database"
        );
        let secs = best_secs(reps, || {
            let mut m = fresh();
            std::hint::black_box(m.process_batch(&windows, &pool));
        });
        let wps = n_windows as f64 / secs;
        let label = format!("batch x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / seq_wps);
        rows.push((label, wps));
        if threads == max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
    println!("  (parallel output verified bit-for-bit against sequential)");

    // Machine-readable trajectory, alongside the criterion JSONs.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"windows\": {n_windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join("BENCH_throughput.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
