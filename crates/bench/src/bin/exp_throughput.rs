//! Sequential-vs-parallel monitor throughput (windows/sec) on the
//! night-street video stream — the scaling measurement behind the
//! parallel batch runtime (`Monitor::process_batch`) — plus, with
//! `--stream`, the batch-vs-streaming comparison behind the shared
//! window-preparation layer.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p omg-bench --bin exp_throughput -- \
//!     [--threads N] [--windows W] \
//!     [--stream | --sweep-threads 1,2,4,8 | --crowded | --check-stream-archive]
//! ```
//!
//! Unknown or malformed arguments (a typo'd `--thread`, `--stream=yes`)
//! are rejected with a usage message. `--check-stream-archive` verifies
//! that every scenario in the runtime registry has its
//! `BENCH_stream_<name>.json` **and** `BENCH_scaling_<name>.json`
//! archived, that the multi-tenant soak's `BENCH_service.json` is
//! present, and that `BENCH_crowded.json` is present **and shows the
//! indexed matchers beating the O(n²) reference at 1000 boxes/frame** —
//! the CI gate that keeps the streaming, scaling, service, and
//! asymptotic benchmarks' coverage honest. On noisy shared runners the
//! relative-timing half of that gate can be softened with
//! `OMG_CROWDED_GATE_MARGIN` (e.g. `0.8` requires indexed ≥ 0.8× the
//! reference rate); unset, the strict indexed > reference contract
//! applies.
//!
//! `--crowded` runs the asymptotic matcher benchmark: clutter-heavy
//! windows at 100/300/1000 boxes per frame through the full video
//! assertion set (tracker association inside `flicker`, duplicate
//! triples inside `multibox`) under both matcher backends — the
//! grid-indexed default and the preserved O(n²) reference
//! (`omg_geom::reference`) — asserting bit-for-bit identical severities
//! on every run and archiving both timing curves as
//! `BENCH_crowded.json`.
//!
//! Default mode runs the sequential `Monitor::process` loop, then
//! `process_batch` at 1, 2, 4, … up to a ceiling of `--threads` workers
//! (else the `OMG_THREADS` environment variable, else available
//! parallelism), verifying on every run that the parallel path's reports
//! and database match the sequential path bit-for-bit. Results print as
//! a table and land in `BENCH_throughput.json` under the same
//! committed top-level `benchmarks/` directory the criterion harnesses write to.
//!
//! `--stream` mode instead compares the batch scorers (every assertion
//! re-derives its window preparation) against the streaming scorers (one
//! preparation per window, shared by the whole set) on **every scenario
//! in the runtime registry** (`omg_bench::scenarios::all_scenarios`) —
//! no hardcoded scenario list, so a newly registered scenario is benched
//! and archived automatically — asserting bit-for-bit identical
//! severities on every run and writing one
//! `BENCH_stream_<scenario>.json` per scenario. Stream mode always runs
//! the fixed 1/2/8 thread ladder (the engine's equivalence contract is
//! specified at those counts); `--threads` applies to the default mode
//! only and is rejected alongside `--stream` to avoid silently ignoring
//! it.
//!
//! `--sweep-threads 1,2,4,8` runs the **single-stream scaling curve**:
//! for every registered scenario, the streaming scorer over one stream
//! at each listed thread count, asserting bit-for-bit identical
//! severities on every run and writing one `BENCH_scaling_<scenario>.json`
//! per scenario — the persistent worker pool's headline artifact
//! (threads are supposed to *help* a single stream, not just not hurt
//! it).

use std::time::Instant;

use omg_bench::video::{monitor_windows, FLICKER_T};
use omg_core::runtime::ThreadPool;
use omg_core::Monitor;
use omg_domains::{video_assertion_set, VideoWindow};
use omg_scenario::DynScenario;

/// Thread counts the `--stream` equivalence + throughput runs cover.
const STREAM_THREADS: [usize; 3] = [1, 2, 8];

/// Best-of-`reps` wall-clock for one full pass over the stream.
fn best_secs<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes one scenario's rows as `BENCH_stream_<scenario>.json`. A
/// write failure is fatal: the archive is the contract CI enforces
/// (`--check-stream-archive`), so a missing file must fail the run, not
/// scroll by as a warning.
fn write_stream_json(scenario: &str, windows: usize, rows: &[(String, f64)]) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"stream_{scenario}\",\n  \"windows\": {windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join(format!("BENCH_stream_{scenario}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Extracts one row's `windows_per_sec` from an archived benchmark JSON
/// by its `id` (the archives are written by this binary in a fixed
/// format, so a lexical scan is exact).
fn archived_rate(json: &str, id: &str) -> Option<f64> {
    let marker = format!("\"id\": \"{id}\", \"windows_per_sec\": ");
    let start = json.find(&marker)? + marker.len();
    let rest = &json[start..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}

/// Validates the archived `BENCH_crowded.json`: both backends' rows must
/// be present at the densest sweep point, and the indexed matchers must
/// clear `margin` × the O(n²) reference rate there — the asymptotic win
/// is a gated contract, not a claim. Local runs use the strict default
/// margin 1.0 (indexed must actually beat the reference); CI relaxes it
/// via `OMG_CROWDED_GATE_MARGIN` because a loaded shared runner can
/// flake a strict relative-timing assertion even when the true margin
/// is ~2×, while a genuine regression to O(n²) lands far below any
/// sane soft margin.
fn check_crowded_archive(dir: &std::path::Path, margin: f64) -> Result<(), String> {
    let path = dir.join("BENCH_crowded.json");
    let json = std::fs::read_to_string(&path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    let densest = omg_bench::crowd::CROWD_SIZES[omg_bench::crowd::CROWD_SIZES.len() - 1];
    let indexed = archived_rate(&json, &format!("indexed x{densest}"))
        .ok_or_else(|| format!("BENCH_crowded.json has no 'indexed x{densest}' row"))?;
    let reference = archived_rate(&json, &format!("reference x{densest}"))
        .ok_or_else(|| format!("BENCH_crowded.json has no 'reference x{densest}' row"))?;
    if indexed <= reference * margin {
        return Err(format!(
            "BENCH_crowded.json shows the indexed matchers below {margin:.2}x the O(n²) \
             reference at {densest} boxes/frame ({indexed:.1} vs {reference:.1} windows/sec)"
        ));
    }
    Ok(())
}

/// The crowded-gate margin from `OMG_CROWDED_GATE_MARGIN`: 1.0 (strict)
/// when unset, exit-2 on garbage or a non-positive / >1 value (a margin
/// above 1 would demand *more* than beating the reference — certainly a
/// typo).
fn crowded_gate_margin() -> f64 {
    match std::env::var("OMG_CROWDED_GATE_MARGIN") {
        Err(_) => 1.0,
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(m) if m.is_finite() && m > 0.0 && m <= 1.0 => m,
            _ => {
                eprintln!("error: OMG_CROWDED_GATE_MARGIN must be a number in (0, 1], got {raw:?}");
                std::process::exit(2);
            }
        },
    }
}

/// The `--check-stream-archive` mode: verifies every registered
/// scenario has its `BENCH_stream_<name>.json` **and** its
/// `BENCH_scaling_<name>.json` archived (the CI gate behind "a
/// registered scenario cannot silently drop out of the streaming or
/// scaling benchmarks"), plus the service soak and crowded-matcher
/// archives.
fn check_stream_archive() {
    let dir = criterion::bench_output_dir();
    let mut missing: Vec<String> = omg_bench::scenarios::SCENARIO_NAMES
        .into_iter()
        .flat_map(|name| {
            [
                format!("BENCH_stream_{name}.json"),
                format!("BENCH_scaling_{name}.json"),
            ]
        })
        .filter(|file| !dir.join(file).exists())
        .collect();
    // The multi-tenant soak archive is part of the same contract: a
    // registered service benchmark cannot silently drop out either.
    if !dir.join("BENCH_service.json").exists() {
        missing.push("BENCH_service.json".to_string());
    }
    // The crowded-matcher archive is content-checked, not just
    // presence-checked: it must record the indexed matchers beating the
    // reference at the densest sweep point (softened by
    // OMG_CROWDED_GATE_MARGIN on noisy shared runners).
    if let Err(e) = check_crowded_archive(&dir, crowded_gate_margin()) {
        eprintln!(
            "error: {e}\nrun `exp_throughput --crowded` first (and investigate if \
             the indexed matchers regressed)"
        );
        std::process::exit(1);
    }
    if missing.is_empty() {
        println!(
            "bench archive complete: {} scenarios (stream + scaling) + service soak \
             + crowded matchers under {}",
            omg_bench::scenarios::SCENARIO_NAMES.len(),
            dir.display()
        );
    } else {
        eprintln!(
            "error: bench archives missing under {}: {}\n\
             run `exp_throughput --stream`, `exp_throughput --sweep-threads 1,2,4,8`, \
             and `exp service` first",
            dir.display(),
            missing.join(", ")
        );
        std::process::exit(1);
    }
}

/// The `--crowded` mode: the asymptotic matcher benchmark. For each
/// density on the [`omg_bench::crowd::CROWD_SIZES`] ladder, scores
/// `n_windows` clutter-heavy windows through the full video assertion
/// set under both matcher backends, asserts the severities are
/// bit-for-bit identical, and archives both timing curves as
/// `BENCH_crowded.json`.
///
/// Timing is paired like the other modes: each round times the indexed
/// pass then the reference pass back-to-back, and the quietest whole
/// round per density is archived, so the comparison is made under one
/// machine-load epoch.
fn run_crowded_mode(n_windows: usize, reps: usize) {
    use omg_geom::matchers::{with_backend, MatchBackend};
    let set = video_assertion_set(FLICKER_T);
    println!(
        "== crowded-scene matchers: grid-indexed vs O(n²) reference, \
         {n_windows} windows per density ==\n"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for &size in &omg_bench::crowd::CROWD_SIZES {
        let windows = omg_bench::crowd::crowd_windows(size, n_windows, 3);
        let score = || -> Vec<_> { windows.iter().map(|w| set.check_all(w)).collect() };
        // Correctness first (and a warm-up pass per backend): identical
        // severities through the full assertion set on every run.
        let t0 = Instant::now();
        let indexed_sev = with_backend(MatchBackend::Indexed, score);
        let est_pass = t0.elapsed().as_secs_f64();
        let reference_sev = with_backend(MatchBackend::Reference, score);
        assert_eq!(
            indexed_sev, reference_sev,
            "indexed severities diverged from the O(n²) reference at {size} boxes/frame"
        );
        let inner = inner_passes(est_pass);
        let mut best_round = [f64::INFINITY; 2];
        let mut best_total = f64::INFINITY;
        for _ in 0..reps {
            let mut times = [0.0f64; 2];
            for (slot, backend) in [MatchBackend::Indexed, MatchBackend::Reference]
                .into_iter()
                .enumerate()
            {
                let t0 = Instant::now();
                with_backend(backend, || {
                    for _ in 0..inner {
                        std::hint::black_box(score());
                    }
                });
                times[slot] = t0.elapsed().as_secs_f64() / inner as f64;
            }
            let total: f64 = times.iter().sum();
            if total < best_total {
                best_total = total;
                best_round = times;
            }
        }
        let indexed_wps = n_windows as f64 / best_round[0];
        let reference_wps = n_windows as f64 / best_round[1];
        println!("{size} boxes/frame (quietest of {reps} rounds):");
        println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
        println!(
            "  {:<22} {:>12.1} {:>9.2}x",
            format!("reference x{size}"),
            reference_wps,
            1.0
        );
        println!(
            "  {:<22} {:>12.1} {:>9.2}x",
            format!("indexed x{size}"),
            indexed_wps,
            indexed_wps / reference_wps
        );
        rows.push((format!("indexed x{size}"), indexed_wps));
        rows.push((format!("reference x{size}"), reference_wps));
    }
    println!("  (severities verified bit-for-bit across backends at every density)");
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"crowded\",\n  \"windows\": {n_windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join("BENCH_crowded.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Deduplicates a pool ladder by **effective fanout**. `ThreadPool::new`
/// clamps its fanout to the machine's cores, so ladder entries above
/// that run instruction-for-instruction identical schedules; measuring
/// them separately would report scheduler noise as a scaling
/// difference. Returns `(distinct, measure_of)`: indices of the pools
/// to actually time, and for each ladder entry the slot in `distinct`
/// whose measurement it shares.
fn dedupe_by_fanout(pools: &[ThreadPool]) -> (Vec<usize>, Vec<usize>) {
    let mut distinct: Vec<usize> = Vec::new();
    let measure_of = pools
        .iter()
        .enumerate()
        .map(|(i, pool)| {
            match distinct
                .iter()
                .position(|&j| pools[j].fanout() == pool.fanout())
            {
                Some(slot) => slot,
                None => {
                    distinct.push(i);
                    distinct.len() - 1
                }
            }
        })
        .collect();
    (distinct, measure_of)
}

/// Amortization factor for sub-50ms passes: scheduler jitter is a
/// visible fraction of a few-millisecond sample, so batch enough passes
/// into each timed sample that it spans ~50ms of wall-clock.
fn inner_passes(est_pass_secs: f64) -> usize {
    ((0.05 / est_pass_secs).ceil() as usize).clamp(1, 64)
}

/// Benchmarks one registered scenario's batch scorer against its
/// streaming scorer over the full stream at each thread count; every
/// streaming run is asserted bit-for-bit equal to the batch reference.
///
/// Timing is paired the same way as [`sweep_scenario`]: the sequential
/// batch pass and each distinct-fanout streaming pass are measured
/// round-robin and the quietest whole round is archived, so the
/// batch-vs-stream comparison is made under one machine-load epoch.
fn stream_scenario(scenario: &dyn DynScenario, reps: usize) {
    let name = scenario.name();
    let n_windows = scenario.len();
    let sequential = ThreadPool::sequential();
    let reference = scenario.score_batch(&sequential).0;
    let pools: Vec<ThreadPool> = STREAM_THREADS.iter().map(|&t| ThreadPool::new(t)).collect();
    let (distinct, measure_of) = dedupe_by_fanout(&pools);
    // Correctness first (and a warm-up pass per config): identical
    // severities at every thread count on every benchmark run.
    let mut est_pass = f64::INFINITY;
    for (pool, &threads) in pools.iter().zip(STREAM_THREADS.iter()) {
        let t0 = Instant::now();
        assert_eq!(
            scenario.score_stream(pool).0,
            reference,
            "{name}: streaming severities diverged from batch at {threads} threads"
        );
        est_pass = est_pass.min(t0.elapsed().as_secs_f64());
    }
    let inner = inner_passes(est_pass);
    // Round layout: batch first, then one slot per distinct fanout.
    let mut best_round: Vec<f64> = Vec::new();
    let mut best_total = f64::INFINITY;
    for _ in 0..reps {
        let mut times = Vec::with_capacity(1 + distinct.len());
        let t0 = Instant::now();
        for _ in 0..inner {
            std::hint::black_box(scenario.score_batch(&sequential).0);
        }
        times.push(t0.elapsed().as_secs_f64() / inner as f64);
        for &j in &distinct {
            let t0 = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(scenario.score_stream(&pools[j]).0);
            }
            times.push(t0.elapsed().as_secs_f64() / inner as f64);
        }
        let total: f64 = times.iter().sum();
        if total < best_total {
            best_total = total;
            best_round = times;
        }
    }
    let batch_wps = n_windows as f64 / best_round[0];
    println!("{name}: {n_windows} windows (quietest of {reps} rounds):");
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "batch x1", batch_wps, 1.0);
    let mut rows = vec![("batch x1".to_string(), batch_wps)];
    for (&threads, &slot) in STREAM_THREADS.iter().zip(&measure_of) {
        let wps = n_windows as f64 / best_round[1 + slot];
        let label = format!("stream x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / batch_wps);
        rows.push((label, wps));
    }
    println!("  (streaming severities verified bit-for-bit against batch)");
    write_stream_json(name, n_windows, &rows);
}

/// Parses the `--sweep-threads` value: a non-empty comma-separated
/// list of positive thread counts (e.g. `1,2,4,8`).
fn parse_thread_ladder(raw: &str) -> Result<Vec<usize>, String> {
    let ladder: Vec<usize> = raw
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    format!("--sweep-threads expects positive integers, got {part:?} in {raw:?}")
                })
        })
        .collect::<Result<_, _>>()?;
    if ladder.is_empty() {
        return Err("--sweep-threads expects at least one thread count".to_string());
    }
    Ok(ladder)
}

/// Measures one registered scenario's single-stream scaling curve: the
/// streaming scorer over the whole stream at each ladder thread count,
/// each run asserted bit-for-bit equal to the sequential batch
/// reference, archived as `BENCH_scaling_<scenario>.json`.
///
/// Two measurement choices keep the curve honest on a loaded or small
/// machine. First, ladder entries are deduplicated by **effective
/// fanout**: `ThreadPool::new` clamps its fanout to the machine's
/// cores, so e.g. `x4` and `x8` on a 2-core host run instruction-for-
/// instruction identical schedules — measuring them separately would
/// report scheduler noise as if it were a scaling difference, so they
/// share one measurement. Second, the distinct configs are timed
/// **round-robin** (rep 1 of every config, then rep 2, …) and the
/// quietest whole round is archived, so every point on the curve is
/// measured under the same machine-load epoch.
fn sweep_scenario(scenario: &dyn DynScenario, ladder: &[usize], reps: usize) {
    let name = scenario.name();
    let n_windows = scenario.len();
    let reference = scenario.score_batch(&ThreadPool::sequential()).0;
    let pools: Vec<ThreadPool> = ladder.iter().map(|&t| ThreadPool::new(t)).collect();
    let (distinct, measure_of) = dedupe_by_fanout(&pools);
    // Correctness first (and a warm-up pass per config): identical
    // severities at every thread count on every benchmark run.
    let mut est_pass = f64::INFINITY;
    for (pool, &threads) in pools.iter().zip(ladder) {
        let t0 = Instant::now();
        assert_eq!(
            scenario.score_stream(pool).0,
            reference,
            "{name}: streaming severities diverged from batch at {threads} threads"
        );
        est_pass = est_pass.min(t0.elapsed().as_secs_f64());
    }
    let inner = inner_passes(est_pass);
    // Paired comparison: every pass does the same work, so what the
    // curve measures is how the runtime spends the same machine. Taking
    // each config's best pass independently would compare config A
    // under one load epoch against config B under another; instead,
    // archive the quietest whole round (smallest summed wall-clock
    // across the ladder), so all points on the curve share one epoch.
    let mut best_round: Vec<f64> = Vec::new();
    let mut best_total = f64::INFINITY;
    for _ in 0..reps {
        let times: Vec<f64> = distinct
            .iter()
            .map(|&j| {
                let t0 = Instant::now();
                for _ in 0..inner {
                    std::hint::black_box(scenario.score_stream(&pools[j]).0);
                }
                t0.elapsed().as_secs_f64() / inner as f64
            })
            .collect();
        let total: f64 = times.iter().sum();
        if total < best_total {
            best_total = total;
            best_round = times;
        }
    }
    println!(
        "{name}: {n_windows} windows (quietest of {reps} rounds, {} distinct fanout{}):",
        distinct.len(),
        if distinct.len() == 1 { "" } else { "s" }
    );
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    let mut rows: Vec<(String, f64)> = Vec::new();
    let base_wps = n_windows as f64 / best_round[measure_of[0]];
    for (&threads, &slot) in ladder.iter().zip(&measure_of) {
        let wps = n_windows as f64 / best_round[slot];
        let label = format!("stream x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / base_wps);
        rows.push((label, wps));
    }
    println!("  (all runs verified bit-for-bit against the sequential batch reference)");
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scaling_{name}\",\n  \"windows\": {n_windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join(format!("BENCH_scaling_{name}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The `--sweep-threads` mode: the single-stream scaling curve on every
/// scenario in the runtime registry, one archive per scenario.
fn run_sweep_mode(ladder: &[usize], n_windows: usize, reps: usize) {
    let scenarios = omg_bench::scenarios::all_scenarios(3, n_windows);
    println!(
        "== single-stream scaling sweep (threads {ladder:?}), {} registered scenarios ==\n",
        scenarios.len()
    );
    for scenario in &scenarios {
        sweep_scenario(scenario.as_ref(), ladder, reps);
    }
}

/// The `--stream` mode: batch-vs-streaming scorers on every scenario
/// in the runtime registry.
fn run_stream_mode(n_windows: usize, reps: usize) {
    let scenarios = omg_bench::scenarios::all_scenarios(3, n_windows);
    println!(
        "== streaming scorers vs batch scorers, {} registered scenarios ==\n",
        scenarios.len()
    );
    for scenario in &scenarios {
        stream_scenario(scenario.as_ref(), reps);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    omg_bench::validate_args_or_exit(
        &args,
        &omg_bench::CliSpec {
            value_flags: &["--threads", "--windows", "--sweep-threads"],
            bare_flags: &["--stream", "--crowded", "--check-stream-archive"],
            max_positionals: 0,
        },
        "exp_throughput [--threads N] [--windows W] \
         [--stream | --sweep-threads 1,2,4,8 | --crowded | --check-stream-archive]",
    );
    // Friendly (exit-2, one-line) value parsing: a typo'd value must not
    // panic with a backtrace.
    let threads_flag = omg_bench::parse_usize_flag_cli(&args, "--threads");
    let windows_flag = omg_bench::parse_usize_flag_cli(&args, "--windows");
    let sweep_flag = omg_bench::parse_string_flag_cli(&args, "--sweep-threads").map(|raw| {
        parse_thread_ladder(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    });
    if omg_bench::has_flag(&args, "--check-stream-archive") {
        // The archive check runs no benchmark: a co-passed benchmark
        // flag would be silently dropped, so reject it instead.
        if omg_bench::has_flag(&args, "--stream")
            || omg_bench::has_flag(&args, "--crowded")
            || threads_flag.is_some()
            || windows_flag.is_some()
            || sweep_flag.is_some()
        {
            eprintln!(
                "error: --check-stream-archive only verifies the archived \
                 BENCH_*.json files; it takes no other flags"
            );
            std::process::exit(2);
        }
        check_stream_archive();
        return;
    }
    let env_threads = match omg_bench::env_threads() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let max_threads = threads_flag
        .or(env_threads)
        .unwrap_or_else(|| ThreadPool::available().threads());
    let n_windows = windows_flag.unwrap_or(2000);
    let reps = 3;

    if omg_bench::has_flag(&args, "--crowded") {
        // The crowded benchmark compares matcher backends, not thread
        // counts: it is single-threaded by construction, so a co-passed
        // `--threads`, `--stream`, or ladder conflicts with it.
        if threads_flag.is_some() || omg_bench::has_flag(&args, "--stream") || sweep_flag.is_some()
        {
            eprintln!(
                "error: --crowded is its own mode; it takes --windows only \
                 (it compares matcher backends, not thread counts)"
            );
            std::process::exit(2);
        }
        // Fewer windows than the thread benchmarks: each window carries
        // up to 1000 boxes/frame, and the O(n²) reference pass is the
        // slow side being measured.
        run_crowded_mode(windows_flag.unwrap_or(12), reps.max(5));
        return;
    }

    if let Some(ladder) = sweep_flag {
        // The sweep *is* a thread ladder: a co-passed `--threads` or
        // `--stream` would conflict with it, so reject both.
        if threads_flag.is_some() || omg_bench::has_flag(&args, "--stream") {
            eprintln!(
                "error: --sweep-threads is its own mode; it takes --windows only \
                 (the ladder replaces --threads, and --stream runs the fixed 1/2/8 ladder)"
            );
            std::process::exit(2);
        }
        // Scaling curves compare configs against each other, so they
        // need more repetitions than a single-config throughput number
        // for the per-config minima to converge under machine noise.
        run_sweep_mode(&ladder, n_windows, reps.max(40));
        return;
    }

    if omg_bench::has_flag(&args, "--stream") {
        if threads_flag.is_some() {
            eprintln!(
                "error: --threads applies to the default mode only; --stream always \
                 runs the fixed 1/2/8 thread ladder the equivalence contract is \
                 specified at"
            );
            std::process::exit(2);
        }
        // Like the sweep, the stream mode compares configs against each
        // other (batch vs stream), so give the quietest-round search
        // more rounds than a single-config throughput number needs.
        run_stream_mode(n_windows, reps.max(15));
        return;
    }

    eprintln!("building {n_windows} night-street windows…");
    let windows: Vec<VideoWindow> = monitor_windows(n_windows, 3);
    let fresh = || Monitor::with_assertions(video_assertion_set(FLICKER_T));

    // Reference run: the sequential per-invocation monitor.
    let mut reference = fresh();
    let reference_reports: Vec<_> = windows.iter().map(|w| reference.process(w)).collect();
    let seq_secs = best_secs(reps, || {
        let mut m = fresh();
        for w in &windows {
            std::hint::black_box(m.process(w));
        }
    });
    let seq_wps = n_windows as f64 / seq_secs;

    println!(
        "monitor throughput, {n_windows} windows x {} assertions (best of {reps}):",
        reference.assertions().len()
    );
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "sequential", seq_wps, 1.0);

    let mut rows = vec![("sequential".to_string(), seq_wps)];
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = ThreadPool::new(threads);
        // Correctness first: the parallel path must reproduce the
        // sequential reports and database exactly.
        let mut check = fresh();
        let reports = check.process_batch(&windows, &pool);
        assert_eq!(
            reports, reference_reports,
            "process_batch({threads}) diverged from the sequential reports"
        );
        assert_eq!(
            check.db(),
            reference.db(),
            "process_batch({threads}) diverged from the sequential database"
        );
        let secs = best_secs(reps, || {
            let mut m = fresh();
            std::hint::black_box(m.process_batch(&windows, &pool));
        });
        let wps = n_windows as f64 / secs;
        let label = format!("batch x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / seq_wps);
        rows.push((label, wps));
        if threads == max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
    println!("  (parallel output verified bit-for-bit against sequential)");

    // Machine-readable trajectory, alongside the criterion JSONs.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"windows\": {n_windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join("BENCH_throughput.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
