//! Sequential-vs-parallel monitor throughput (windows/sec) on the
//! night-street video stream — the scaling measurement behind the
//! parallel batch runtime (`Monitor::process_batch`) — plus, with
//! `--stream`, the batch-vs-streaming comparison behind the shared
//! window-preparation layer.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p omg-bench --bin exp_throughput -- \
//!     [--threads N] [--windows W] [--stream]
//! ```
//!
//! Default mode runs the sequential `Monitor::process` loop, then
//! `process_batch` at 1, 2, 4, … up to a ceiling of `--threads` workers
//! (else the `OMG_THREADS` environment variable, else available
//! parallelism), verifying on every run that the parallel path's reports
//! and database match the sequential path bit-for-bit. Results print as
//! a table and land in `BENCH_throughput.json` under the same
//! `target/bench/` directory the criterion harnesses write to.
//!
//! `--stream` mode instead compares the batch scorers (every assertion
//! re-derives its window preparation) against the streaming scorers (one
//! preparation per window, shared by the whole set) on **all four
//! scenarios** — video, AV, ECG, TV news — asserting bit-for-bit
//! identical severities on every run and writing one
//! `BENCH_stream_<scenario>.json` per scenario. Stream mode always runs
//! the fixed 1/2/8 thread ladder (the engine's equivalence contract is
//! specified at those counts); `--threads` applies to the default mode
//! only and is rejected alongside `--stream` to avoid silently ignoring
//! it.

use std::time::Instant;

use omg_bench::video::{monitor_windows, FLICKER_T};
use omg_core::runtime::ThreadPool;
use omg_core::Monitor;
use omg_domains::{video_assertion_set, VideoWindow};

/// Thread counts the `--stream` equivalence + throughput runs cover.
const STREAM_THREADS: [usize; 3] = [1, 2, 8];

/// Best-of-`reps` wall-clock for one full pass over the stream.
fn best_secs<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes one scenario's rows as `BENCH_stream_<scenario>.json`.
fn write_stream_json(scenario: &str, windows: usize, rows: &[(String, f64)]) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"stream_{scenario}\",\n  \"windows\": {windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join(format!("BENCH_stream_{scenario}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

/// Benchmarks one scenario's batch scorer against its streaming scorer:
/// `batch` and `stream` run the respective full-stream scoring pass with
/// the given thread count and return the severity matrix; every
/// streaming run is asserted bit-for-bit equal to the batch reference.
fn stream_scenario(
    name: &str,
    n_windows: usize,
    reps: usize,
    batch: impl Fn(&ThreadPool) -> Vec<Vec<f64>>,
    stream: impl Fn(&ThreadPool) -> Vec<Vec<f64>>,
) {
    let sequential = ThreadPool::sequential();
    let reference = batch(&sequential);
    let batch_secs = best_secs(reps, || {
        std::hint::black_box(batch(&sequential));
    });
    let batch_wps = n_windows as f64 / batch_secs;
    println!("{name}: {n_windows} windows (best of {reps}):");
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "batch x1", batch_wps, 1.0);
    let mut rows = vec![("batch x1".to_string(), batch_wps)];
    for threads in STREAM_THREADS {
        let pool = ThreadPool::new(threads);
        // Correctness first: identical severities on every run.
        assert_eq!(
            stream(&pool),
            reference,
            "{name}: streaming severities diverged from batch at {threads} threads"
        );
        let secs = best_secs(reps, || {
            std::hint::black_box(stream(&pool));
        });
        let wps = n_windows as f64 / secs;
        let label = format!("stream x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / batch_wps);
        rows.push((label, wps));
    }
    println!("  (streaming severities verified bit-for-bit against batch)");
    write_stream_json(name, n_windows, &rows);
}

/// The `--stream` mode: batch-vs-streaming scorers on all four
/// scenarios.
fn run_stream_mode(n_windows: usize, reps: usize) {
    use omg_bench::{avx, ecgx, newsx, video};

    println!("== streaming scorers vs batch scorers, all four scenarios ==\n");

    // Video: 3 assertions sharing one tracked window per frame.
    let scenario = video::VideoScenario::night_street(3, n_windows, 10);
    let detector = video::pretrained_detector(1);
    let dets = video::detect_all(&detector, &scenario.pool_frames);
    let batch_set = video_assertion_set(FLICKER_T);
    let stream_set = omg_domains::video_prepared_assertion_set(FLICKER_T);
    let preparer = omg_domains::VideoPrepare::new(FLICKER_T);
    stream_scenario(
        "video",
        scenario.pool_frames.len(),
        reps,
        |pool| video::score_frames(&batch_set, &scenario.pool_frames, &dets, pool).0,
        |pool| {
            video::stream_score_frames(&stream_set, &preparer, &scenario.pool_frames, &dets, pool).0
        },
    );

    // AVs: agree + multibox sharing one LIDAR projection per sample.
    let av = avx::AvScenario::new(9, (n_windows / 20).max(2) as u64, 1);
    let camera = avx::pretrained_camera(1);
    let av_dets = avx::detect_all(&camera, &av.pool);
    let av_batch = omg_domains::av_assertion_set();
    let av_stream = omg_domains::av_prepared_assertion_set();
    stream_scenario(
        "av",
        av.pool.len(),
        reps,
        |pool| avx::score_samples(&av_batch, &av.pool, &av_dets, pool).0,
        |pool| avx::stream_score_samples(&av_stream, &av.pool, &av_dets, pool).0,
    );

    // ECG: one segmentation per context window.
    let ecg = ecgx::EcgScenario::new(3, 150, n_windows.max(50), 50);
    let mlp = ecgx::pretrained_classifier(&ecg, 1);
    stream_scenario(
        "ecg",
        ecg.pool.len(),
        reps,
        |pool| ecgx::score_pool(&mlp, &ecg.pool, pool).0,
        |pool| ecgx::stream_score_pool(&mlp, &ecg.pool, pool).0,
    );

    // TV news: one scene grouping shared by the assertion and the
    // flagged-group analysis (the batch path groups once per consumer).
    let news = newsx::NewsScenario::new(3, (n_windows / 4).max(20) as u64);
    stream_scenario(
        "news",
        news.scenes.len(),
        reps,
        |pool| {
            let groups = newsx::flagged_groups(&news, pool);
            std::hint::black_box(&groups);
            let assertion = omg_domains::news::news_assertion();
            news.scenes
                .iter()
                .map(|s| vec![omg_core::Assertion::check(&assertion, s).value()])
                .collect()
        },
        |pool| {
            newsx::stream_scene_reports(&news, pool)
                .into_iter()
                .map(|r| vec![r.severity])
                .collect()
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let env_threads = std::env::var("OMG_THREADS")
        .ok()
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("OMG_THREADS expects a positive integer, got {v:?}"),
        });
    let max_threads = omg_bench::parse_usize_flag(&args, "--threads")
        .or(env_threads)
        .unwrap_or_else(|| ThreadPool::available().threads());
    let n_windows = omg_bench::parse_usize_flag(&args, "--windows").unwrap_or(2000);
    let reps = 3;

    if args.iter().any(|a| a == "--stream") {
        assert!(
            omg_bench::parse_usize_flag(&args, "--threads").is_none(),
            "--threads applies to the default mode only; --stream always \
             runs the fixed 1/2/8 thread ladder the equivalence contract \
             is specified at"
        );
        run_stream_mode(n_windows, reps);
        return;
    }

    eprintln!("building {n_windows} night-street windows…");
    let windows: Vec<VideoWindow> = monitor_windows(n_windows, 3);
    let fresh = || Monitor::with_assertions(video_assertion_set(FLICKER_T));

    // Reference run: the sequential per-invocation monitor.
    let mut reference = fresh();
    let reference_reports: Vec<_> = windows.iter().map(|w| reference.process(w)).collect();
    let seq_secs = best_secs(reps, || {
        let mut m = fresh();
        for w in &windows {
            std::hint::black_box(m.process(w));
        }
    });
    let seq_wps = n_windows as f64 / seq_secs;

    println!(
        "monitor throughput, {n_windows} windows x {} assertions (best of {reps}):",
        reference.assertions().len()
    );
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "sequential", seq_wps, 1.0);

    let mut rows = vec![("sequential".to_string(), seq_wps)];
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = ThreadPool::new(threads);
        // Correctness first: the parallel path must reproduce the
        // sequential reports and database exactly.
        let mut check = fresh();
        let reports = check.process_batch(&windows, &pool);
        assert_eq!(
            reports, reference_reports,
            "process_batch({threads}) diverged from the sequential reports"
        );
        assert_eq!(
            check.db(),
            reference.db(),
            "process_batch({threads}) diverged from the sequential database"
        );
        let secs = best_secs(reps, || {
            let mut m = fresh();
            std::hint::black_box(m.process_batch(&windows, &pool));
        });
        let wps = n_windows as f64 / secs;
        let label = format!("batch x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / seq_wps);
        rows.push((label, wps));
        if threads == max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
    println!("  (parallel output verified bit-for-bit against sequential)");

    // Machine-readable trajectory, alongside the criterion JSONs.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"windows\": {n_windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join("BENCH_throughput.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
