//! Sequential-vs-parallel monitor throughput (windows/sec) on the
//! night-street video stream — the scaling measurement behind the
//! parallel batch runtime (`Monitor::process_batch`) — plus, with
//! `--stream`, the batch-vs-streaming comparison behind the shared
//! window-preparation layer.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p omg-bench --bin exp_throughput -- \
//!     [--threads N] [--windows W] [--stream | --check-stream-archive]
//! ```
//!
//! Unknown or malformed arguments (a typo'd `--thread`, `--stream=yes`)
//! are rejected with a usage message. `--check-stream-archive` verifies
//! that every scenario in the runtime registry has its
//! `BENCH_stream_<name>.json` archived **and** that the multi-tenant
//! soak's `BENCH_service.json` is present — the CI gate that keeps the
//! streaming and service benchmarks' coverage honest.
//!
//! Default mode runs the sequential `Monitor::process` loop, then
//! `process_batch` at 1, 2, 4, … up to a ceiling of `--threads` workers
//! (else the `OMG_THREADS` environment variable, else available
//! parallelism), verifying on every run that the parallel path's reports
//! and database match the sequential path bit-for-bit. Results print as
//! a table and land in `BENCH_throughput.json` under the same
//! `target/bench/` directory the criterion harnesses write to.
//!
//! `--stream` mode instead compares the batch scorers (every assertion
//! re-derives its window preparation) against the streaming scorers (one
//! preparation per window, shared by the whole set) on **every scenario
//! in the runtime registry** (`omg_bench::scenarios::all_scenarios`) —
//! no hardcoded scenario list, so a newly registered scenario is benched
//! and archived automatically — asserting bit-for-bit identical
//! severities on every run and writing one
//! `BENCH_stream_<scenario>.json` per scenario. Stream mode always runs
//! the fixed 1/2/8 thread ladder (the engine's equivalence contract is
//! specified at those counts); `--threads` applies to the default mode
//! only and is rejected alongside `--stream` to avoid silently ignoring
//! it.

use std::time::Instant;

use omg_bench::video::{monitor_windows, FLICKER_T};
use omg_core::runtime::ThreadPool;
use omg_core::Monitor;
use omg_domains::{video_assertion_set, VideoWindow};
use omg_scenario::DynScenario;

/// Thread counts the `--stream` equivalence + throughput runs cover.
const STREAM_THREADS: [usize; 3] = [1, 2, 8];

/// Best-of-`reps` wall-clock for one full pass over the stream.
fn best_secs<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes one scenario's rows as `BENCH_stream_<scenario>.json`. A
/// write failure is fatal: the archive is the contract CI enforces
/// (`--check-stream-archive`), so a missing file must fail the run, not
/// scroll by as a warning.
fn write_stream_json(scenario: &str, windows: usize, rows: &[(String, f64)]) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"stream_{scenario}\",\n  \"windows\": {windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join(format!("BENCH_stream_{scenario}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The `--check-stream-archive` mode: verifies every registered
/// scenario has its `BENCH_stream_<name>.json` archived (the CI gate
/// behind "a registered scenario cannot silently drop out of the
/// streaming benchmark").
fn check_stream_archive() {
    let dir = criterion::bench_output_dir();
    let mut missing: Vec<String> = omg_bench::scenarios::SCENARIO_NAMES
        .into_iter()
        .filter(|name| !dir.join(format!("BENCH_stream_{name}.json")).exists())
        .map(|name| format!("BENCH_stream_{name}.json"))
        .collect();
    // The multi-tenant soak archive is part of the same contract: a
    // registered service benchmark cannot silently drop out either.
    if !dir.join("BENCH_service.json").exists() {
        missing.push("BENCH_service.json".to_string());
    }
    if missing.is_empty() {
        println!(
            "stream bench archive complete: {} scenarios + service soak under {}",
            omg_bench::scenarios::SCENARIO_NAMES.len(),
            dir.display()
        );
    } else {
        eprintln!(
            "error: bench archives missing under {}: {}\n\
             run `exp_throughput --stream` (and `exp service`) first",
            dir.display(),
            missing.join(", ")
        );
        std::process::exit(1);
    }
}

/// Benchmarks one registered scenario's batch scorer against its
/// streaming scorer over the full stream at each thread count; every
/// streaming run is asserted bit-for-bit equal to the batch reference.
fn stream_scenario(scenario: &dyn DynScenario, reps: usize) {
    let name = scenario.name();
    let n_windows = scenario.len();
    let batch = |pool: &ThreadPool| scenario.score_batch(pool).0;
    let stream = |pool: &ThreadPool| scenario.score_stream(pool).0;
    let sequential = ThreadPool::sequential();
    let reference = batch(&sequential);
    let batch_secs = best_secs(reps, || {
        std::hint::black_box(batch(&sequential));
    });
    let batch_wps = n_windows as f64 / batch_secs;
    println!("{name}: {n_windows} windows (best of {reps}):");
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "batch x1", batch_wps, 1.0);
    let mut rows = vec![("batch x1".to_string(), batch_wps)];
    for threads in STREAM_THREADS {
        let pool = ThreadPool::new(threads);
        // Correctness first: identical severities on every run.
        assert_eq!(
            stream(&pool),
            reference,
            "{name}: streaming severities diverged from batch at {threads} threads"
        );
        let secs = best_secs(reps, || {
            std::hint::black_box(stream(&pool));
        });
        let wps = n_windows as f64 / secs;
        let label = format!("stream x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / batch_wps);
        rows.push((label, wps));
    }
    println!("  (streaming severities verified bit-for-bit against batch)");
    write_stream_json(name, n_windows, &rows);
}

/// The `--stream` mode: batch-vs-streaming scorers on every scenario
/// in the runtime registry.
fn run_stream_mode(n_windows: usize, reps: usize) {
    let scenarios = omg_bench::scenarios::all_scenarios(3, n_windows);
    println!(
        "== streaming scorers vs batch scorers, {} registered scenarios ==\n",
        scenarios.len()
    );
    for scenario in &scenarios {
        stream_scenario(scenario.as_ref(), reps);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    omg_bench::validate_args_or_exit(
        &args,
        &omg_bench::CliSpec {
            value_flags: &["--threads", "--windows"],
            bare_flags: &["--stream", "--check-stream-archive"],
            max_positionals: 0,
        },
        "exp_throughput [--threads N] [--windows W] [--stream | --check-stream-archive]",
    );
    // Friendly (exit-2, one-line) value parsing: a typo'd value must not
    // panic with a backtrace.
    let threads_flag = omg_bench::parse_usize_flag_cli(&args, "--threads");
    let windows_flag = omg_bench::parse_usize_flag_cli(&args, "--windows");
    if omg_bench::has_flag(&args, "--check-stream-archive") {
        // The archive check runs no benchmark: a co-passed benchmark
        // flag would be silently dropped, so reject it instead.
        if omg_bench::has_flag(&args, "--stream")
            || threads_flag.is_some()
            || windows_flag.is_some()
        {
            eprintln!(
                "error: --check-stream-archive only verifies the archived \
                 BENCH_stream_<name>.json files; it takes no other flags"
            );
            std::process::exit(2);
        }
        check_stream_archive();
        return;
    }
    let env_threads = match omg_bench::env_threads() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let max_threads = threads_flag
        .or(env_threads)
        .unwrap_or_else(|| ThreadPool::available().threads());
    let n_windows = windows_flag.unwrap_or(2000);
    let reps = 3;

    if omg_bench::has_flag(&args, "--stream") {
        if threads_flag.is_some() {
            eprintln!(
                "error: --threads applies to the default mode only; --stream always \
                 runs the fixed 1/2/8 thread ladder the equivalence contract is \
                 specified at"
            );
            std::process::exit(2);
        }
        run_stream_mode(n_windows, reps);
        return;
    }

    eprintln!("building {n_windows} night-street windows…");
    let windows: Vec<VideoWindow> = monitor_windows(n_windows, 3);
    let fresh = || Monitor::with_assertions(video_assertion_set(FLICKER_T));

    // Reference run: the sequential per-invocation monitor.
    let mut reference = fresh();
    let reference_reports: Vec<_> = windows.iter().map(|w| reference.process(w)).collect();
    let seq_secs = best_secs(reps, || {
        let mut m = fresh();
        for w in &windows {
            std::hint::black_box(m.process(w));
        }
    });
    let seq_wps = n_windows as f64 / seq_secs;

    println!(
        "monitor throughput, {n_windows} windows x {} assertions (best of {reps}):",
        reference.assertions().len()
    );
    println!("  {:<22} {:>12} {:>10}", "path", "windows/sec", "speedup");
    println!("  {:<22} {:>12.0} {:>9.2}x", "sequential", seq_wps, 1.0);

    let mut rows = vec![("sequential".to_string(), seq_wps)];
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = ThreadPool::new(threads);
        // Correctness first: the parallel path must reproduce the
        // sequential reports and database exactly.
        let mut check = fresh();
        let reports = check.process_batch(&windows, &pool);
        assert_eq!(
            reports, reference_reports,
            "process_batch({threads}) diverged from the sequential reports"
        );
        assert_eq!(
            check.db(),
            reference.db(),
            "process_batch({threads}) diverged from the sequential database"
        );
        let secs = best_secs(reps, || {
            let mut m = fresh();
            std::hint::black_box(m.process_batch(&windows, &pool));
        });
        let wps = n_windows as f64 / secs;
        let label = format!("batch x{threads}");
        println!("  {:<22} {:>12.0} {:>9.2}x", label, wps, wps / seq_wps);
        rows.push((label, wps));
        if threads == max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
    println!("  (parallel output verified bit-for-bit against sequential)");

    // Machine-readable trajectory, alongside the criterion JSONs.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, wps)| format!("    {{\"id\": \"{label}\", \"windows_per_sec\": {wps:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"windows\": {n_windows},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = criterion::bench_output_dir();
    let path = dir.join("BENCH_throughput.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
