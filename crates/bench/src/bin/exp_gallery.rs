//! Renders the qualitative error gallery (Figures 1, 6, 7).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::gallery::run(5));
}
