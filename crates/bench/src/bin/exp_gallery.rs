//! Renders the qualitative error gallery (Figures 1, 6, 7).
fn main() {
    print!("{}", omg_bench::experiments::gallery::run(5));
}
