//! Runs every experiment and writes the outputs under
//! `target/experiments/`, printing them as it goes.
use std::fs;
use std::path::Path;

fn main() {
    omg_bench::init_runtime_from_args();
    use omg_bench::experiments as exp;
    let outputs: Vec<(&str, String)> = vec![
        ("table1", exp::table1::run()),
        ("table2", exp::table2::run()),
        ("table3", exp::table3::run(2024)),
        ("fig3", exp::fig3::run(77)),
        ("fig4a", exp::fig4::run_video(2, 5, 100, false)),
        ("fig4a_savings", exp::fig4::label_savings(2, 5, 100, 85.0)),
        ("fig4b", exp::fig4::run_av(4, 5, 60, false)),
        ("fig5", exp::fig5::run(4, 5, 100)),
        ("table4", exp::table4::run(3)),
        ("fig9", {
            let mut s = exp::fig4::run_video(2, 5, 100, true);
            s.push_str(&exp::fig4::run_av(4, 5, 60, true));
            s
        }),
        ("table5", exp::table5::run()),
        ("table6", exp::table6::run(33)),
        ("gallery", exp::gallery::run(5)),
    ];
    let dir = Path::new("target/experiments");
    fs::create_dir_all(dir).expect("create output dir");
    for (name, text) in &outputs {
        fs::write(dir.join(format!("{name}.txt")), text).expect("write output");
        println!("{text}");
    }
    println!("wrote {} outputs under target/experiments/", outputs.len());
}
