//! Alias for `exp all`, kept so existing scripts and CI invocations
//! keep working; see the `exp` multiplexer for per-experiment runs.

fn main() {
    omg_bench::init_runtime_from_args();
    let args: Vec<String> = std::env::args().collect();
    omg_bench::experiments::run_cli("all", omg_bench::parse_u64_flag(&args, "--seed"));
}
