//! Alias for `exp all`, kept so existing scripts and CI invocations
//! keep working; see the `exp` multiplexer for per-experiment runs.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    omg_bench::validate_args_or_exit(
        &args,
        &omg_bench::CliSpec {
            value_flags: &["--threads", "--seed"],
            bare_flags: &[],
            max_positionals: 0,
        },
        "exp_all [--threads N] [--seed S]",
    );
    omg_bench::init_runtime_from_args();
    omg_bench::experiments::run_cli("all", omg_bench::parse_u64_flag_cli(&args, "--seed"));
}
