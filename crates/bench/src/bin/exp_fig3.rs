//! Regenerates Figure 3 (confidence percentiles of caught errors).
fn main() {
    print!("{}", omg_bench::experiments::fig3::run(77));
}
