//! Regenerates Figure 3 (confidence percentiles of caught errors).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::fig3::run(77));
}
