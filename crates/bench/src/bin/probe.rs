//! Diagnostic probe for calibration (not part of the regeneration suite).
use omg_bench::{ecgx, video};
use omg_sim::detector::Provenance;

fn main() {
    omg_bench::validate_args_or_exit(
        &std::env::args().collect::<Vec<_>>(),
        &omg_bench::CliSpec {
            value_flags: &["--threads"],
            bare_flags: &[],
            max_positionals: 0,
        },
        "probe [--threads N]",
    );
    omg_bench::init_runtime_from_args();
    let scenario = video::VideoScenario::night_street(11, 400, 200);
    let det = video::pretrained_detector(1);
    let all_dets = video::detect_all(&det, &scenario.pool_frames);
    let mut dark_p = vec![];
    let mut easy_p = vec![];
    let mut clutter_p = vec![];
    let mut fp_count = 0usize;
    let mut dup_count = 0usize;
    let mut miss_dark = 0usize;
    let mut dark_total = 0usize;
    let mut wrong_class = 0usize;
    let mut obj_dets = 0usize;
    for (f, dets) in scenario.pool_frames.iter().zip(&all_dets) {
        for s in &f.signals {
            let p = det.detect_probability(s);
            if s.is_clutter() {
                clutter_p.push(p);
            } else if s.quality < 0.55 {
                dark_p.push(p);
                dark_total += 1;
                if !dets.iter().any(|d| matches!(d.provenance, Provenance::Object{track_id,..} if track_id==s.track_id)) { miss_dark += 1; }
            } else {
                easy_p.push(p);
            }
        }
        for d in dets {
            match d.provenance {
                Provenance::Clutter { .. } => fp_count += 1,
                Provenance::Duplicate { .. } => dup_count += 1,
                Provenance::Object { true_class, .. } => {
                    obj_dets += 1;
                    if d.scored.class != true_class {
                        wrong_class += 1;
                    }
                }
            }
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "[probe] dark p_det mean {:.2} (n={})",
        mean(&dark_p),
        dark_p.len()
    );
    println!(
        "[probe] easy p_det mean {:.2} (n={})",
        mean(&easy_p),
        easy_p.len()
    );
    println!(
        "[probe] clutter p_det mean {:.2} (n={})",
        mean(&clutter_p),
        clutter_p.len()
    );
    println!(
        "[probe] FPs/frame {:.2}, dups/frame {:.2}",
        fp_count as f64 / 400.0,
        dup_count as f64 / 400.0
    );
    println!(
        "[probe] dark miss rate {:.2}",
        miss_dark as f64 / dark_total.max(1) as f64
    );
    println!(
        "[probe] class error rate {:.2}",
        wrong_class as f64 / obj_dets.max(1) as f64
    );

    // Shape diagnostics mirroring tests/tests/paper_shapes.rs: the
    // confidence percentile reached by errors (§5.3) and the size of the
    // assertion-clean frame population (§3).
    {
        let frames = &scenario.pool_frames;
        let all_conf: Vec<f64> = all_dets
            .iter()
            .flat_map(|d| d.iter().map(|x| x.scored.score))
            .collect();
        let mut err_conf: Vec<f64> = all_dets
            .iter()
            .flat_map(|d| d.iter().filter(|x| x.is_error()).map(|x| x.scored.score))
            .collect();
        err_conf.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let p90 = if err_conf.len() >= 10 {
            err_conf.get(err_conf.len() / 10)
        } else {
            None // too few errors for a meaningful spread readout
        };
        for (label, v) in [("top", err_conf.first()), ("p90", p90)] {
            if let Some(&c) = v {
                let pct = omg_eval::stats::percentile_rank(&all_conf, c);
                println!("[probe] {label} error conf {c:.3} = {pct:.0}th pct of all dets");
            }
        }
        let set = omg_domains::video_assertion_set(video::FLICKER_T);
        let mut flagged = [0usize; 2]; // [clean, fired]
        let mut err_rates = [0.0f64; 2];
        for c in 0..frames.len() {
            let window = video::window_at(frames, &all_dets, c);
            let fired = set.check_all(&window).iter().any(|(_, s)| s.fired());
            let errors = all_dets[c].iter().filter(|d| d.is_error()).count();
            flagged[usize::from(fired)] += 1;
            err_rates[usize::from(fired)] += errors as f64;
        }
        println!(
            "[probe] windows: {} flagged ({:.2} err/frame), {} clean ({:.2} err/frame)",
            flagged[1],
            err_rates[1] / flagged[1].max(1) as f64,
            flagged[0],
            err_rates[0] / flagged[0].max(1) as f64,
        );
    }

    // ECG weak label quality
    let ecg = ecgx::EcgScenario::standard(7);
    let clf = ecgx::pretrained_classifier(&ecg, 1);
    let preds: Vec<usize> = ecg.pool.iter().map(|p| clf.predict(&p.features)).collect();
    let times: Vec<f64> = ecg.pool.iter().map(|p| p.time).collect();
    let weak = omg_domains::weak::ecg_weak_labels(&times, &preds, 30.0);
    let n = weak.len();
    let weak_correct = weak
        .iter()
        .filter(|&&(i, c)| c == ecg.pool[i].true_class)
        .count();
    let model_correct_on_those = weak
        .iter()
        .filter(|&&(i, _)| preds[i] == ecg.pool[i].true_class)
        .count();
    println!(
        "[probe] ecg weak labels: {n}, weak-correct {:.2}, model-correct-there {:.2}",
        weak_correct as f64 / n.max(1) as f64,
        model_correct_on_those as f64 / n.max(1) as f64
    );
    // class distribution of weak labels
    let mut dist = [0usize; 4];
    for &(_, c) in &weak {
        dist[c] += 1;
    }
    println!("[probe] ecg weak label class dist {:?}", dist);
}
