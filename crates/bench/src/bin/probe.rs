//! Diagnostic probe for calibration (not part of the regeneration suite).
use omg_bench::{ecgx, video};
use omg_sim::detector::Provenance;

fn main() {
    let scenario = video::VideoScenario::night_street(11, 400, 200);
    let det = video::pretrained_detector(1);
    let mut dark_p = vec![];
    let mut easy_p = vec![];
    let mut clutter_p = vec![];
    let mut fp_count = 0usize;
    let mut dup_count = 0usize;
    let mut miss_dark = 0usize;
    let mut dark_total = 0usize;
    let mut wrong_class = 0usize;
    let mut obj_dets = 0usize;
    for f in &scenario.pool_frames {
        let dets = det.detect_frame(f.index, &f.signals);
        for s in &f.signals {
            let p = det.detect_probability(s);
            if s.is_clutter() { clutter_p.push(p); }
            else if s.quality < 0.55 { dark_p.push(p); dark_total += 1;
                if !dets.iter().any(|d| matches!(d.provenance, Provenance::Object{track_id,..} if track_id==s.track_id)) { miss_dark += 1; }
            }
            else { easy_p.push(p); }
        }
        for d in &dets {
            match d.provenance {
                Provenance::Clutter{..} => fp_count += 1,
                Provenance::Duplicate{..} => dup_count += 1,
                Provenance::Object{true_class,..} => { obj_dets += 1; if d.scored.class != true_class { wrong_class += 1; } }
            }
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("[probe] dark p_det mean {:.2} (n={})", mean(&dark_p), dark_p.len());
    println!("[probe] easy p_det mean {:.2} (n={})", mean(&easy_p), easy_p.len());
    println!("[probe] clutter p_det mean {:.2} (n={})", mean(&clutter_p), clutter_p.len());
    println!("[probe] FPs/frame {:.2}, dups/frame {:.2}", fp_count as f64 / 400.0, dup_count as f64 / 400.0);
    println!("[probe] dark miss rate {:.2}", miss_dark as f64 / dark_total.max(1) as f64);
    println!("[probe] class error rate {:.2}", wrong_class as f64 / obj_dets.max(1) as f64);

    // ECG weak label quality
    let ecg = ecgx::EcgScenario::standard(7);
    let clf = ecgx::pretrained_classifier(&ecg, 1);
    let preds: Vec<usize> = ecg.pool.iter().map(|p| clf.predict(&p.features)).collect();
    let times: Vec<f64> = ecg.pool.iter().map(|p| p.time).collect();
    let weak = omg_domains::weak::ecg_weak_labels(&times, &preds, 30.0);
    let n = weak.len();
    let weak_correct = weak.iter().filter(|&&(i, c)| c == ecg.pool[i].true_class).count();
    let model_correct_on_those = weak.iter().filter(|&&(i, _)| preds[i] == ecg.pool[i].true_class).count();
    println!("[probe] ecg weak labels: {n}, weak-correct {:.2}, model-correct-there {:.2}",
        weak_correct as f64 / n.max(1) as f64, model_correct_on_those as f64 / n.max(1) as f64);
    // class distribution of weak labels
    let mut dist = [0usize; 4];
    for &(_, c) in &weak { dist[c] += 1; }
    println!("[probe] ecg weak label class dist {:?}", dist);
}
