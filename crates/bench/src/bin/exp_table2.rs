//! Regenerates Table 2 (lines of code per assertion).
fn main() {
    print!("{}", omg_bench::experiments::table2::run());
}
