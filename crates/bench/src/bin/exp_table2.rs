//! Regenerates Table 2 (lines of code per assertion).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::table2::run());
}
