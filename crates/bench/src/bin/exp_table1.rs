//! Regenerates Table 1 (task/model/assertion inventory).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::table1::run());
}
