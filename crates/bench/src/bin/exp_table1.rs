//! Regenerates Table 1 (task/model/assertion inventory).
fn main() {
    print!("{}", omg_bench::experiments::table1::run());
}
