//! Regenerates Table 4 (weak supervision, pretrained vs weakly supervised).
fn main() {
    print!("{}", omg_bench::experiments::table4::run(3));
}
