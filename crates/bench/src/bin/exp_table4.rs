//! Regenerates Table 4 (weak supervision, pretrained vs weakly supervised).
fn main() {
    omg_bench::init_runtime_from_args();
    print!("{}", omg_bench::experiments::table4::run(3));
}
