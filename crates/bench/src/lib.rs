//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index).
//!
//! Each scenario module wires a simulated world (`omg-sim`) and the
//! deployed assertions (`omg-domains`) into an implementation of the
//! [`omg_scenario::Scenario`] trait; the generic engine in
//! `omg-scenario` then provides batch scoring, streaming scoring, the
//! active learner, and the error analysis for all of them. The
//! [`scenarios`] module is the runtime registry the binaries, benches,
//! and conformance tests iterate:
//!
//! * [`video`] — night-street video analytics (Figures 3, 4a, 9a;
//!   Tables 3, 4, 6);
//! * [`avx`] — AV camera/LIDAR fusion (Figure 4b; Tables 3, 4);
//! * [`ecgx`] — ECG rhythm classification (Figure 5; Table 4);
//! * [`newsx`] — TV news monitoring (Tables 1-3);
//! * [`highway`] — highway multi-sensor fusion, the fifth scenario
//!   proving the engine's abstraction.
//!
//! The `exp` binary multiplexes the experiment suite (`exp table1`,
//! `exp fig5`, `exp all`, …); run
//! `cargo run --release -p omg-bench --bin exp -- all` to regenerate
//! everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avx;
pub mod crowd;
pub mod ecgx;
pub mod experiments;
pub mod highway;
pub mod loc;
pub mod newsx;
pub mod scenarios;
pub mod video;

use std::sync::OnceLock;

use omg_core::runtime::ThreadPool;
use omg_eval::stats;

/// The worker count the experiment binaries run scoring fan-outs with.
/// Pinned once by [`set_threads`] / [`init_runtime_from_args`], or by
/// the first [`threads`] read (from `OMG_THREADS`, else 1).
static THREADS: OnceLock<usize> = OnceLock::new();

/// Why a requested worker count was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsError {
    /// Zero workers requested (`--threads 0` / `OMG_THREADS=0` /
    /// `set_threads(0)`); scoring needs at least one.
    Zero {
        /// Which knob carried the zero.
        source: &'static str,
    },
    /// The worker count is already pinned to a different value — by an
    /// earlier [`set_threads`] or by the first [`threads`] read. (The
    /// old `set_threads` silently dropped the new value here.)
    Conflict {
        /// The value already pinned.
        current: usize,
        /// The conflicting new request.
        requested: usize,
    },
    /// `OMG_THREADS` held something other than an unsigned integer.
    Invalid {
        /// The unparsable value.
        value: String,
    },
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadsError::Zero { source } => {
                write!(f, "{source} must be at least 1 (0 workers cannot score)")
            }
            ThreadsError::Conflict { current, requested } => write!(
                f,
                "worker count is already pinned to {current}; cannot re-pin to {requested} \
                 (set --threads once, before any scoring runs)"
            ),
            ThreadsError::Invalid { value } => {
                write!(f, "OMG_THREADS expects a positive integer, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ThreadsError {}

/// Pins the harness-wide worker count. Idempotent for the same value;
/// a *different* value after the count is pinned (by an earlier call or
/// a first [`threads`] read) is reported as [`ThreadsError::Conflict`]
/// instead of being silently dropped, and zero is rejected as
/// [`ThreadsError::Zero`].
pub fn set_threads(threads: usize) -> Result<(), ThreadsError> {
    if threads == 0 {
        return Err(ThreadsError::Zero {
            source: "--threads",
        });
    }
    match THREADS.set(threads) {
        Ok(()) => Ok(()),
        Err(_) => {
            let current = *THREADS.get().expect("set failed, so a value is pinned");
            if current == threads {
                Ok(())
            } else {
                Err(ThreadsError::Conflict {
                    current,
                    requested: threads,
                })
            }
        }
    }
}

/// The `OMG_THREADS` environment variable, validated: `Ok(None)` when
/// unset, [`ThreadsError`] when set to zero or garbage.
pub fn env_threads() -> Result<Option<usize>, ThreadsError> {
    match std::env::var("OMG_THREADS") {
        Err(_) => Ok(None),
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => Err(ThreadsError::Zero {
                source: "OMG_THREADS",
            }),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(ThreadsError::Invalid { value: v }),
        },
    }
}

/// The configured worker count: `--threads` / [`set_threads`] if given,
/// else the `OMG_THREADS` environment variable, else 1 (sequential, the
/// deterministic default every test runs with — results are identical at
/// any setting, only wall-clock changes). The first read pins the value;
/// see [`set_threads`] for the conflict rules.
///
/// # Panics
///
/// Panics if `OMG_THREADS` is set to zero or garbage — binaries validate
/// it up front in [`init_runtime_from_args`] and exit with a friendly
/// message instead.
pub fn threads() -> usize {
    *THREADS.get_or_init(|| match env_threads() {
        Ok(n) => n.unwrap_or(1),
        // PANIC: documented — a garbage OMG_THREADS is a startup
        // config error; binaries validate it before scoring starts.
        Err(e) => panic!("{e}"),
    })
}

/// The scoring runtime sized by [`threads`].
pub fn runtime() -> ThreadPool {
    ThreadPool::new(threads())
}

/// Finds a `--flag N` / `--flag=N` occurrence in an argument list:
/// `None` if the flag is absent, `Some(None)` if it is present with no
/// value, `Some(Some(v))` with the raw value otherwise.
fn raw_flag_value<'a>(args: &'a [String], flag: &str) -> Option<Option<&'a str>> {
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return Some(args.get(i + 1).map(|s| s.as_str()));
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Some(Some(value));
        }
    }
    None
}

/// Parses a `--flag N` / `--flag=N` option from an argument list with a
/// caller-supplied value parser (shared by the usize and u64 variants).
///
/// # Panics
///
/// Panics (via `parse`) if the flag is present with a missing or invalid
/// value — a mistyped knob must fail loudly, not silently fall back.
fn parse_flag_with<T>(args: &[String], flag: &str, parse: impl Fn(&str) -> T) -> Option<T> {
    let value = raw_flag_value(args, flag)?.unwrap_or_else(|| panic!("{flag} expects a value"));
    Some(parse(value))
}

/// Parses a `--flag N` / `--flag=N` positive-integer option from an
/// argument list.
///
/// # Panics
///
/// Panics if the flag is present with a missing, zero, or non-numeric
/// value.
pub fn parse_usize_flag(args: &[String], flag: &str) -> Option<usize> {
    parse_flag_with(args, flag, |value| {
        value
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| panic!("{flag} expects a positive integer, got {value:?}"))
    })
}

/// Parses a `--flag N` / `--flag=N` unsigned-seed option from an
/// argument list (zero is a legitimate seed).
///
/// # Panics
///
/// Panics if the flag is present with a missing or non-numeric value.
pub fn parse_u64_flag(args: &[String], flag: &str) -> Option<u64> {
    parse_flag_with(args, flag, |value| {
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} expects an unsigned integer, got {value:?}"))
    })
}

/// [`parse_usize_flag`] for binary `main`s: a missing, zero, or
/// non-numeric value exits with a one-line error and status 2 (a CLI
/// mistake, not a crash — no backtrace) instead of panicking.
pub fn parse_usize_flag_cli(args: &[String], flag: &str) -> Option<usize> {
    let value = match raw_flag_value(args, flag)? {
        Some(v) => v,
        None => cli_error(format_args!("{flag} expects a value")),
    };
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => cli_error(format_args!(
            "{flag} expects a positive integer, got {value:?}"
        )),
    }
}

/// Raw `--flag v` / `--flag=v` string lookup for binary `main`s whose
/// value grammar is richer than one integer (e.g. `exp_throughput
/// --sweep-threads 1,2,4,8`): a present-but-valueless flag exits with
/// a one-line error and status 2; the caller parses the string.
pub fn parse_string_flag_cli(args: &[String], flag: &str) -> Option<String> {
    match raw_flag_value(args, flag)? {
        Some(v) => Some(v.to_string()),
        None => cli_error(format_args!("{flag} expects a value")),
    }
}

/// [`parse_u64_flag`] for binary `main`s (zero is a legitimate seed):
/// a missing or non-numeric value exits with a one-line error and
/// status 2 instead of panicking.
pub fn parse_u64_flag_cli(args: &[String], flag: &str) -> Option<u64> {
    let value = match raw_flag_value(args, flag)? {
        Some(v) => v,
        None => cli_error(format_args!("{flag} expects a value")),
    };
    match value.parse() {
        Ok(n) => Some(n),
        Err(_) => cli_error(format_args!(
            "{flag} expects an unsigned integer, got {value:?}"
        )),
    }
}

/// Whether a bare `--flag` is present in an argument list.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The command-line contract of an experiment binary: which
/// `--flag <value>` options and bare `--flag` switches it accepts, and
/// how many positional arguments. [`validate_args`] rejects anything
/// else.
#[derive(Debug, Clone, Copy)]
pub struct CliSpec {
    /// Flags that take a value (`--flag N` or `--flag=N`).
    pub value_flags: &'static [&'static str],
    /// Bare switches (`--flag` only; `--flag=x` is rejected).
    pub bare_flags: &'static [&'static str],
    /// Maximum number of positional (non-flag) arguments.
    pub max_positionals: usize,
}

/// Validates an argument list (`args[0]`, the binary name, is skipped)
/// against a [`CliSpec`]: every `--flag` must be declared, value flags
/// must carry a value, bare switches must not (`--stream=yes` is an
/// error, not a silently dropped no-op), and at most
/// `max_positionals` positional arguments may appear. A typo'd flag
/// (`--thread 8`) is rejected up front instead of silently running the
/// wrong configuration.
pub fn validate_args(args: &[String], spec: &CliSpec) -> Result<(), String> {
    let mut positionals = 0usize;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        if let Some(body) = arg.strip_prefix("--") {
            let (name, eq_value) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (body, None),
            };
            let dashed = format!("--{name}");
            if spec.value_flags.contains(&dashed.as_str()) {
                if eq_value.is_none() && it.next().is_none() {
                    return Err(format!("{dashed} expects a value"));
                }
            } else if spec.bare_flags.contains(&dashed.as_str()) {
                if eq_value.is_some() {
                    return Err(format!("{dashed} takes no value (got {arg:?})"));
                }
            } else {
                return Err(format!("unrecognized flag {arg:?}"));
            }
        } else {
            positionals += 1;
            if positionals > spec.max_positionals {
                return Err(format!("unexpected argument {arg:?}"));
            }
        }
    }
    Ok(())
}

/// [`validate_args`] for binary `main`s: on any violation, prints the
/// error plus a usage line to stderr and exits with status 2 (a CLI
/// mistake, not a crash — no backtrace).
pub fn validate_args_or_exit(args: &[String], spec: &CliSpec, usage: &str) {
    if let Err(e) = validate_args(args, spec) {
        eprintln!("error: {e}\nusage: {usage}");
        std::process::exit(2);
    }
}

/// Exits with a friendly CLI error (status 2, no backtrace).
fn cli_error(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Parses `--threads N` (or `--threads=N`) from the process arguments
/// and pins the harness-wide worker count; with no flag, validates (and
/// pins) `OMG_THREADS` instead. Every experiment binary calls this
/// first. Precedence: `--threads` beats `OMG_THREADS` beats the
/// sequential default of 1.
///
/// All misconfigurations — `--threads 0`, `OMG_THREADS=0`, garbage in
/// either, a value conflicting with an already-pinned count — exit with
/// a one-line error and status 2 instead of panicking or being silently
/// dropped.
pub fn init_runtime_from_args() {
    let args: Vec<String> = std::env::args().collect();
    let env = match env_threads() {
        Ok(n) => n,
        Err(e) => cli_error(e),
    };
    let cli = match raw_flag_value(&args, "--threads") {
        None => None,
        Some(None) => cli_error("--threads expects a value"),
        Some(Some(v)) => match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => cli_error(format_args!(
                "--threads expects an unsigned integer, got {v:?}"
            )),
        },
    };
    if let Some(n) = cli.or(env) {
        if let Err(e) = set_threads(n) {
            cli_error(e);
        }
    }
}

/// Mean and standard error of one experiment series across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Label of the series (strategy name etc.).
    pub label: String,
    /// Per-round means.
    pub mean: Vec<f64>,
    /// Per-round standard errors.
    pub stderr: Vec<f64>,
}

/// Summarizes per-trial series (each `trials[k][r]` = trial `k`, round `r`)
/// into per-round mean ± s.e.
///
/// # Panics
///
/// Panics if trials have inconsistent lengths or there are none.
pub fn summarize_series(label: &str, trials: &[Vec<f64>]) -> SeriesSummary {
    assert!(!trials.is_empty(), "need at least one trial");
    let rounds = trials[0].len();
    assert!(
        trials.iter().all(|t| t.len() == rounds),
        "ragged trial series"
    );
    let mut mean = Vec::with_capacity(rounds);
    let mut stderr = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let col: Vec<f64> = trials.iter().map(|t| t[r]).collect();
        mean.push(stats::mean(&col));
        stderr.push(stats::std_err(&col));
    }
    SeriesSummary {
        label: label.to_string(),
        mean,
        stderr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_series_means_and_stderr() {
        let s = summarize_series("x", &[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(s.mean, vec![2.0, 4.0]);
        assert!(s.stderr[0] > 0.0);
        assert_eq!(s.label, "x");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_rejected() {
        summarize_series("x", &[vec![1.0], vec![1.0, 2.0]]);
    }

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_usize_flag_accepts_both_forms() {
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threads", "4"]), "--threads"),
            Some(4)
        );
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threads=8"]), "--threads"),
            Some(8)
        );
        assert_eq!(parse_usize_flag(&args(&["bin"]), "--threads"), None);
        // A different flag's prefix must not match.
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threadstorm=2"]), "--threads"),
            None
        );
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn parse_usize_flag_rejects_missing_value() {
        parse_usize_flag(&args(&["bin", "--threads"]), "--threads");
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_usize_flag_rejects_zero() {
        parse_usize_flag(&args(&["bin", "--threads", "0"]), "--threads");
    }

    #[test]
    fn parse_u64_flag_accepts_zero_seeds() {
        assert_eq!(
            parse_u64_flag(&args(&["bin", "--seed", "0"]), "--seed"),
            Some(0)
        );
        assert_eq!(
            parse_u64_flag(&args(&["bin", "--seed=77"]), "--seed"),
            Some(77)
        );
        assert_eq!(parse_u64_flag(&args(&["bin"]), "--seed"), None);
    }

    #[test]
    #[should_panic(expected = "unsigned integer")]
    fn parse_u64_flag_rejects_garbage() {
        parse_u64_flag(&args(&["bin", "--seed", "x"]), "--seed");
    }

    #[test]
    fn has_flag_matches_exactly() {
        assert!(has_flag(&args(&["bin", "--stream"]), "--stream"));
        assert!(!has_flag(&args(&["bin", "--streams"]), "--stream"));
    }

    #[test]
    fn set_threads_rejects_zero_and_conflicts() {
        if std::env::var("OMG_THREADS").is_ok() {
            return; // the environment already pins a different count
        }
        assert_eq!(
            set_threads(0),
            Err(ThreadsError::Zero {
                source: "--threads"
            })
        );
        // Pin to 1 — identical to the lazy sequential default, so this
        // test cannot perturb the other tests in this process.
        assert_eq!(set_threads(1), Ok(()));
        assert_eq!(set_threads(1), Ok(()), "re-pinning the same value is fine");
        assert_eq!(
            set_threads(9),
            Err(ThreadsError::Conflict {
                current: 1,
                requested: 9
            }),
            "a conflicting value must be reported, not silently dropped"
        );
        assert_eq!(threads(), 1);
    }

    #[test]
    fn threads_errors_render_their_knob() {
        let zero = ThreadsError::Zero {
            source: "OMG_THREADS",
        };
        assert!(zero.to_string().contains("OMG_THREADS"));
        let conflict = ThreadsError::Conflict {
            current: 2,
            requested: 8,
        };
        assert!(conflict.to_string().contains('2') && conflict.to_string().contains('8'));
        let invalid = ThreadsError::Invalid {
            value: "lots".into(),
        };
        assert!(invalid.to_string().contains("lots"));
    }

    const SPEC: CliSpec = CliSpec {
        value_flags: &["--threads", "--seed"],
        bare_flags: &["--stream"],
        max_positionals: 1,
    };

    #[test]
    fn validate_args_accepts_declared_shapes() {
        for ok in [
            vec!["bin"],
            vec!["bin", "table3"],
            vec!["bin", "--threads", "4", "table3"],
            vec!["bin", "--threads=4"],
            vec!["bin", "--seed", "0", "--stream"],
            vec!["bin", "table3", "--stream", "--seed=7"],
        ] {
            assert_eq!(validate_args(&args(&ok), &SPEC), Ok(()), "{ok:?}");
        }
    }

    #[test]
    fn validate_args_rejects_unknown_and_malformed() {
        // The old foot-guns: each of these used to run a wrong
        // configuration without a word.
        let cases = [
            (vec!["bin", "--thread", "8"], "unrecognized flag"),
            (vec!["bin", "--stream=yes"], "takes no value"),
            (vec!["bin", "--streams"], "unrecognized flag"),
            (vec!["bin", "--threads"], "expects a value"),
            (vec!["bin", "a", "b"], "unexpected argument"),
        ];
        for (argv, want) in cases {
            let err = validate_args(&args(&argv), &SPEC).expect_err(&format!("{argv:?}"));
            assert!(err.contains(want), "{argv:?}: {err}");
        }
    }
}
