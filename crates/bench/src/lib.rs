//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index).
//!
//! Each scenario module wires a simulated world (`omg-sim`), the deployed
//! assertions (`omg-domains`), the assertion engine (`omg-core`), the
//! selection strategies (`omg-active`), and the metrics (`omg-eval`)
//! into:
//!
//! * an [`omg_active::ActiveLearner`] implementation for the
//!   active-learning experiments (Figures 4, 5, 9);
//! * precision/error analyses (Table 3, Figure 3, Table 6);
//! * weak-supervision runs (Table 4).
//!
//! The binaries under `src/bin/` print the paper-matching rows; run
//! `cargo run --release -p omg-bench --bin exp_all` to regenerate
//! everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avx;
pub mod ecgx;
pub mod experiments;
pub mod loc;
pub mod newsx;
pub mod video;

use std::sync::OnceLock;

use omg_core::runtime::ThreadPool;
use omg_eval::stats;

/// The worker count the experiment binaries run scoring fan-outs with.
/// Set once (first writer wins) by [`set_threads`] /
/// [`init_runtime_from_args`].
static THREADS: OnceLock<usize> = OnceLock::new();

/// Pins the harness-wide worker count. The first call wins; later calls
/// are ignored (binaries call this once at startup).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn set_threads(threads: usize) {
    assert!(threads > 0, "--threads must be at least 1");
    let _ = THREADS.set(threads);
}

/// The configured worker count: `--threads` / [`set_threads`] if given,
/// else the `OMG_THREADS` environment variable, else 1 (sequential, the
/// deterministic default every test runs with — results are identical at
/// any setting, only wall-clock changes).
pub fn threads() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("OMG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

/// The scoring runtime sized by [`threads`].
pub fn runtime() -> ThreadPool {
    ThreadPool::new(threads())
}

/// Parses a `--flag N` / `--flag=N` positive-integer option from an
/// argument list.
///
/// # Panics
///
/// Panics if the flag is present with a missing, zero, or non-numeric
/// value — a mistyped knob must fail loudly, not silently fall back.
pub fn parse_usize_flag(args: &[String], flag: &str) -> Option<usize> {
    let parse = |value: &str| -> usize {
        value
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("{flag} expects a positive integer, got {value:?}"))
    };
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} expects a value"));
            return Some(parse(value));
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Some(parse(value));
        }
    }
    None
}

/// Parses `--threads N` (or `--threads=N`) from the process arguments
/// (if present) and pins the harness-wide worker count. Every `exp_*`
/// binary calls this first.
pub fn init_runtime_from_args() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = parse_usize_flag(&args, "--threads") {
        set_threads(n);
    }
}

/// Claims the selected pool positions from a learner's (ascending)
/// `unlabeled` index list: maps positions to pool indices, sorts and
/// **deduplicates** them (a selection strategy may emit the same position
/// twice; labeling the same sample twice would double-count the labeling
/// budget and double-weight the sample in training), removes them from
/// `unlabeled` via binary search over the sorted claims, and returns the
/// claimed pool indices in ascending order.
///
/// # Panics
///
/// Panics if a selection position is out of range of `unlabeled`.
pub fn claim_selection(unlabeled: &mut Vec<usize>, selection: &[usize]) -> Vec<usize> {
    let mut chosen: Vec<usize> = selection.iter().map(|&p| unlabeled[p]).collect();
    chosen.sort_unstable();
    chosen.dedup();
    unlabeled.retain(|i| chosen.binary_search(i).is_err());
    chosen
}

/// Mean and standard error of one experiment series across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Label of the series (strategy name etc.).
    pub label: String,
    /// Per-round means.
    pub mean: Vec<f64>,
    /// Per-round standard errors.
    pub stderr: Vec<f64>,
}

/// Summarizes per-trial series (each `trials[k][r]` = trial `k`, round `r`)
/// into per-round mean ± s.e.
///
/// # Panics
///
/// Panics if trials have inconsistent lengths or there are none.
pub fn summarize_series(label: &str, trials: &[Vec<f64>]) -> SeriesSummary {
    assert!(!trials.is_empty(), "need at least one trial");
    let rounds = trials[0].len();
    assert!(
        trials.iter().all(|t| t.len() == rounds),
        "ragged trial series"
    );
    let mut mean = Vec::with_capacity(rounds);
    let mut stderr = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let col: Vec<f64> = trials.iter().map(|t| t[r]).collect();
        mean.push(stats::mean(&col));
        stderr.push(stats::std_err(&col));
    }
    SeriesSummary {
        label: label.to_string(),
        mean,
        stderr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_series_means_and_stderr() {
        let s = summarize_series("x", &[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(s.mean, vec![2.0, 4.0]);
        assert!(s.stderr[0] > 0.0);
        assert_eq!(s.label, "x");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_rejected() {
        summarize_series("x", &[vec![1.0], vec![1.0, 2.0]]);
    }

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_usize_flag_accepts_both_forms() {
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threads", "4"]), "--threads"),
            Some(4)
        );
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threads=8"]), "--threads"),
            Some(8)
        );
        assert_eq!(parse_usize_flag(&args(&["bin"]), "--threads"), None);
        // A different flag's prefix must not match.
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threadstorm=2"]), "--threads"),
            None
        );
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn parse_usize_flag_rejects_missing_value() {
        parse_usize_flag(&args(&["bin", "--threads"]), "--threads");
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_usize_flag_rejects_zero() {
        parse_usize_flag(&args(&["bin", "--threads", "0"]), "--threads");
    }

    #[test]
    fn claim_selection_dedups_and_removes() {
        let mut unlabeled: Vec<usize> = vec![10, 20, 30, 40, 50];
        // Positions 1 and 3, with 1 repeated: the repeat must not claim
        // (or count) twice.
        let chosen = claim_selection(&mut unlabeled, &[3, 1, 1]);
        assert_eq!(chosen, vec![20, 40]);
        assert_eq!(unlabeled, vec![10, 30, 50]);
        // Claiming nothing changes nothing.
        assert_eq!(claim_selection(&mut unlabeled, &[]), Vec::<usize>::new());
        assert_eq!(unlabeled, vec![10, 30, 50]);
    }
}
