//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index).
//!
//! Each scenario module wires a simulated world (`omg-sim`) and the
//! deployed assertions (`omg-domains`) into an implementation of the
//! [`omg_scenario::Scenario`] trait; the generic engine in
//! `omg-scenario` then provides batch scoring, streaming scoring, the
//! active learner, and the error analysis for all of them. The
//! [`scenarios`] module is the runtime registry the binaries, benches,
//! and conformance tests iterate:
//!
//! * [`video`] — night-street video analytics (Figures 3, 4a, 9a;
//!   Tables 3, 4, 6);
//! * [`avx`] — AV camera/LIDAR fusion (Figure 4b; Tables 3, 4);
//! * [`ecgx`] — ECG rhythm classification (Figure 5; Table 4);
//! * [`newsx`] — TV news monitoring (Tables 1-3);
//! * [`highway`] — highway multi-sensor fusion, the fifth scenario
//!   proving the engine's abstraction.
//!
//! The `exp` binary multiplexes the experiment suite (`exp table1`,
//! `exp fig5`, `exp all`, …); run
//! `cargo run --release -p omg-bench --bin exp -- all` to regenerate
//! everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avx;
pub mod ecgx;
pub mod experiments;
pub mod highway;
pub mod loc;
pub mod newsx;
pub mod scenarios;
pub mod video;

use std::sync::OnceLock;

use omg_core::runtime::ThreadPool;
use omg_eval::stats;

/// The worker count the experiment binaries run scoring fan-outs with.
/// Set once (first writer wins) by [`set_threads`] /
/// [`init_runtime_from_args`].
static THREADS: OnceLock<usize> = OnceLock::new();

/// Pins the harness-wide worker count. The first call wins; later calls
/// are ignored (binaries call this once at startup).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn set_threads(threads: usize) {
    assert!(threads > 0, "--threads must be at least 1");
    let _ = THREADS.set(threads);
}

/// The configured worker count: `--threads` / [`set_threads`] if given,
/// else the `OMG_THREADS` environment variable, else 1 (sequential, the
/// deterministic default every test runs with — results are identical at
/// any setting, only wall-clock changes).
pub fn threads() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("OMG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

/// The scoring runtime sized by [`threads`].
pub fn runtime() -> ThreadPool {
    ThreadPool::new(threads())
}

/// Parses a `--flag N` / `--flag=N` option from an argument list with a
/// caller-supplied value parser (shared by the usize and u64 variants).
///
/// # Panics
///
/// Panics (via `parse`) if the flag is present with a missing or invalid
/// value — a mistyped knob must fail loudly, not silently fall back.
fn parse_flag_with<T>(args: &[String], flag: &str, parse: impl Fn(&str) -> T) -> Option<T> {
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} expects a value"));
            return Some(parse(value));
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Some(parse(value));
        }
    }
    None
}

/// Parses a `--flag N` / `--flag=N` positive-integer option from an
/// argument list.
///
/// # Panics
///
/// Panics if the flag is present with a missing, zero, or non-numeric
/// value.
pub fn parse_usize_flag(args: &[String], flag: &str) -> Option<usize> {
    parse_flag_with(args, flag, |value| {
        value
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| panic!("{flag} expects a positive integer, got {value:?}"))
    })
}

/// Parses a `--flag N` / `--flag=N` unsigned-seed option from an
/// argument list (zero is a legitimate seed).
///
/// # Panics
///
/// Panics if the flag is present with a missing or non-numeric value.
pub fn parse_u64_flag(args: &[String], flag: &str) -> Option<u64> {
    parse_flag_with(args, flag, |value| {
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} expects an unsigned integer, got {value:?}"))
    })
}

/// Whether a bare `--flag` is present in an argument list.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--threads N` (or `--threads=N`) from the process arguments
/// (if present) and pins the harness-wide worker count. Every experiment
/// binary calls this first.
pub fn init_runtime_from_args() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = parse_usize_flag(&args, "--threads") {
        set_threads(n);
    }
}

/// Mean and standard error of one experiment series across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Label of the series (strategy name etc.).
    pub label: String,
    /// Per-round means.
    pub mean: Vec<f64>,
    /// Per-round standard errors.
    pub stderr: Vec<f64>,
}

/// Summarizes per-trial series (each `trials[k][r]` = trial `k`, round `r`)
/// into per-round mean ± s.e.
///
/// # Panics
///
/// Panics if trials have inconsistent lengths or there are none.
pub fn summarize_series(label: &str, trials: &[Vec<f64>]) -> SeriesSummary {
    assert!(!trials.is_empty(), "need at least one trial");
    let rounds = trials[0].len();
    assert!(
        trials.iter().all(|t| t.len() == rounds),
        "ragged trial series"
    );
    let mut mean = Vec::with_capacity(rounds);
    let mut stderr = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let col: Vec<f64> = trials.iter().map(|t| t[r]).collect();
        mean.push(stats::mean(&col));
        stderr.push(stats::std_err(&col));
    }
    SeriesSummary {
        label: label.to_string(),
        mean,
        stderr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_series_means_and_stderr() {
        let s = summarize_series("x", &[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(s.mean, vec![2.0, 4.0]);
        assert!(s.stderr[0] > 0.0);
        assert_eq!(s.label, "x");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_rejected() {
        summarize_series("x", &[vec![1.0], vec![1.0, 2.0]]);
    }

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_usize_flag_accepts_both_forms() {
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threads", "4"]), "--threads"),
            Some(4)
        );
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threads=8"]), "--threads"),
            Some(8)
        );
        assert_eq!(parse_usize_flag(&args(&["bin"]), "--threads"), None);
        // A different flag's prefix must not match.
        assert_eq!(
            parse_usize_flag(&args(&["bin", "--threadstorm=2"]), "--threads"),
            None
        );
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn parse_usize_flag_rejects_missing_value() {
        parse_usize_flag(&args(&["bin", "--threads"]), "--threads");
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_usize_flag_rejects_zero() {
        parse_usize_flag(&args(&["bin", "--threads", "0"]), "--threads");
    }

    #[test]
    fn parse_u64_flag_accepts_zero_seeds() {
        assert_eq!(
            parse_u64_flag(&args(&["bin", "--seed", "0"]), "--seed"),
            Some(0)
        );
        assert_eq!(
            parse_u64_flag(&args(&["bin", "--seed=77"]), "--seed"),
            Some(77)
        );
        assert_eq!(parse_u64_flag(&args(&["bin"]), "--seed"), None);
    }

    #[test]
    #[should_panic(expected = "unsigned integer")]
    fn parse_u64_flag_rejects_garbage() {
        parse_u64_flag(&args(&["bin", "--seed", "x"]), "--seed");
    }

    #[test]
    fn has_flag_matches_exactly() {
        assert!(has_flag(&args(&["bin", "--stream"]), "--stream"));
        assert!(!has_flag(&args(&["bin", "--streams"]), "--stream"));
    }
}
