//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index).
//!
//! Each scenario module wires a simulated world (`omg-sim`), the deployed
//! assertions (`omg-domains`), the assertion engine (`omg-core`), the
//! selection strategies (`omg-active`), and the metrics (`omg-eval`)
//! into:
//!
//! * an [`omg_active::ActiveLearner`] implementation for the
//!   active-learning experiments (Figures 4, 5, 9);
//! * precision/error analyses (Table 3, Figure 3, Table 6);
//! * weak-supervision runs (Table 4).
//!
//! The binaries under `src/bin/` print the paper-matching rows; run
//! `cargo run --release -p omg-bench --bin exp_all` to regenerate
//! everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avx;
pub mod ecgx;
pub mod experiments;
pub mod loc;
pub mod newsx;
pub mod video;

use omg_eval::stats;

/// Mean and standard error of one experiment series across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Label of the series (strategy name etc.).
    pub label: String,
    /// Per-round means.
    pub mean: Vec<f64>,
    /// Per-round standard errors.
    pub stderr: Vec<f64>,
}

/// Summarizes per-trial series (each `trials[k][r]` = trial `k`, round `r`)
/// into per-round mean ± s.e.
///
/// # Panics
///
/// Panics if trials have inconsistent lengths or there are none.
pub fn summarize_series(label: &str, trials: &[Vec<f64>]) -> SeriesSummary {
    assert!(!trials.is_empty(), "need at least one trial");
    let rounds = trials[0].len();
    assert!(
        trials.iter().all(|t| t.len() == rounds),
        "ragged trial series"
    );
    let mut mean = Vec::with_capacity(rounds);
    let mut stderr = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let col: Vec<f64> = trials.iter().map(|t| t[r]).collect();
        mean.push(stats::mean(&col));
        stderr.push(stats::std_err(&col));
    }
    SeriesSummary {
        label: label.to_string(),
        mean,
        stderr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_series_means_and_stderr() {
        let s = summarize_series("x", &[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(s.mean, vec![2.0, 4.0]);
        assert!(s.stderr[0] > 0.0);
        assert_eq!(s.label, "x");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_rejected() {
        summarize_series("x", &[vec![1.0], vec![1.0, 2.0]]);
    }
}
