//! Substrate performance: world generation, detector inference and
//! training, and detection evaluation (mAP).

use criterion::{criterion_group, criterion_main, Criterion};
use omg_eval::DetectionEvaluator;
use omg_sim::detector::{DetectorConfig, SimDetector, TrainingBatch};
use omg_sim::ecg::{EcgConfig, EcgWorld};
use omg_sim::traffic::{TrafficConfig, TrafficWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Traffic-world stepping (ground truth + signals per frame).
fn world_step(c: &mut Criterion) {
    c.bench_function("sim/traffic_100_frames", |b| {
        b.iter(|| {
            let mut world = TrafficWorld::new(TrafficConfig::night_street(), 3);
            criterion::black_box(world.steps(100))
        });
    });
    c.bench_function("sim/ecg_1000_windows", |b| {
        b.iter(|| {
            let mut world = EcgWorld::new(EcgConfig::default(), 3);
            criterion::black_box(world.windows(1000))
        });
    });
}

/// Detector inference over one frame and one SGD training pass.
fn detector(c: &mut Criterion) {
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 3);
    let frames = world.steps(100);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    c.bench_function("detector/inference_100_frames", |b| {
        b.iter(|| {
            for f in &frames {
                criterion::black_box(det.detect_frame(f.index, &f.signals));
            }
        });
    });

    let mut batch = TrainingBatch::new();
    for f in &frames {
        for s in &f.signals {
            if s.is_clutter() {
                batch.add_labeled_background(s);
            } else {
                batch.add_labeled_object(s);
            }
        }
    }
    c.bench_function("detector/train_epoch", |b| {
        b.iter(|| {
            let mut d = det.clone();
            let mut rng = StdRng::seed_from_u64(1);
            d.train(&batch, 1, &mut rng);
            criterion::black_box(d)
        });
    });
}

/// mAP evaluation over 100 frames.
fn map_eval(c: &mut Criterion) {
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 3);
    let frames = world.steps(100);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets: Vec<Vec<_>> = frames
        .iter()
        .map(|f| det.detect_frame(f.index, &f.signals))
        .collect();
    c.bench_function("eval/map_100_frames", |b| {
        b.iter(|| {
            let mut ev = DetectionEvaluator::new(0.5);
            for (f, d) in frames.iter().zip(&dets) {
                let scored: Vec<_> = d.iter().map(|x| x.scored).collect();
                ev.add_frame(&scored, &f.gt_boxes());
            }
            criterion::black_box(ev.map())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = world_step, detector, map_eval
}
criterion_main!(benches);
