//! Data-selection performance: BAL and the baselines vs. pool size, and
//! the CC-MAB reference. Demonstrates the paper's implicit claim that
//! BAL's selection step is cheap (no retraining per arm, unlike CC-MAB's
//! idealized setting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omg_active::{
    BalStrategy, CandidatePool, CcMab, FallbackPolicy, RandomStrategy, SelectionStrategy,
    ThreadPool, UncertaintyStrategy, UniformAssertionStrategy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_pool(n: usize, d: usize, seed: u64) -> CandidatePool {
    let mut rng = StdRng::seed_from_u64(seed);
    let severities: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        rng.gen_range(0.5..5.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let uncertainties: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    CandidatePool::new(severities, uncertainties).unwrap()
}

fn strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/100_of_n");
    for n in [1_000usize, 10_000] {
        let pool = make_pool(n, 3, 42);
        let cases: Vec<(&str, Box<dyn SelectionStrategy>)> = vec![
            ("random", Box::new(RandomStrategy)),
            ("uncertainty", Box::new(UncertaintyStrategy)),
            ("uniform-ma", Box::new(UniformAssertionStrategy)),
            ("bal", Box::new(BalStrategy::new(FallbackPolicy::Random))),
        ];
        for (name, mut strategy) in cases {
            group.bench_with_input(BenchmarkId::new(name, n), &pool, |b, pool| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    strategy.reset();
                    criterion::black_box(strategy.select(pool, 100, &mut rng))
                });
            });
        }
    }
    group.finish();
}

/// Per-candidate strategy scoring fanned out over the runtime — the
/// batch severity-scoring path pools are ranked with.
fn score_all(c: &mut Criterion) {
    let pool = make_pool(10_000, 3, 42);
    let mut group = c.benchmark_group("selection/score_all_10k");
    for threads in [1usize, 4] {
        let runtime = ThreadPool::new(threads);
        let bal = BalStrategy::new(FallbackPolicy::Random);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &runtime, |b, rt| {
            b.iter(|| criterion::black_box(bal.score_all(&pool, rt)));
        });
    }
    group.finish();
}

fn ccmab(c: &mut Criterion) {
    c.bench_function("selection/ccmab_round", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        let contexts: Vec<Vec<f64>> = (0..1_000)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let mut mab = CcMab::new(2, 5);
        b.iter(|| {
            mab.begin_round();
            let sel = mab.select(&contexts, 100);
            for &i in &sel {
                mab.update(&contexts[i], contexts[i][0]);
            }
            criterion::black_box(sel)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = strategies, score_all, ccmab
}
criterion_main!(benches);
