//! Assertion-engine performance: the paper's §7 discusses runtime
//! overhead; these benches quantify it for this implementation —
//! per-sample monitoring cost and consistency-engine scaling.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use omg_bench::video::monitor_windows;
use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow};
use omg_core::runtime::ThreadPool;
use omg_core::stream::StreamMonitor;
use omg_core::Monitor;
use omg_domains::helpers::{track_window, TrackedBox, VideoTrackSpec};
use omg_domains::{video_assertion_set, video_prepared_assertion_set, VideoPrepare};
use omg_geom::BBox2D;

fn make_windows(n: usize) -> Vec<omg_domains::VideoWindow> {
    monitor_windows(n, 3)
}

/// Per-window cost of running the full video assertion set through the
/// monitor — the runtime-monitoring overhead a deployment would pay.
/// `monitor/video_window` is the sequential per-invocation path;
/// `monitor/video_window_batch/N` is `process_batch` over the same
/// stream on `N` workers (bit-for-bit the same outputs — the comparison
/// is pure wall-clock, and `exp_throughput` reports it as windows/sec).
fn monitor_throughput(c: &mut Criterion) {
    let windows = make_windows(200);
    c.bench_function("monitor/video_window", |b| {
        b.iter_batched(
            || Monitor::with_assertions(video_assertion_set(0.45)),
            |mut monitor| {
                for w in &windows {
                    criterion::black_box(monitor.process(w));
                }
            },
            BatchSize::SmallInput,
        );
    });
    let mut group = c.benchmark_group("monitor/video_window_batch");
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pool, |b, pool| {
            b.iter_batched(
                || Monitor::with_assertions(video_assertion_set(0.45)),
                |mut monitor| {
                    criterion::black_box(monitor.process_batch(&windows, pool));
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Streaming-monitor cost on the same stream: one preparation (tracker
/// run + consistency check) per window, shared by the set — versus the
/// batch monitor's per-assertion re-derivation above. Outputs are
/// bit-for-bit identical; the comparison is pure wall-clock
/// (`exp_throughput --stream` reports it as windows/sec).
fn stream_monitor_throughput(c: &mut Criterion) {
    let windows = make_windows(200);
    c.bench_function("monitor/video_window_stream", |b| {
        b.iter_batched(
            || StreamMonitor::new(video_prepared_assertion_set(0.45), VideoPrepare::new(0.45)),
            |mut monitor| {
                for w in &windows {
                    criterion::black_box(monitor.ingest(w));
                }
            },
            BatchSize::SmallInput,
        );
    });
    let mut group = c.benchmark_group("monitor/video_window_stream_batch");
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pool, |b, pool| {
            b.iter_batched(
                || StreamMonitor::new(video_prepared_assertion_set(0.45), VideoPrepare::new(0.45)),
                |mut monitor| {
                    criterion::black_box(monitor.ingest_batch(&windows, pool));
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Consistency-engine cost vs. window length (checking + corrections).
fn consistency_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency/check");
    for len in [10usize, 50, 200] {
        let mut window = ConsistencyWindow::new();
        for t in 0..len {
            let boxes: Vec<TrackedBox> = (0..8)
                .map(|k| TrackedBox {
                    track: k,
                    class: (k % 3) as usize,
                    bbox: BBox2D::new(
                        k as f64 * 100.0 + t as f64,
                        100.0,
                        k as f64 * 100.0 + t as f64 + 80.0,
                        160.0,
                    )
                    .unwrap(),
                })
                .collect();
            window.push(t as f64 * 0.1, boxes);
        }
        let engine = ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(0.45);
        group.bench_with_input(BenchmarkId::from_parameter(len), &window, |b, w| {
            b.iter(|| criterion::black_box(engine.check(w)));
        });
    }
    group.finish();
}

/// Tracker-assignment cost per frame (the identification function behind
/// the video consistency assertions).
fn tracker_cost(c: &mut Criterion) {
    let windows = make_windows(100);
    c.bench_function("tracker/window5", |b| {
        b.iter(|| {
            for w in &windows {
                criterion::black_box(track_window(w));
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = monitor_throughput, stream_monitor_throughput, consistency_scaling, tracker_cost
}
criterion_main!(benches);
