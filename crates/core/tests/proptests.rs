//! Property-based tests for the assertion engine.

use omg_core::consistency::{AttrValue, ConsistencyEngine, ConsistencySpec, ConsistencyWindow};
use omg_core::runtime::ThreadPool;
use omg_core::{AssertionDb, AssertionId, AssertionSet, Monitor, Severity};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Out {
    id: u8,
    class: u8,
}

struct Spec;

impl ConsistencySpec for Spec {
    type Output = Out;
    type Id = u8;

    fn id(&self, o: &Out) -> u8 {
        o.id
    }

    fn attrs(&self, o: &Out) -> Vec<(String, AttrValue)> {
        vec![("class".to_string(), AttrValue::Int(o.class as i64))]
    }

    fn attr_keys(&self) -> Vec<String> {
        vec!["class".to_string()]
    }
}

fn arb_window() -> impl Strategy<Value = ConsistencyWindow<Out>> {
    proptest::collection::vec(proptest::collection::vec((0u8..4, 0u8..3), 0..4), 1..12).prop_map(
        |frames| {
            let mut w = ConsistencyWindow::new();
            for (t, outs) in frames.into_iter().enumerate() {
                w.push(
                    t as f64,
                    outs.into_iter()
                        .map(|(id, class)| Out { id, class })
                        .collect(),
                );
            }
            w
        },
    )
}

proptest! {
    /// The severity equals the violation count, and a single-invocation
    /// window can never violate temporal consistency.
    #[test]
    fn severity_equals_violation_count(w in arb_window(), t in 1.0f64..10.0) {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(t);
        let violations = engine.check(&w);
        prop_assert_eq!(engine.severity(&w).value(), violations.len() as f64);
        if w.len() == 1 {
            prop_assert!(violations.iter().all(|v| !v.is_temporal()));
        }
    }

    /// Consistent windows (every identifier keeps one class) never raise
    /// attribute violations.
    #[test]
    fn uniform_attributes_never_violate(
        ids in proptest::collection::vec(0u8..4, 1..10),
        class in 0u8..3,
    ) {
        let engine = ConsistencyEngine::new(Spec);
        let mut w = ConsistencyWindow::new();
        for (t, &id) in ids.iter().enumerate() {
            w.push(t as f64, vec![Out { id, class }]);
        }
        prop_assert!(engine.check(&w).is_empty());
    }

    /// A larger temporal threshold can only add violations (monotonicity):
    /// anything violating at threshold t also violates at t' > t.
    #[test]
    fn temporal_threshold_is_monotone(w in arb_window(), t in 1.0f64..5.0, extra in 0.1f64..5.0) {
        let small = ConsistencyEngine::new(Spec).with_temporal_threshold(t);
        let large = ConsistencyEngine::new(Spec).with_temporal_threshold(t + extra);
        let n_small = small.check(&w).iter().filter(|v| v.is_temporal()).count();
        let n_large = large.check(&w).iter().filter(|v| v.is_temporal()).count();
        prop_assert!(n_large >= n_small, "t={t}: {n_small} vs t+{extra}: {n_large}");
    }

    /// Corrections only reference valid window positions.
    #[test]
    fn corrections_reference_valid_positions(w in arb_window(), t in 1.0f64..10.0) {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(t);
        for c in engine.corrections(&w, |_, &id, _| Some(Out { id, class: 0 })) {
            prop_assert!(c.time_index() < w.len());
        }
    }

    /// The monitor's database always reconstructs exactly what was
    /// processed: counts, matrix shape, and per-sample severities.
    #[test]
    fn monitor_db_is_faithful(samples in proptest::collection::vec(-50i32..50, 1..40)) {
        let mut monitor: Monitor<i32> = Monitor::new();
        monitor.assertions_mut().add_fn("neg", |&x: &i32| Severity::from_bool(x < 0));
        monitor.assertions_mut().add_fn("mag", |&x: &i32| Severity::new(x.unsigned_abs() as f64));
        let reports: Vec<_> = samples.iter().map(|s| monitor.process(s)).collect();
        let matrix = monitor.db().severity_matrix();
        prop_assert_eq!(matrix.len(), samples.len());
        for (i, report) in reports.iter().enumerate() {
            prop_assert_eq!(&matrix[i], &report.severity_vector());
        }
        let neg_count = samples.iter().filter(|&&x| x < 0).count();
        prop_assert_eq!(monitor.db().fire_count(AssertionId(0)), neg_count);
    }

    /// Severity construction and ordering are consistent.
    #[test]
    fn severity_ordering_matches_values(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let sa = Severity::new(a);
        let sb = Severity::new(b);
        prop_assert_eq!(sa > sb, a > b);
        prop_assert_eq!(sa.max(sb).value(), a.max(b));
        prop_assert_eq!(sa.fired(), a > 0.0);
    }

    /// Database top-k is sorted by severity and bounded by k.
    #[test]
    fn db_top_k_is_sorted(values in proptest::collection::vec(0.0f64..10.0, 1..30), k in 1usize..10) {
        let mut db = AssertionDb::new();
        for (i, &v) in values.iter().enumerate() {
            db.record_sample(i, &[(AssertionId(0), Severity::new(v))]);
        }
        let top = db.top_by_severity(AssertionId(0), k);
        prop_assert!(top.len() <= k);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let fired = values.iter().filter(|&&v| v > 0.0).count();
        prop_assert_eq!(top.len(), k.min(fired));
    }

    /// `check_all` is deterministic and stable across calls.
    #[test]
    fn check_all_is_deterministic(x in any::<i32>()) {
        let mut set: AssertionSet<i32> = AssertionSet::new();
        set.add_fn("even", |&v: &i32| Severity::from_bool(v % 2 == 0));
        set.add_fn("big", |&v: &i32| Severity::from_bool(v.abs() > 1000));
        prop_assert_eq!(set.check_all(&x), set.check_all(&x));
    }

    /// The hard tentpole invariant: `process_batch` at 1, 2, and 8
    /// threads produces bit-for-bit the same reports and database state
    /// as the sequential per-sample path, for random assertion sets over
    /// random sample streams.
    #[test]
    fn process_batch_is_deterministic_across_thread_counts(
        samples in proptest::collection::vec(-1000i32..1000, 0..60),
        thresholds in proptest::collection::vec(-500i32..500, 1..6),
        scale in 1u32..100,
    ) {
        let build = || {
            let mut m: Monitor<i32> = Monitor::new();
            for (k, &t) in thresholds.iter().enumerate() {
                m.assertions_mut().add_fn(
                    format!("above-{k}"),
                    move |&x: &i32| Severity::from_bool(x > t),
                );
            }
            m.assertions_mut().add_fn("scaled-mag", move |&x: &i32| {
                Severity::new(x.unsigned_abs() as f64 / scale as f64)
            });
            m
        };
        let mut seq = build();
        let seq_reports: Vec<_> = samples.iter().map(|s| seq.process(s)).collect();
        for threads in [1usize, 2, 8] {
            let mut par = build();
            let par_reports = par.process_batch(&samples, &ThreadPool::exact(threads));
            prop_assert_eq!(&par_reports, &seq_reports, "threads={}", threads);
            prop_assert_eq!(par.db(), seq.db(), "threads={}", threads);
            prop_assert_eq!(par.samples_processed(), seq.samples_processed());
        }
    }

    /// `ThreadPool::map_indexed` always merges in index order, at any
    /// thread count and batch size.
    #[test]
    fn map_indexed_merges_in_order(n in 0usize..300, threads in 1usize..9, salt in any::<u64>()) {
        let pool = ThreadPool::exact(threads);
        let got = pool.map_indexed(n, |i| (i as u64).wrapping_mul(salt));
        let want: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(salt)).collect();
        prop_assert_eq!(got, want);
    }

    /// Splitting one stream into arbitrary consecutive batches leaves the
    /// database identical to one big batch.
    #[test]
    fn batch_splits_do_not_change_db(
        samples in proptest::collection::vec(-100i32..100, 1..50),
        split in 0usize..50,
    ) {
        let split = split.min(samples.len());
        let build = || {
            let mut m: Monitor<i32> = Monitor::new();
            m.assertions_mut().add_fn("neg", |&x: &i32| Severity::from_bool(x < 0));
            m.assertions_mut().add_fn("mag", |&x: &i32| Severity::new(x.unsigned_abs() as f64));
            m
        };
        let pool = ThreadPool::exact(2);
        let mut whole = build();
        whole.process_batch(&samples, &pool);
        let mut halves = build();
        halves.process_batch(&samples[..split], &pool);
        halves.process_batch(&samples[split..], &pool);
        prop_assert_eq!(whole.db(), halves.db());
        prop_assert_eq!(whole.samples_processed(), halves.samples_processed());
    }
}
