use crate::{AssertionId, Severity};

/// One row of the assertion database: an assertion's outcome on a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Monotonic index of the sample within the monitor's stream.
    pub sample: usize,
    /// The assertion that produced this outcome.
    pub assertion: AssertionId,
    /// The outcome.
    pub severity: Severity,
}

/// The append-only assertion database of the paper's Figure 2.
///
/// Stores every `(sample, assertion, severity)` outcome — including
/// abstentions, so severity *vectors* (one entry per assertion) can be
/// reconstructed per sample for BAL — and answers the queries the rest of
/// the system needs: fire counts (BAL's marginal-reduction signal),
/// flagged-sample lists (active-learning pools), and top-by-severity
/// rankings (dashboards, Figure 3's high-confidence-error analysis).
#[derive(Debug, Clone, Default)]
pub struct AssertionDb {
    records: Vec<Record>,
    num_assertions: usize,
    num_samples: usize,
}

impl AssertionDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the outcomes of one sample (a dense `(id, severity)` vector
    /// as produced by `AssertionSet::check_all`).
    pub fn record_sample(&mut self, sample: usize, outcomes: &[(AssertionId, Severity)]) {
        for &(assertion, severity) in outcomes {
            self.num_assertions = self.num_assertions.max(assertion.0 + 1);
            self.records.push(Record {
                sample,
                assertion,
                severity,
            });
        }
        self.num_samples = self.num_samples.max(sample + 1);
    }

    /// Total number of rows (including abstentions).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database has no rows.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct samples recorded (by maximum sample index).
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of assertion dimensions seen.
    pub fn num_assertions(&self) -> usize {
        self.num_assertions
    }

    /// Iterates over all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// How many samples fired the given assertion.
    pub fn fire_count(&self, assertion: AssertionId) -> usize {
        self.records
            .iter()
            .filter(|r| r.assertion == assertion && r.severity.fired())
            .count()
    }

    /// Fire counts for every assertion dimension, in id order.
    pub fn fire_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_assertions];
        for r in &self.records {
            if r.severity.fired() {
                counts[r.assertion.0] += 1;
            }
        }
        counts
    }

    /// Sample indices that fired the given assertion, in sample order,
    /// with their severities.
    pub fn fired_samples(&self, assertion: AssertionId) -> Vec<(usize, Severity)> {
        self.records
            .iter()
            .filter(|r| r.assertion == assertion && r.severity.fired())
            .map(|r| (r.sample, r.severity))
            .collect()
    }

    /// Sample indices that fired *any* assertion (deduplicated, in order).
    pub fn any_fired_samples(&self) -> Vec<usize> {
        let mut fired: Vec<usize> = self
            .records
            .iter()
            .filter(|r| r.severity.fired())
            .map(|r| r.sample)
            .collect();
        fired.sort_unstable();
        fired.dedup();
        fired
    }

    /// The top `k` firing samples of an assertion by descending severity
    /// (ties broken by earlier sample).
    pub fn top_by_severity(&self, assertion: AssertionId, k: usize) -> Vec<(usize, Severity)> {
        let mut fired = self.fired_samples(assertion);
        fired.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        fired.truncate(k);
        fired
    }

    /// The dense severity matrix: one row per sample index in
    /// `0..num_samples()`, one column per assertion id. Missing entries
    /// (samples never checked against some assertion) are abstentions.
    ///
    /// This matrix is exactly BAL's context input: "Each entry in a
    /// feature vector is the severity score from a model assertion" (§3).
    pub fn severity_matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.num_assertions]; self.num_samples];
        for r in &self.records {
            m[r.sample][r.assertion.0] = r.severity.value();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(rows: &[(usize, usize, f64)]) -> AssertionDb {
        let mut db = AssertionDb::new();
        // Group rows by sample so record_sample sees sample vectors.
        for &(s, a, v) in rows {
            db.record_sample(s, &[(AssertionId(a), Severity::new(v))]);
        }
        db
    }

    #[test]
    fn record_and_count() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 0.0), (2, 0, 2.0), (2, 1, 1.0)]);
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
        assert_eq!(db.num_samples(), 3);
        assert_eq!(db.num_assertions(), 2);
        assert_eq!(db.fire_count(AssertionId(0)), 2);
        assert_eq!(db.fire_count(AssertionId(1)), 1);
        assert_eq!(db.fire_counts(), vec![2, 1]);
    }

    #[test]
    fn fired_samples_in_order() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 0.0), (2, 0, 3.0)]);
        assert_eq!(
            db.fired_samples(AssertionId(0)),
            vec![(0, Severity::new(1.0)), (2, Severity::new(3.0))]
        );
    }

    #[test]
    fn any_fired_deduplicates() {
        let db = db_with(&[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 0.0), (2, 1, 1.0)]);
        assert_eq!(db.any_fired_samples(), vec![0, 2]);
    }

    #[test]
    fn top_by_severity_ranks() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 5.0), (2, 0, 3.0), (3, 0, 5.0)]);
        let top = db.top_by_severity(AssertionId(0), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1); // severity 5, earlier sample wins the tie
        assert_eq!(top[1].0, 3);
    }

    #[test]
    fn severity_matrix_is_dense() {
        let db = db_with(&[(0, 0, 1.0), (2, 1, 4.0)]);
        let m = db.severity_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], vec![1.0, 0.0]);
        assert_eq!(m[1], vec![0.0, 0.0]);
        assert_eq!(m[2], vec![0.0, 4.0]);
    }

    #[test]
    fn empty_db_queries() {
        let db = AssertionDb::new();
        assert!(db.is_empty());
        assert_eq!(db.fire_counts(), Vec::<usize>::new());
        assert!(db.any_fired_samples().is_empty());
        assert!(db.severity_matrix().is_empty());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 2.0)]);
        let samples: Vec<usize> = db.iter().map(|r| r.sample).collect();
        assert_eq!(samples, vec![0, 1]);
    }
}
