use crate::{AssertionId, Severity, SeverityMatrix};

/// One row of the assertion database: an assertion's outcome on a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Monotonic index of the sample within the monitor's stream.
    pub sample: usize,
    /// The assertion that produced this outcome.
    pub assertion: AssertionId,
    /// The outcome.
    pub severity: Severity,
}

/// The append-only assertion database of the paper's Figure 2.
///
/// Stores every `(sample, assertion, severity)` outcome — including
/// abstentions, so severity *vectors* (one entry per assertion) can be
/// reconstructed per sample for BAL — and answers the queries the rest of
/// the system needs: fire counts (BAL's marginal-reduction signal),
/// flagged-sample lists (active-learning pools), and top-by-severity
/// rankings (dashboards, Figure 3's high-confidence-error analysis).
///
/// # Sharding
///
/// Internally the log is sharded **per assertion**: shard `m` holds the
/// `(sample, severity)` append log of assertion `m`, in recording order.
/// Per-assertion queries (`fire_count`, `fired_samples`,
/// `top_by_severity`) scan one shard instead of the whole log, and
/// [`AssertionDb::record_batch`] appends a whole batch of dense outcome
/// rows shard-by-shard (columnar, cache-friendly) — the merge step of
/// `Monitor::process_batch`. Recording a batch column-wise produces
/// exactly the same shard contents as recording its samples one at a
/// time, which is what keeps the parallel monitor bit-for-bit equal to
/// the sequential one.
///
/// # Retention
///
/// A long-lived monitor records forever, so the database supports an
/// explicit retention policy: [`AssertionDb::evict_before`] drops the
/// rows of samples older than a watermark and
/// [`AssertionDb::retain_recent`] keeps a fixed-size suffix of recent
/// samples — the memory-flatness lever of the multi-tenant service
/// layer. Eviction only ever touches rows *below* the watermark: every
/// query about retained ("live") samples answers exactly as if nothing
/// had been evicted, and the lifetime counters
/// ([`AssertionDb::lifetime_len`], [`AssertionDb::lifetime_fire_counts`])
/// keep the full-history totals regardless (a property test holds both
/// against a never-evicting model).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AssertionDb {
    /// `shards[m]` = append log of assertion `m`, in recording order.
    shards: Vec<Vec<(usize, Severity)>>,
    num_records: usize,
    num_samples: usize,
    /// Retention watermark: rows of samples below this index have been
    /// evicted (monotonically non-decreasing).
    evicted_before: usize,
    /// Rows ever recorded, including evicted ones.
    lifetime_records: usize,
    /// `lifetime_fired[m]` = rows of assertion `m` that ever fired,
    /// including evicted ones.
    lifetime_fired: Vec<usize>,
}

impl AssertionDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_mut(&mut self, assertion: AssertionId) -> &mut Vec<(usize, Severity)> {
        if assertion.0 >= self.shards.len() {
            self.shards.resize_with(assertion.0 + 1, Vec::new);
            self.lifetime_fired.resize(assertion.0 + 1, 0);
        }
        // PANIC: the resize above guarantees the slot exists.
        &mut self.shards[assertion.0]
    }

    /// Appends the outcomes of one sample (a dense `(id, severity)` vector
    /// as produced by `AssertionSet::check_all`).
    pub fn record_sample(&mut self, sample: usize, outcomes: &[(AssertionId, Severity)]) {
        for &(assertion, severity) in outcomes {
            self.shard_mut(assertion).push((sample, severity));
            if severity.fired() {
                self.lifetime_fired[assertion.0] += 1;
            }
        }
        self.num_records += outcomes.len();
        self.lifetime_records += outcomes.len();
        self.num_samples = self.num_samples.max(sample + 1);
    }

    /// Appends a batch of consecutive samples' outcome rows, column-wise:
    /// row `i` is the dense outcome vector of sample `first_sample + i`.
    ///
    /// Equivalent to calling [`AssertionDb::record_sample`] on each row in
    /// order (same shard contents, same query answers), but appends whole
    /// per-assertion columns at a time. Rows that are *not* dense
    /// id-ordered vectors fall back to the row-major path.
    pub fn record_batch(&mut self, first_sample: usize, rows: &[Vec<(AssertionId, Severity)>]) {
        let Some(first_row) = rows.first() else {
            return;
        };
        let dim = first_row.len();
        let dense = rows
            .iter()
            .all(|r| r.len() == dim && r.iter().enumerate().all(|(m, &(id, _))| id.0 == m));
        if !dense {
            for (i, row) in rows.iter().enumerate() {
                self.record_sample(first_sample + i, row);
            }
            return;
        }
        for m in 0..dim {
            let shard = self.shard_mut(AssertionId(m));
            shard.reserve(rows.len());
            shard.extend(
                rows.iter()
                    .enumerate()
                    .map(|(i, row)| (first_sample + i, row[m].1)),
            );
            self.lifetime_fired[m] += rows.iter().filter(|row| row[m].1.fired()).count();
        }
        self.num_records += rows.len() * dim;
        self.lifetime_records += rows.len() * dim;
        self.num_samples = self.num_samples.max(first_sample + rows.len());
    }

    /// Appends the outcomes of one sample from a **dense columnar row**:
    /// `values[m]` is the raw severity of `AssertionId(m)` — the shape
    /// [`crate::AssertionSet::check_all_prepared_values`] produces and a
    /// [`SeverityMatrix`] row holds.
    ///
    /// Identical shard contents to [`AssertionDb::record_sample`] on the
    /// equivalent `(id, severity)` vector (`Severity::new` round-trips
    /// every value exactly).
    ///
    /// # Panics
    ///
    /// Panics if any value is negative, NaN, or infinite (the
    /// [`Severity::new`] contract).
    pub fn record_row(&mut self, sample: usize, values: &[f64]) {
        if !values.is_empty() {
            self.shard_mut(AssertionId(values.len() - 1));
        }
        // PANIC: shard_mut above grew both vectors to values.len(),
        // and m < values.len().
        for (m, &v) in values.iter().enumerate() {
            let severity = Severity::new(v);
            self.shards[m].push((sample, severity));
            if severity.fired() {
                self.lifetime_fired[m] += 1;
            }
        }
        self.num_records += values.len();
        self.lifetime_records += values.len();
        self.num_samples = self.num_samples.max(sample + 1);
    }

    /// Appends a batch of consecutive samples' outcomes from a
    /// [`SeverityMatrix`]: row `i` of the matrix becomes the dense
    /// outcome vector of sample `first_sample + i`, appended shard-by-
    /// shard (columnar). Equivalent to [`AssertionDb::record_row`] per
    /// row, in order.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative, NaN, or infinite.
    pub fn record_matrix(&mut self, first_sample: usize, matrix: &SeverityMatrix) {
        let (rows, dim) = (matrix.len(), matrix.width());
        if rows == 0 {
            return;
        }
        if dim > 0 {
            self.shard_mut(AssertionId(dim - 1));
        }
        for m in 0..dim {
            let shard = &mut self.shards[m];
            shard.reserve(rows);
            let mut fired = 0usize;
            for i in 0..rows {
                let severity = Severity::new(matrix.row(i)[m]);
                shard.push((first_sample + i, severity));
                fired += usize::from(severity.fired());
            }
            self.lifetime_fired[m] += fired;
        }
        self.num_records += rows * dim;
        self.lifetime_records += rows * dim;
        self.num_samples = self.num_samples.max(first_sample + rows);
    }

    /// Drops every row whose sample index is below `min_sample` and
    /// advances the retention watermark to it; returns the number of
    /// rows dropped. The watermark is monotonic — re-evicting below it
    /// is a no-op. Queries over retained samples are unaffected:
    /// [`AssertionDb::fire_count`], [`AssertionDb::fired_samples`], and
    /// friends answer exactly as a never-evicting database filtered to
    /// `sample >= evicted_before()` would, while the lifetime counters
    /// keep the full-history totals.
    pub fn evict_before(&mut self, min_sample: usize) -> usize {
        if min_sample <= self.evicted_before {
            return 0;
        }
        let mut dropped = 0usize;
        for shard in &mut self.shards {
            let before = shard.len();
            shard.retain(|&(sample, _)| sample >= min_sample);
            dropped += before - shard.len();
        }
        self.evicted_before = min_sample;
        self.num_records -= dropped;
        dropped
    }

    /// Retains (at most) the most recent `keep` sample indices, evicting
    /// the rows of everything older; returns the number of rows dropped.
    /// This is the per-session record cap of the service layer: calling
    /// it after every record keeps resident memory flat under unbounded
    /// traffic.
    pub fn retain_recent(&mut self, keep: usize) -> usize {
        self.evict_before(self.num_samples.saturating_sub(keep))
    }

    /// The retention watermark: rows of samples below this index have
    /// been evicted. Zero for a database that never evicted.
    pub fn evicted_before(&self) -> usize {
        self.evicted_before
    }

    /// Rows ever recorded, including evicted ones (compare
    /// [`AssertionDb::len`], which counts retained rows only).
    pub fn lifetime_len(&self) -> usize {
        self.lifetime_records
    }

    /// Full-history fire counts for every assertion dimension, in id
    /// order — unaffected by eviction (compare
    /// [`AssertionDb::fire_counts`], which scans retained rows only).
    pub fn lifetime_fire_counts(&self) -> Vec<usize> {
        self.lifetime_fired.clone()
    }

    /// Number of retained rows (including abstentions; excluding evicted
    /// rows — see [`AssertionDb::lifetime_len`] for the full-history
    /// count).
    pub fn len(&self) -> usize {
        self.num_records
    }

    /// Whether the database has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_records == 0
    }

    /// Number of distinct samples recorded (by maximum sample index).
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of assertion dimensions seen.
    pub fn num_assertions(&self) -> usize {
        self.shards.len()
    }

    /// Iterates over all rows in `(sample, assertion)` order — the order
    /// the sequential monitor records them in.
    pub fn iter(&self) -> impl Iterator<Item = Record> + '_ {
        let mut rows: Vec<Record> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(m, shard)| {
                shard.iter().map(move |&(sample, severity)| Record {
                    sample,
                    assertion: AssertionId(m),
                    severity,
                })
            })
            .collect();
        rows.sort_by_key(|r| (r.sample, r.assertion));
        rows.into_iter()
    }

    /// How many samples fired the given assertion. Scans only that
    /// assertion's shard.
    pub fn fire_count(&self, assertion: AssertionId) -> usize {
        self.shards
            .get(assertion.0)
            .map_or(0, |shard| shard.iter().filter(|(_, s)| s.fired()).count())
    }

    /// Fire counts for every assertion dimension, in id order.
    pub fn fire_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| shard.iter().filter(|(_, s)| s.fired()).count())
            .collect()
    }

    /// Sample indices that fired the given assertion, in recording order,
    /// with their severities. Scans only that assertion's shard.
    pub fn fired_samples(&self, assertion: AssertionId) -> Vec<(usize, Severity)> {
        self.shards.get(assertion.0).map_or_else(Vec::new, |shard| {
            shard.iter().filter(|(_, s)| s.fired()).copied().collect()
        })
    }

    /// Sample indices that fired *any* assertion (deduplicated, in order).
    pub fn any_fired_samples(&self) -> Vec<usize> {
        let mut fired: Vec<usize> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .iter()
                    .filter(|(_, s)| s.fired())
                    .map(|&(sample, _)| sample)
            })
            .collect();
        fired.sort_unstable();
        fired.dedup();
        fired
    }

    /// The top `k` firing samples of an assertion by descending severity
    /// (ties broken by earlier sample).
    pub fn top_by_severity(&self, assertion: AssertionId, k: usize) -> Vec<(usize, Severity)> {
        let mut fired = self.fired_samples(assertion);
        fired.sort_by(|a, b| b.1.value().total_cmp(&a.1.value()).then(a.0.cmp(&b.0)));
        fired.truncate(k);
        fired
    }

    /// The dense severity matrix: one row per sample index in
    /// `0..num_samples()`, one column per assertion id. Missing entries
    /// (samples never checked against some assertion) are abstentions.
    ///
    /// This matrix is exactly BAL's context input: "Each entry in a
    /// feature vector is the severity score from a model assertion" (§3).
    /// Evicted samples' rows read as all-abstention.
    pub fn severity_matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.shards.len()]; self.num_samples];
        for (a, shard) in self.shards.iter().enumerate() {
            for &(sample, severity) in shard {
                m[sample][a] = severity.value();
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(rows: &[(usize, usize, f64)]) -> AssertionDb {
        let mut db = AssertionDb::new();
        // Group rows by sample so record_sample sees sample vectors.
        for &(s, a, v) in rows {
            db.record_sample(s, &[(AssertionId(a), Severity::new(v))]);
        }
        db
    }

    #[test]
    fn record_and_count() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 0.0), (2, 0, 2.0), (2, 1, 1.0)]);
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
        assert_eq!(db.num_samples(), 3);
        assert_eq!(db.num_assertions(), 2);
        assert_eq!(db.fire_count(AssertionId(0)), 2);
        assert_eq!(db.fire_count(AssertionId(1)), 1);
        assert_eq!(db.fire_counts(), vec![2, 1]);
        assert_eq!(db.fire_count(AssertionId(9)), 0, "unseen shard is empty");
    }

    #[test]
    fn fired_samples_in_order() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 0.0), (2, 0, 3.0)]);
        assert_eq!(
            db.fired_samples(AssertionId(0)),
            vec![(0, Severity::new(1.0)), (2, Severity::new(3.0))]
        );
        assert!(db.fired_samples(AssertionId(7)).is_empty());
    }

    #[test]
    fn any_fired_deduplicates() {
        let db = db_with(&[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 0.0), (2, 1, 1.0)]);
        assert_eq!(db.any_fired_samples(), vec![0, 2]);
    }

    #[test]
    fn top_by_severity_ranks() {
        let db = db_with(&[(0, 0, 1.0), (1, 0, 5.0), (2, 0, 3.0), (3, 0, 5.0)]);
        let top = db.top_by_severity(AssertionId(0), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1); // severity 5, earlier sample wins the tie
        assert_eq!(top[1].0, 3);
    }

    #[test]
    fn severity_matrix_is_dense() {
        let db = db_with(&[(0, 0, 1.0), (2, 1, 4.0)]);
        let m = db.severity_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], vec![1.0, 0.0]);
        assert_eq!(m[1], vec![0.0, 0.0]);
        assert_eq!(m[2], vec![0.0, 4.0]);
    }

    #[test]
    fn empty_db_queries() {
        let db = AssertionDb::new();
        assert!(db.is_empty());
        assert_eq!(db.fire_counts(), Vec::<usize>::new());
        assert!(db.any_fired_samples().is_empty());
        assert!(db.severity_matrix().is_empty());
        assert_eq!(db.iter().count(), 0);
    }

    #[test]
    fn iter_is_sample_major_assertion_minor() {
        let mut db = AssertionDb::new();
        db.record_sample(
            0,
            &[
                (AssertionId(0), Severity::new(1.0)),
                (AssertionId(1), Severity::ABSTAIN),
            ],
        );
        db.record_sample(
            1,
            &[
                (AssertionId(0), Severity::ABSTAIN),
                (AssertionId(1), Severity::new(2.0)),
            ],
        );
        let order: Vec<(usize, usize)> = db.iter().map(|r| (r.sample, r.assertion.0)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn record_batch_equals_per_sample_recording() {
        let rows: Vec<Vec<(AssertionId, Severity)>> = (0..7)
            .map(|i| {
                vec![
                    (AssertionId(0), Severity::new(i as f64)),
                    (AssertionId(1), Severity::from_bool(i % 2 == 0)),
                ]
            })
            .collect();
        let mut batched = AssertionDb::new();
        batched.record_sample(0, &rows[0]);
        batched.record_batch(1, &rows[1..]);

        let mut sequential = AssertionDb::new();
        for (i, row) in rows.iter().enumerate() {
            sequential.record_sample(i, row);
        }
        assert_eq!(batched, sequential);
        assert_eq!(batched.len(), 14);
        assert_eq!(batched.num_samples(), 7);
    }

    #[test]
    fn record_batch_sparse_rows_fall_back() {
        // Rows that are not dense id-ordered vectors still record
        // identically to the per-sample path.
        let rows = vec![
            vec![(AssertionId(2), Severity::new(1.0))],
            vec![
                (AssertionId(1), Severity::new(2.0)),
                (AssertionId(0), Severity::ABSTAIN),
            ],
        ];
        let mut batched = AssertionDb::new();
        batched.record_batch(5, &rows);
        let mut sequential = AssertionDb::new();
        sequential.record_sample(5, &rows[0]);
        sequential.record_sample(6, &rows[1]);
        assert_eq!(batched, sequential);
        assert_eq!(batched.num_assertions(), 3);
    }

    #[test]
    fn record_row_equals_record_sample() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, (i % 2) as f64]).collect();
        let mut columnar = AssertionDb::new();
        let mut classic = AssertionDb::new();
        for (i, row) in rows.iter().enumerate() {
            columnar.record_row(i, row);
            let outcomes: Vec<(AssertionId, Severity)> = row
                .iter()
                .enumerate()
                .map(|(m, &v)| (AssertionId(m), Severity::new(v)))
                .collect();
            classic.record_sample(i, &outcomes);
        }
        assert_eq!(columnar, classic);
        // An empty row advances the sample horizon without inventing
        // assertion dimensions.
        let mut db = AssertionDb::new();
        db.record_row(3, &[]);
        assert_eq!(db.num_assertions(), 0);
        assert_eq!(db.num_samples(), 4);
    }

    #[test]
    fn record_matrix_equals_per_row_recording() {
        let mut matrix = SeverityMatrix::new();
        for i in 0..7 {
            matrix.push_row(&[i as f64, ((i + 1) % 3) as f64, 0.5 * i as f64]);
        }
        let mut batched = AssertionDb::new();
        batched.record_matrix(2, &matrix);
        let mut sequential = AssertionDb::new();
        for i in 0..matrix.len() {
            sequential.record_row(2 + i, matrix.row(i));
        }
        assert_eq!(batched, sequential);
        assert_eq!(batched.len(), 21);
        assert_eq!(batched.num_samples(), 9);
        // Empty matrix is a no-op.
        let mut db = AssertionDb::new();
        db.record_matrix(0, &SeverityMatrix::new());
        assert!(db.is_empty());
    }

    #[test]
    fn record_batch_empty_is_noop() {
        let mut db = AssertionDb::new();
        db.record_batch(0, &[]);
        assert!(db.is_empty());
    }

    #[test]
    fn evict_before_drops_old_rows_and_keeps_lifetime_totals() {
        let mut db = db_with(&[(0, 0, 1.0), (1, 0, 0.0), (2, 0, 2.0), (3, 1, 1.0)]);
        assert_eq!(db.lifetime_len(), 4);
        assert_eq!(db.evict_before(2), 2);
        assert_eq!(db.evicted_before(), 2);
        assert_eq!(db.len(), 2, "two retained rows");
        assert_eq!(db.lifetime_len(), 4, "lifetime total survives eviction");
        assert_eq!(db.fire_count(AssertionId(0)), 1, "only sample 2 retained");
        assert_eq!(db.lifetime_fire_counts(), vec![2, 1]);
        assert_eq!(db.num_samples(), 4, "sample horizon is lifetime");
        assert_eq!(db.evict_before(1), 0, "watermark is monotonic");
        assert_eq!(db.evicted_before(), 2);
    }

    #[test]
    fn retain_recent_caps_resident_rows() {
        let mut db = AssertionDb::new();
        for s in 0..50 {
            db.record_sample(s, &[(AssertionId(0), Severity::new(s as f64))]);
            db.retain_recent(8);
        }
        assert!(db.len() <= 8, "resident rows stay capped, got {}", db.len());
        assert_eq!(db.evicted_before(), 42);
        assert_eq!(db.num_samples(), 50);
        assert_eq!(db.lifetime_len(), 50);
        // Retained queries cover exactly the live suffix.
        let fired: Vec<usize> = db
            .fired_samples(AssertionId(0))
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(fired, (42..50).collect::<Vec<_>>());
    }

    /// The naive reference for the eviction property test: a flat log
    /// that records everything and never evicts.
    struct NaiveLog {
        rows: Vec<(usize, usize, Severity)>,
    }

    impl NaiveLog {
        fn fired_of(&self, assertion: usize, min_sample: usize) -> Vec<(usize, Severity)> {
            self.rows
                .iter()
                .filter(|&&(s, a, sev)| a == assertion && s >= min_sample && sev.fired())
                .map(|&(s, _, sev)| (s, sev))
                .collect()
        }
    }

    proptest::proptest! {
        /// The eviction satellite property: after **any** interleaving of
        /// record and evict operations, per-assertion fire counts and
        /// `fired_samples` lookups over live (retained) samples match a
        /// naive model that never evicted them, and the lifetime counters
        /// match the naive model's full history.
        #[test]
        fn eviction_matches_the_naive_model(
            ops in proptest::collection::vec((0usize..10, 0usize..12), 1..80)
        ) {
            const DIMS: usize = 3;
            let mut db = AssertionDb::new();
            let mut naive = NaiveLog { rows: Vec::new() };
            let mut next_sample = 0usize;
            for &(kind, value) in &ops {
                if kind < 7 {
                    // Record one sample: a dense row whose severities are
                    // a mix of abstentions and firings derived from
                    // (sample, value).
                    let outcomes: Vec<(AssertionId, Severity)> = (0..DIMS)
                        .map(|a| {
                            let v = ((next_sample + value + a) % 4) as f64;
                            (AssertionId(a), Severity::new(v))
                        })
                        .collect();
                    db.record_sample(next_sample, &outcomes);
                    for &(id, sev) in &outcomes {
                        naive.rows.push((next_sample, id.0, sev));
                    }
                    next_sample += 1;
                } else if kind < 9 {
                    db.evict_before(value.min(next_sample));
                } else {
                    db.retain_recent(value);
                }
                // Invariants hold after every step, not just at the end.
                let live = db.evicted_before();
                for a in 0..DIMS.min(db.num_assertions()) {
                    let id = AssertionId(a);
                    let want = naive.fired_of(a, live);
                    proptest::prop_assert_eq!(
                        db.fired_samples(id).len(), want.len(),
                        "fired_samples diverged for assertion {} (live >= {})", a, live
                    );
                    proptest::prop_assert_eq!(db.fired_samples(id), want);
                    proptest::prop_assert_eq!(db.fire_count(id), db.fired_samples(id).len());
                    proptest::prop_assert_eq!(
                        db.lifetime_fire_counts()[a],
                        naive.fired_of(a, 0).len(),
                        "lifetime fire count must ignore eviction"
                    );
                }
                let retained_rows = naive.rows.iter().filter(|&&(s, _, _)| s >= live).count();
                proptest::prop_assert_eq!(db.len(), retained_rows);
                proptest::prop_assert_eq!(db.lifetime_len(), naive.rows.len());
                proptest::prop_assert_eq!(db.num_samples(), next_sample);
            }
        }
    }
}
