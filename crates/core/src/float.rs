//! NaN-total float ordering helpers shared by every scoring path.
//!
//! The replication invariants (stream==batch, indexed==reference,
//! service==sequential, all bit-for-bit) only hold if every float
//! comparison in the workspace resolves the same way on every run and
//! at every thread count. `PartialOrd` on floats cannot promise that:
//! `partial_cmp` returns `None` for NaN (so `unwrap_or(Equal)` silently
//! turns a poisoned score into an arbitrary tie-break), and
//! `f64::max`/`f64::min` *drop* NaN operands, so a reduction's result
//! depends on where in the fold the NaN appeared.
//!
//! These helpers build everything on [`f64::total_cmp`] (IEEE 754
//! `totalOrder`): `-NaN < -inf < … < -0.0 < +0.0 < … < +inf < +NaN`.
//! On NaN-free data they agree with the usual order (and [`fmax`] /
//! [`fmin`] agree with `f64::max`/`f64::min`, except that they resolve
//! the `±0.0` tie deterministically — `fmax` prefers `+0.0`, `fmin`
//! prefers `-0.0` — where std may return either operand); with NaN
//! present they stay deterministic instead of order-sensitive. The linter's
//! `float-order-on-hot-path` rule (see `omg-lint --explain`) pins the
//! hot path to these forms.

use std::cmp::Ordering;

/// The shared total order on `f64`: a plain re-export of
/// [`f64::total_cmp`] in function form, so call sites can pass it by
/// name (`sort_by(total_order)`).
#[inline]
#[must_use]
pub fn total_order(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// Total-order maximum: the greater operand under [`f64::total_cmp`].
///
/// Unlike `f64::max`, never drops a NaN (`+NaN` sorts above `+inf`),
/// so folds are order-independent and a poisoned input stays visible
/// in the output instead of vanishing on some thread interleavings.
#[inline]
#[must_use]
pub fn fmax(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == Ordering::Less {
        b
    } else {
        a
    }
}

/// Total-order minimum: the lesser operand under [`f64::total_cmp`].
#[inline]
#[must_use]
pub fn fmin(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == Ordering::Greater {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_std_on_nan_free_data() {
        let xs = [-3.5, -0.0, 0.0, 1.25, 7e9, f64::INFINITY, f64::NEG_INFINITY];
        for &a in &xs {
            for &b in &xs {
                if a == 0.0 && b == 0.0 {
                    // std max/min may return either signed zero; the
                    // total order resolves the tie deterministically:
                    // fmax prefers +0.0, fmin prefers -0.0.
                    let pos = 0.0f64.to_bits();
                    let neg = (-0.0f64).to_bits();
                    let has_pos = a.to_bits() == pos || b.to_bits() == pos;
                    let has_neg = a.to_bits() == neg || b.to_bits() == neg;
                    let expect_max = if has_pos { pos } else { neg };
                    let expect_min = if has_neg { neg } else { pos };
                    assert_eq!(fmax(a, b).to_bits(), expect_max, "fmax({a}, {b})");
                    assert_eq!(fmin(a, b).to_bits(), expect_min, "fmin({a}, {b})");
                } else {
                    assert_eq!(fmax(a, b).to_bits(), a.max(b).to_bits(), "fmax({a}, {b})");
                    assert_eq!(fmin(a, b).to_bits(), a.min(b).to_bits(), "fmin({a}, {b})");
                }
            }
        }
    }

    #[test]
    fn nan_is_never_dropped_and_folds_are_order_independent() {
        let xs = [1.0, f64::NAN, 3.0, 2.0];
        let fwd = xs.iter().copied().fold(f64::NEG_INFINITY, fmax);
        let rev = xs.iter().rev().copied().fold(f64::NEG_INFINITY, fmax);
        assert_eq!(fwd.to_bits(), rev.to_bits());
        assert!(fwd.is_nan(), "a poisoned score must stay visible");
        // std's max is order-sensitive here — exactly the hazard:
        assert_eq!(xs.iter().copied().fold(f64::NEG_INFINITY, f64::max), 3.0);
    }

    #[test]
    fn total_order_is_total_on_nan() {
        let mut v = [2.0, f64::NAN, -1.0, 0.5];
        v.sort_by(total_order);
        assert_eq!(&v[..3], &[-1.0, 0.5, 2.0]);
        assert!(v[3].is_nan());
    }
}
