use crate::{Assertion, FnAssertion, Severity};

/// Stable index of an assertion within an [`AssertionSet`].
///
/// BAL treats each data point's per-assertion severity vector as its
/// bandit context; `AssertionId` is the dimension index of that vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssertionId(pub usize);

impl std::fmt::Display for AssertionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assertion#{}", self.0)
    }
}

/// The prepared-path check of one assertion: severity from the sample
/// plus the set's shared preparation artifact (see
/// [`crate::stream::Prepare`]).
type PreparedCheck<S, P> = Box<dyn Fn(&S, &P) -> Severity + Send + Sync>;

/// One registered assertion: the self-contained reference check, plus an
/// optional fast-path check that consumes a shared per-sample preparation
/// artifact instead of re-deriving it.
struct Entry<S, P> {
    assertion: Box<dyn Assertion<S>>,
    prepared: Option<PreparedCheck<S, P>>,
}

/// An ordered registry of assertions over sample type `S` — the paper's
/// collaboratively maintained "assertion database" interface (Figure 2).
///
/// The second type parameter `P` is the *shared preparation artifact*
/// expensive per-sample derivations (tracking, beat segmentation) produce
/// once per sample for every assertion to consume; it defaults to `()`
/// (no shared preparation), so `AssertionSet<S>` reads as before. See
/// [`crate::stream`] for the preparation layer and
/// [`AssertionSet::check_all_prepared`] for the fast path.
///
/// # Example
///
/// ```
/// use omg_core::{AssertionSet, FnAssertion, Severity};
///
/// let mut set: AssertionSet<Vec<i32>> = AssertionSet::new();
/// let id = set.add_fn("non-empty", |xs: &Vec<i32>| Severity::from_bool(xs.is_empty()));
/// let outcomes = set.check_all(&vec![]);
/// assert_eq!(outcomes.len(), 1);
/// assert!(outcomes[0].1.fired());
/// assert_eq!(set.name(id), "non-empty");
/// ```
pub struct AssertionSet<S, P = ()> {
    entries: Vec<Entry<S, P>>,
}

impl<S: 'static, P> AssertionSet<S, P> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    fn assert_unique(&self, name: &str) {
        assert!(
            self.entries.iter().all(|e| e.assertion.name() != name),
            "duplicate assertion name: {name}"
        );
    }

    /// Registers an assertion and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another assertion with the same name is already
    /// registered (names key experiment tables and must be unique).
    pub fn add<A>(&mut self, assertion: A) -> AssertionId
    where
        A: Assertion<S> + 'static,
    {
        self.add_boxed(Box::new(assertion))
    }

    /// Registers a closure assertion — OMG's `AddAssertion(func)`.
    pub fn add_fn<N, F>(&mut self, name: N, func: F) -> AssertionId
    where
        N: Into<String>,
        F: Fn(&S) -> Severity + Send + Sync + 'static,
    {
        self.add(FnAssertion::new(name, func))
    }

    /// Registers a boxed assertion (used by the consistency engine, which
    /// generates assertions dynamically).
    pub fn add_boxed(&mut self, assertion: Box<dyn Assertion<S>>) -> AssertionId {
        self.assert_unique(assertion.name());
        self.entries.push(Entry {
            assertion,
            prepared: None,
        });
        AssertionId(self.entries.len() - 1)
    }

    /// Registers an assertion together with its prepared-path check.
    ///
    /// `assertion.check` stays the self-contained reference
    /// implementation (it derives whatever it needs from the sample
    /// alone); `prepared` must compute the *same* severity from the
    /// sample plus a shared preparation artifact. The engine's
    /// equivalence property tests hold the two paths bit-for-bit equal.
    ///
    /// # Panics
    ///
    /// Panics if another assertion with the same name is already
    /// registered.
    pub fn add_prepared<A, F>(&mut self, assertion: A, prepared: F) -> AssertionId
    where
        A: Assertion<S> + 'static,
        F: Fn(&S, &P) -> Severity + Send + Sync + 'static,
    {
        self.assert_unique(assertion.name());
        self.entries.push(Entry {
            assertion: Box::new(assertion),
            prepared: Some(Box::new(prepared)),
        });
        AssertionId(self.entries.len() - 1)
    }

    /// Number of registered assertions (the bandit context dimension `d`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The name of an assertion.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn name(&self, id: AssertionId) -> &str {
        // PANIC: documented contract — ids are minted by this set.
        self.entries[id.0].assertion.name()
    }

    /// All assertion names in id order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.assertion.name()).collect()
    }

    /// All assertion ids in order.
    pub fn ids(&self) -> Vec<AssertionId> {
        (0..self.entries.len()).map(AssertionId).collect()
    }

    /// The id of the assertion with the given name, if registered.
    pub fn id_of(&self, name: &str) -> Option<AssertionId> {
        self.entries
            .iter()
            .position(|e| e.assertion.name() == name)
            .map(AssertionId)
    }

    /// Whether the assertion has a prepared-path check registered.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn has_prepared(&self, id: AssertionId) -> bool {
        self.entries[id.0].prepared.is_some()
    }

    /// Runs every assertion on the sample, returning `(id, severity)` for
    /// all of them (including abstentions, so the result is a dense
    /// severity vector).
    ///
    /// This is the *reference* path: each assertion is self-contained and
    /// re-derives any expensive artifact itself. The streaming engine
    /// calls [`AssertionSet::check_all_prepared`] instead so the
    /// derivation runs once per sample.
    pub fn check_all(&self, sample: &S) -> Vec<(AssertionId, Severity)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (AssertionId(i), e.assertion.check(sample)))
            .collect()
    }

    /// Runs every assertion on the sample with a shared, already-computed
    /// preparation artifact: assertions registered via
    /// [`AssertionSet::add_prepared`] consume `prep` instead of
    /// re-deriving it, the rest fall back to their plain check.
    ///
    /// For deterministic preparers this is bit-for-bit equal to
    /// [`AssertionSet::check_all`] (enforced by the engine's equivalence
    /// property tests); only the wall-clock differs.
    pub fn check_all_prepared(&self, sample: &S, prep: &P) -> Vec<(AssertionId, Severity)> {
        let mut out = Vec::with_capacity(self.entries.len());
        self.check_all_prepared_into(sample, prep, &mut out);
        out
    }

    /// [`AssertionSet::check_all_prepared`] into a caller-owned row
    /// buffer: `out` is cleared and refilled with one `(id, severity)`
    /// per assertion.
    ///
    /// This is the allocation-free form the streaming hot loop uses — a
    /// scorer reuses one row buffer across every window it scores instead
    /// of allocating a fresh `Vec` per center.
    pub fn check_all_prepared_into(
        &self,
        sample: &S,
        prep: &P,
        out: &mut Vec<(AssertionId, Severity)>,
    ) {
        out.clear();
        out.extend(self.entries.iter().enumerate().map(|(i, e)| {
            let severity = match &e.prepared {
                Some(check) => check(sample, prep),
                None => e.assertion.check(sample),
            };
            (AssertionId(i), severity)
        }));
    }

    /// The columnar form of [`AssertionSet::check_all_prepared_into`]:
    /// `out` is cleared and refilled with the **raw severity values** in
    /// assertion-id order — one dense `f64` row ready to push into a
    /// [`crate::SeverityMatrix`].
    ///
    /// The id of position `m` is `AssertionId(m)` by construction, so no
    /// information is lost relative to the `(id, severity)` row form;
    /// `Severity::new` round-trips each value exactly.
    pub fn check_all_prepared_values(&self, sample: &S, prep: &P, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.entries.iter().map(|e| {
            let severity = match &e.prepared {
                Some(check) => check(sample, prep),
                None => e.assertion.check(sample),
            };
            severity.value()
        }));
    }

    /// Runs one assertion on the sample.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn check_one(&self, id: AssertionId, sample: &S) -> Severity {
        self.entries[id.0].assertion.check(sample)
    }

    /// Runs one assertion on the sample with a shared preparation
    /// artifact (falling back to the plain check when the assertion has
    /// no prepared path).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn check_one_prepared(&self, id: AssertionId, sample: &S, prep: &P) -> Severity {
        match &self.entries[id.0].prepared {
            Some(check) => check(sample, prep),
            None => self.entries[id.0].assertion.check(sample),
        }
    }
}

impl<S: 'static, P> Default for AssertionSet<S, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: 'static, P> std::fmt::Debug for AssertionSet<S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssertionSet")
            .field("assertions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> AssertionSet<i32> {
        let mut set = AssertionSet::new();
        set.add_fn("negative", |&x: &i32| Severity::from_bool(x < 0));
        set.add_fn("huge", |&x: &i32| Severity::from_bool(x > 1000));
        set
    }

    #[test]
    fn add_and_check_all() {
        let set = sample_set();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let out = set.check_all(&-5);
        assert!(out[0].1.fired());
        assert!(!out[1].1.fired());
        let out = set.check_all(&5000);
        assert!(!out[0].1.fired());
        assert!(out[1].1.fired());
    }

    #[test]
    fn names_and_lookup() {
        let set = sample_set();
        assert_eq!(set.names(), vec!["negative", "huge"]);
        assert_eq!(set.id_of("huge"), Some(AssertionId(1)));
        assert_eq!(set.id_of("missing"), None);
        assert_eq!(set.name(AssertionId(0)), "negative");
        assert_eq!(set.ids(), vec![AssertionId(0), AssertionId(1)]);
    }

    #[test]
    fn check_one() {
        let set = sample_set();
        assert!(set.check_one(AssertionId(0), &-1).fired());
        assert!(!set.check_one(AssertionId(0), &1).fired());
    }

    #[test]
    fn check_all_prepared_into_reuses_the_row_buffer() {
        let set = sample_set();
        let mut row = Vec::new();
        set.check_all_prepared_into(&-5, &(), &mut row);
        assert_eq!(row, set.check_all_prepared(&-5, &()));
        let cap = row.capacity();
        set.check_all_prepared_into(&5000, &(), &mut row);
        assert_eq!(row, set.check_all_prepared(&5000, &()));
        assert_eq!(row.capacity(), cap, "a refill must not reallocate");
    }

    #[test]
    fn check_all_prepared_values_matches_the_row_form() {
        let set = sample_set();
        let mut values = Vec::new();
        for sample in [-5, 0, 5000] {
            set.check_all_prepared_values(&sample, &(), &mut values);
            let want: Vec<f64> = set
                .check_all_prepared(&sample, &())
                .into_iter()
                .map(|(_, sev)| sev.value())
                .collect();
            assert_eq!(values, want);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate assertion name")]
    fn duplicate_names_rejected() {
        let mut set = sample_set();
        set.add_fn("negative", |_: &i32| Severity::ABSTAIN);
    }

    #[test]
    fn debug_lists_names() {
        let set = sample_set();
        let s = format!("{set:?}");
        assert!(s.contains("negative") && s.contains("huge"));
    }

    #[test]
    fn display_of_id() {
        assert_eq!(AssertionId(3).to_string(), "assertion#3");
    }
}
