use crate::{Assertion, FnAssertion, Severity};

/// Stable index of an assertion within an [`AssertionSet`].
///
/// BAL treats each data point's per-assertion severity vector as its
/// bandit context; `AssertionId` is the dimension index of that vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssertionId(pub usize);

impl std::fmt::Display for AssertionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assertion#{}", self.0)
    }
}

/// An ordered registry of assertions over sample type `S` — the paper's
/// collaboratively maintained "assertion database" interface (Figure 2).
///
/// # Example
///
/// ```
/// use omg_core::{AssertionSet, FnAssertion, Severity};
///
/// let mut set: AssertionSet<Vec<i32>> = AssertionSet::new();
/// let id = set.add_fn("non-empty", |xs: &Vec<i32>| Severity::from_bool(xs.is_empty()));
/// let outcomes = set.check_all(&vec![]);
/// assert_eq!(outcomes.len(), 1);
/// assert!(outcomes[0].1.fired());
/// assert_eq!(set.name(id), "non-empty");
/// ```
pub struct AssertionSet<S> {
    assertions: Vec<Box<dyn Assertion<S>>>,
}

impl<S: 'static> AssertionSet<S> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            assertions: Vec::new(),
        }
    }

    /// Registers an assertion and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another assertion with the same name is already
    /// registered (names key experiment tables and must be unique).
    pub fn add<A>(&mut self, assertion: A) -> AssertionId
    where
        A: Assertion<S> + 'static,
    {
        assert!(
            self.assertions.iter().all(|a| a.name() != assertion.name()),
            "duplicate assertion name: {}",
            assertion.name()
        );
        self.assertions.push(Box::new(assertion));
        AssertionId(self.assertions.len() - 1)
    }

    /// Registers a closure assertion — OMG's `AddAssertion(func)`.
    pub fn add_fn<N, F>(&mut self, name: N, func: F) -> AssertionId
    where
        N: Into<String>,
        F: Fn(&S) -> Severity + Send + Sync + 'static,
    {
        self.add(FnAssertion::new(name, func))
    }

    /// Registers a boxed assertion (used by the consistency engine, which
    /// generates assertions dynamically).
    pub fn add_boxed(&mut self, assertion: Box<dyn Assertion<S>>) -> AssertionId {
        assert!(
            self.assertions.iter().all(|a| a.name() != assertion.name()),
            "duplicate assertion name: {}",
            assertion.name()
        );
        self.assertions.push(assertion);
        AssertionId(self.assertions.len() - 1)
    }

    /// Number of registered assertions (the bandit context dimension `d`).
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// The name of an assertion.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn name(&self, id: AssertionId) -> &str {
        self.assertions[id.0].name()
    }

    /// All assertion names in id order.
    pub fn names(&self) -> Vec<&str> {
        self.assertions.iter().map(|a| a.name()).collect()
    }

    /// All assertion ids in order.
    pub fn ids(&self) -> Vec<AssertionId> {
        (0..self.assertions.len()).map(AssertionId).collect()
    }

    /// The id of the assertion with the given name, if registered.
    pub fn id_of(&self, name: &str) -> Option<AssertionId> {
        self.assertions
            .iter()
            .position(|a| a.name() == name)
            .map(AssertionId)
    }

    /// Runs every assertion on the sample, returning `(id, severity)` for
    /// all of them (including abstentions, so the result is a dense
    /// severity vector).
    pub fn check_all(&self, sample: &S) -> Vec<(AssertionId, Severity)> {
        self.assertions
            .iter()
            .enumerate()
            .map(|(i, a)| (AssertionId(i), a.check(sample)))
            .collect()
    }

    /// Runs one assertion on the sample.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn check_one(&self, id: AssertionId, sample: &S) -> Severity {
        self.assertions[id.0].check(sample)
    }
}

impl<S: 'static> Default for AssertionSet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: 'static> std::fmt::Debug for AssertionSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssertionSet")
            .field("assertions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> AssertionSet<i32> {
        let mut set = AssertionSet::new();
        set.add_fn("negative", |&x: &i32| Severity::from_bool(x < 0));
        set.add_fn("huge", |&x: &i32| Severity::from_bool(x > 1000));
        set
    }

    #[test]
    fn add_and_check_all() {
        let set = sample_set();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let out = set.check_all(&-5);
        assert!(out[0].1.fired());
        assert!(!out[1].1.fired());
        let out = set.check_all(&5000);
        assert!(!out[0].1.fired());
        assert!(out[1].1.fired());
    }

    #[test]
    fn names_and_lookup() {
        let set = sample_set();
        assert_eq!(set.names(), vec!["negative", "huge"]);
        assert_eq!(set.id_of("huge"), Some(AssertionId(1)));
        assert_eq!(set.id_of("missing"), None);
        assert_eq!(set.name(AssertionId(0)), "negative");
        assert_eq!(set.ids(), vec![AssertionId(0), AssertionId(1)]);
    }

    #[test]
    fn check_one() {
        let set = sample_set();
        assert!(set.check_one(AssertionId(0), &-1).fired());
        assert!(!set.check_one(AssertionId(0), &1).fired());
    }

    #[test]
    #[should_panic(expected = "duplicate assertion name")]
    fn duplicate_names_rejected() {
        let mut set = sample_set();
        set.add_fn("negative", |_: &i32| Severity::ABSTAIN);
    }

    #[test]
    fn debug_lists_names() {
        let set = sample_set();
        let s = format!("{set:?}");
        assert!(s.contains("negative") && s.contains("huge"));
    }

    #[test]
    fn display_of_id() {
        assert_eq!(AssertionId(3).to_string(), "assertion#3");
    }
}
