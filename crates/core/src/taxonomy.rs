//! The assertion taxonomy of the paper's Table 5 (Appendix B), as a typed
//! registry.
//!
//! The paper taxonomizes common classes of model assertions to help
//! developers "look for assertions in other domains". Encoding the
//! taxonomy as data lets the experiment harness regenerate Table 5 and
//! lets tooling tag registered assertions with their class.

/// Top-level assertion class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssertionClass {
    /// Outputs from multiple models, modes, or views should agree.
    Consistency,
    /// Domain experts can express physical constraints or unlikely
    /// scenarios.
    DomainKnowledge,
    /// Certain input perturbations should not change outputs.
    Perturbation,
    /// Inputs should conform to a schema.
    InputValidation,
}

impl AssertionClass {
    /// Human-readable name as used in the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            AssertionClass::Consistency => "Consistency",
            AssertionClass::DomainKnowledge => "Domain knowledge",
            AssertionClass::Perturbation => "Perturbation",
            AssertionClass::InputValidation => "Input validation",
        }
    }
}

/// Sub-class within an [`AssertionClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssertionSubclass {
    /// Model outputs from multiple sources should agree.
    MultiSource,
    /// Model outputs from multiple modes of data should agree.
    MultiModal,
    /// Model outputs from multiple views of the same data should agree.
    MultiView,
    /// Physical constraints on model outputs.
    Physical,
    /// Scenarios that are unlikely to occur.
    UnlikelyScenario,
    /// Inserting certain data should not modify model outputs.
    Insertion,
    /// Replacing parts of the input with similar data should not modify
    /// model outputs.
    Similar,
    /// Adding noise should not modify model outputs.
    Noise,
    /// Inputs should conform to a schema.
    SchemaValidation,
}

impl AssertionSubclass {
    /// Human-readable name as used in the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            AssertionSubclass::MultiSource => "Multi-source",
            AssertionSubclass::MultiModal => "Multi-modal",
            AssertionSubclass::MultiView => "Multi-view",
            AssertionSubclass::Physical => "Physical",
            AssertionSubclass::UnlikelyScenario => "Unlikely scenario",
            AssertionSubclass::Insertion => "Insertion",
            AssertionSubclass::Similar => "Similar",
            AssertionSubclass::Noise => "Noise",
            AssertionSubclass::SchemaValidation => "Schema validation",
        }
    }
}

/// One row of Table 5: a sub-class with its description and examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyEntry {
    /// The top-level class.
    pub class: AssertionClass,
    /// The sub-class.
    pub subclass: AssertionSubclass,
    /// What the sub-class checks.
    pub description: &'static str,
    /// Concrete instantiations (with potential severity scores).
    pub examples: &'static [&'static str],
}

/// The full taxonomy, in the paper's row order.
pub fn taxonomy() -> Vec<TaxonomyEntry> {
    use AssertionClass as C;
    use AssertionSubclass as S;
    vec![
        TaxonomyEntry {
            class: C::Consistency,
            subclass: S::MultiSource,
            description: "Model outputs from multiple sources should agree",
            examples: &[
                "Verifying human labels (number of labelers that disagree)",
                "Multiple models (number of models that disagree)",
            ],
        },
        TaxonomyEntry {
            class: C::Consistency,
            subclass: S::MultiModal,
            description: "Model outputs from multiple modes of data should agree",
            examples: &[
                "Multiple sensors (disagreements between LIDAR and camera models)",
                "Multiple data sources (text and images)",
            ],
        },
        TaxonomyEntry {
            class: C::Consistency,
            subclass: S::MultiView,
            description: "Model outputs from multiple views of the same data should agree",
            examples: &[
                "Video analytics (overlapping views of different cameras should agree)",
                "Medical imaging (different angles should agree)",
            ],
        },
        TaxonomyEntry {
            class: C::DomainKnowledge,
            subclass: S::Physical,
            description: "Physical constraints on model outputs",
            examples: &[
                "Video analytics (cars should not flicker)",
                "Earthquake detection (earthquakes should appear across sensors consistently)",
                "Protein-protein interaction (number of overlapping atoms)",
            ],
        },
        TaxonomyEntry {
            class: C::DomainKnowledge,
            subclass: S::UnlikelyScenario,
            description: "Scenarios that are unlikely to occur",
            examples: &[
                "Video analytics (maximum confidence of 3 vehicles that highly overlap)",
                "Text generation (two of the same word should not appear sequentially)",
            ],
        },
        TaxonomyEntry {
            class: C::Perturbation,
            subclass: S::Insertion,
            description: "Inserting certain types of data should not modify model outputs",
            examples: &[
                "Visual analytics (a synthetically added car should be detected)",
                "LIDAR detection (similar to visual analytics)",
            ],
        },
        TaxonomyEntry {
            class: C::Perturbation,
            subclass: S::Similar,
            description: "Replacing parts of the input with similar data should not modify model outputs",
            examples: &[
                "Sentiment analysis (classification should not change with synonyms)",
                "Object detection (painting objects different colors should not change the detection)",
            ],
        },
        TaxonomyEntry {
            class: C::Perturbation,
            subclass: S::Noise,
            description: "Adding noise should not modify model outputs",
            examples: &[
                "Image classification (small Gaussian noise should not affect classification)",
                "Time series (small Gaussian noise should not affect classification)",
            ],
        },
        TaxonomyEntry {
            class: C::InputValidation,
            subclass: S::SchemaValidation,
            description: "Inputs should conform to a schema",
            examples: &[
                "Boolean features should not have inputs that are not 0 or 1",
                "All features should be present",
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_subclasses_like_the_paper() {
        assert_eq!(taxonomy().len(), 9);
    }

    #[test]
    fn classes_cover_all_four() {
        let t = taxonomy();
        for c in [
            AssertionClass::Consistency,
            AssertionClass::DomainKnowledge,
            AssertionClass::Perturbation,
            AssertionClass::InputValidation,
        ] {
            assert!(t.iter().any(|e| e.class == c), "missing class {c:?}");
        }
    }

    #[test]
    fn consistency_has_three_subclasses() {
        let n = taxonomy()
            .iter()
            .filter(|e| e.class == AssertionClass::Consistency)
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    fn every_entry_has_description_and_examples() {
        for e in taxonomy() {
            assert!(!e.description.is_empty());
            assert!(!e.examples.is_empty());
            assert!(!e.class.name().is_empty());
            assert!(!e.subclass.name().is_empty());
        }
    }

    #[test]
    fn names_match_paper_vocabulary() {
        assert_eq!(AssertionClass::DomainKnowledge.name(), "Domain knowledge");
        assert_eq!(AssertionSubclass::MultiModal.name(), "Multi-modal");
        assert_eq!(
            AssertionSubclass::SchemaValidation.name(),
            "Schema validation"
        );
    }
}
