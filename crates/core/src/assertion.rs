use crate::Severity;

/// A model assertion over a domain sample type `S`.
///
/// A sample bundles whatever the assertion needs to see — typically a short
/// window of recent model inputs and outputs, matching the paper's
/// signature `flickering(recent_frames, recent_outputs) -> Float`. The
/// assertion returns a [`Severity`]: `0` abstains, anything positive flags
/// a potential error of this assertion's type.
///
/// Implementations must be deterministic pure functions of the sample;
/// the engine may re-check samples (e.g. when replaying the assertion
/// database).
pub trait Assertion<S>: Send + Sync {
    /// A short, stable, human-readable name (used in reports, the
    /// assertion database, and experiment tables).
    fn name(&self) -> &str;

    /// Checks the sample and returns a severity score.
    fn check(&self, sample: &S) -> Severity;
}

/// A closure-backed [`Assertion`] — the equivalent of OMG's
/// `AddAssertion(func)` for registering "arbitrary Python functions".
///
/// # Example
///
/// ```
/// use omg_core::{Assertion, FnAssertion, Severity};
///
/// let non_empty = FnAssertion::new("output-non-empty", |outputs: &Vec<u32>| {
///     Severity::from_bool(outputs.is_empty())
/// });
/// assert_eq!(non_empty.name(), "output-non-empty");
/// assert!(non_empty.check(&vec![]).fired());
/// assert!(!non_empty.check(&vec![1]).fired());
/// ```
pub struct FnAssertion<S> {
    name: String,
    func: Box<dyn Fn(&S) -> Severity + Send + Sync>,
}

impl<S> FnAssertion<S> {
    /// Wraps a closure as an assertion.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new<N, F>(name: N, func: F) -> Self
    where
        N: Into<String>,
        F: Fn(&S) -> Severity + Send + Sync + 'static,
    {
        let name = name.into();
        assert!(!name.is_empty(), "assertion name must be non-empty");
        Self {
            name,
            func: Box::new(func),
        }
    }

    /// Wraps a Boolean predicate as an assertion (`true` means the
    /// assertion fires).
    pub fn from_predicate<N, F>(name: N, pred: F) -> Self
    where
        N: Into<String>,
        F: Fn(&S) -> bool + Send + Sync + 'static,
    {
        Self::new(name, move |s| Severity::from_bool(pred(s)))
    }
}

impl<S> Assertion<S> for FnAssertion<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, sample: &S) -> Severity {
        (self.func)(sample)
    }
}

impl<S> std::fmt::Debug for FnAssertion<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnAssertion")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_assertion_checks() {
        let a = FnAssertion::new("count-evens", |xs: &Vec<i32>| {
            Severity::from_count(xs.iter().filter(|&&x| x % 2 == 0).count())
        });
        assert_eq!(a.check(&vec![1, 2, 4]).value(), 2.0);
        assert!(!a.check(&vec![1, 3]).fired());
    }

    #[test]
    fn predicate_assertion_is_boolean() {
        let a =
            FnAssertion::from_predicate("has-negative", |xs: &Vec<i32>| xs.iter().any(|&x| x < 0));
        assert_eq!(a.check(&vec![1, -1]), Severity::FIRED);
        assert_eq!(a.check(&vec![1, 1]), Severity::ABSTAIN);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_rejected() {
        FnAssertion::new("", |_: &u32| Severity::ABSTAIN);
    }

    #[test]
    fn debug_shows_name() {
        let a = FnAssertion::new("x", |_: &u32| Severity::ABSTAIN);
        assert!(format!("{a:?}").contains("\"x\""));
    }

    #[test]
    fn assertions_are_object_safe() {
        let a: Box<dyn Assertion<u32>> =
            Box::new(FnAssertion::new("boxed", |_: &u32| Severity::FIRED));
        assert!(a.check(&0).fired());
    }
}
