use crate::runtime::ThreadPool;
use crate::{AssertionDb, AssertionId, AssertionSet, Severity};

/// The outcomes of running the assertion set on one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReport {
    /// The sample's monotonic index in the monitor's stream.
    pub sample: usize,
    /// Dense `(assertion, severity)` vector in assertion-id order.
    pub outcomes: Vec<(AssertionId, Severity)>,
}

impl SampleReport {
    /// The severity the given assertion produced on this sample, if it
    /// was checked.
    ///
    /// Outcomes from `AssertionSet::check_all` are dense in id order, so
    /// this is a direct index; hand-built sparse reports fall back to a
    /// scan.
    pub fn severity(&self, id: AssertionId) -> Option<Severity> {
        match self.outcomes.get(id.0) {
            Some(&(a, s)) if a == id => Some(s),
            _ => self
                .outcomes
                .iter()
                .find(|&&(a, _)| a == id)
                .map(|&(_, s)| s),
        }
    }

    /// Whether the given assertion fired on this sample.
    pub fn fired(&self, id: AssertionId) -> bool {
        self.severity(id).is_some_and(|s| s.fired())
    }

    /// Whether any assertion fired.
    pub fn any_fired(&self) -> bool {
        self.outcomes.iter().any(|&(_, s)| s.fired())
    }

    /// The highest severity across assertions on this sample.
    pub fn max_severity(&self) -> Severity {
        self.outcomes
            .iter()
            .map(|&(_, s)| s)
            .fold(Severity::ABSTAIN, Severity::max)
    }

    /// The severity vector as plain floats (BAL's context for this
    /// sample).
    pub fn severity_vector(&self) -> Vec<f64> {
        self.outcomes.iter().map(|&(_, s)| s.value()).collect()
    }
}

/// A corrective action hook: invoked when an assertion's severity reaches
/// its threshold.
type ActionHook<S> = Box<dyn FnMut(&S, &SampleReport) + Send>;

/// Runtime monitor: runs registered assertions after every model
/// invocation, appends outcomes to the [`AssertionDb`], and fires
/// corrective-action hooks.
///
/// This is the deployment-time face of OMG (§2.3): "model assertions can
/// be used for monitoring and validating all parts of the ML
/// development/deployment pipeline … to log unexpected behavior or
/// automatically trigger corrective actions".
///
/// See the [crate-level example](crate) for typical usage.
pub struct Monitor<S> {
    assertions: AssertionSet<S>,
    db: AssertionDb,
    next_sample: usize,
    actions: Vec<(Severity, ActionHook<S>)>,
}

impl<S: 'static> Monitor<S> {
    /// Creates a monitor with an empty assertion set.
    pub fn new() -> Self {
        Self {
            assertions: AssertionSet::new(),
            db: AssertionDb::new(),
            next_sample: 0,
            actions: Vec::new(),
        }
    }

    /// Creates a monitor around an existing assertion set.
    pub fn with_assertions(assertions: AssertionSet<S>) -> Self {
        Self {
            assertions,
            db: AssertionDb::new(),
            next_sample: 0,
            actions: Vec::new(),
        }
    }

    /// The registered assertions.
    pub fn assertions(&self) -> &AssertionSet<S> {
        &self.assertions
    }

    /// Mutable access for registering assertions.
    pub fn assertions_mut(&mut self) -> &mut AssertionSet<S> {
        &mut self.assertions
    }

    /// The assertion database accumulated so far.
    pub fn db(&self) -> &AssertionDb {
        &self.db
    }

    /// Registers a corrective action invoked whenever a sample's maximum
    /// severity is at least `threshold` (e.g. log, alert, disengage an
    /// autopilot).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` does not fire (`threshold == ABSTAIN` would
    /// trigger on every sample; require an explicit positive threshold).
    pub fn on_severity<F>(&mut self, threshold: Severity, action: F)
    where
        F: FnMut(&S, &SampleReport) + Send + 'static,
    {
        assert!(
            threshold.fired(),
            "corrective-action threshold must be positive"
        );
        self.actions.push((threshold, Box::new(action)));
    }

    /// Runs all assertions on one sample: records outcomes in the
    /// database, fires any corrective actions, and returns the report.
    pub fn process(&mut self, sample: &S) -> SampleReport {
        let outcomes = self.assertions.check_all(sample);
        let report = SampleReport {
            sample: self.next_sample,
            outcomes,
        };
        self.db.record_sample(report.sample, &report.outcomes);
        self.next_sample += 1;
        let max = report.max_severity();
        for (threshold, action) in &mut self.actions {
            if max >= *threshold {
                action(sample, &report);
            }
        }
        report
    }

    /// Processes a batch of samples, returning one report per sample.
    pub fn process_all<'a, I>(&mut self, samples: I) -> Vec<SampleReport>
    where
        I: IntoIterator<Item = &'a S>,
        S: 'a,
    {
        samples.into_iter().map(|s| self.process(s)).collect()
    }

    /// Processes a batch of samples, scoring every `(sample, assertion)`
    /// pair across the pool's workers, then merging deterministically.
    ///
    /// The parallel phase shares `&self.assertions` across workers
    /// (assertions are pure `Send + Sync` functions) and computes each
    /// sample's dense outcome vector; the merge phase then runs on the
    /// calling thread **in sample order**: outcomes are appended to the
    /// [`AssertionDb`] shard-by-shard and corrective actions fire in the
    /// same order the sequential path would fire them.
    ///
    /// **Determinism invariant:** for pure assertions, this produces
    /// bit-for-bit the same reports, database contents, and corrective-
    /// action sequence as calling [`Monitor::process`] on each sample in
    /// order, at any thread count (enforced by the engine's property
    /// tests at 1/2/8 threads).
    pub fn process_batch(&mut self, samples: &[S], pool: &ThreadPool) -> Vec<SampleReport>
    where
        S: Sync,
    {
        let matrix =
            crate::stream::score_batch(&self.assertions, &crate::stream::NoPrep, samples, pool);
        let first = self.next_sample;
        self.db.record_matrix(first, &matrix);
        self.next_sample += samples.len();
        let mut reports = Vec::with_capacity(samples.len());
        for (i, row) in matrix.iter_rows().enumerate() {
            // Severity::new round-trips raw values exactly, so these
            // outcome rows are bit-for-bit the sequential path's.
            let outcomes: Vec<(AssertionId, Severity)> = row
                .iter()
                .enumerate()
                .map(|(m, &v)| (AssertionId(m), Severity::new(v)))
                .collect();
            let report = SampleReport {
                sample: first + i,
                outcomes,
            };
            let max = report.max_severity();
            for (threshold, action) in &mut self.actions {
                if max >= *threshold {
                    action(&samples[i], &report);
                }
            }
            reports.push(report);
        }
        reports
    }

    /// Number of samples processed.
    pub fn samples_processed(&self) -> usize {
        self.next_sample
    }
}

impl<S: 'static> Default for Monitor<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: 'static> std::fmt::Debug for Monitor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("assertions", &self.assertions.names())
            .field("samples_processed", &self.next_sample)
            .field("actions", &self.actions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn monitor() -> Monitor<i32> {
        let mut m = Monitor::new();
        m.assertions_mut()
            .add_fn("negative", |&x: &i32| Severity::from_bool(x < 0));
        m.assertions_mut().add_fn("magnitude", |&x: &i32| {
            Severity::new(x.unsigned_abs() as f64 / 100.0)
        });
        m
    }

    #[test]
    fn process_records_and_reports() {
        let mut m = monitor();
        let r = m.process(&-5);
        assert_eq!(r.sample, 0);
        assert!(r.fired(AssertionId(0)));
        assert!(r.any_fired());
        let r2 = m.process(&3);
        assert_eq!(r2.sample, 1);
        assert!(!r2.fired(AssertionId(0)));
        assert_eq!(m.samples_processed(), 2);
        assert_eq!(m.db().fire_count(AssertionId(0)), 1);
    }

    #[test]
    fn max_severity_and_vector() {
        let mut m = monitor();
        let r = m.process(&-200);
        assert_eq!(r.max_severity().value(), 2.0);
        assert_eq!(r.severity_vector(), vec![1.0, 2.0]);
    }

    #[test]
    fn corrective_action_fires_above_threshold() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        let mut m = monitor();
        m.on_severity(Severity::new(1.5), move |_, _| {
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        m.process(&-10); // max severity 1.0 < 1.5
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        m.process(&-500); // magnitude severity 5.0
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn abstain_threshold_rejected() {
        monitor().on_severity(Severity::ABSTAIN, |_, _| {});
    }

    #[test]
    fn process_all_batches() {
        let mut m = monitor();
        let samples = vec![-1, 2, -3];
        let reports = m.process_all(&samples);
        assert_eq!(reports.len(), 3);
        assert_eq!(m.db().fire_count(AssertionId(0)), 2);
        assert_eq!(m.db().any_fired_samples(), vec![0, 1, 2]); // magnitude fires on all
    }

    #[test]
    fn severity_matrix_round_trip() {
        let mut m = monitor();
        m.process(&-100);
        m.process(&0);
        let matrix = m.db().severity_matrix();
        assert_eq!(matrix, vec![vec![1.0, 1.0], vec![0.0, 0.0]]);
    }

    #[test]
    fn debug_output() {
        let m = monitor();
        let s = format!("{m:?}");
        assert!(s.contains("negative"));
    }

    #[test]
    fn process_batch_matches_sequential() {
        let samples: Vec<i32> = (-50..50).map(|x| x * 7).collect();
        let mut seq = monitor();
        let seq_reports: Vec<_> = samples.iter().map(|s| seq.process(s)).collect();
        for threads in [1, 2, 8] {
            let mut par = monitor();
            let par_reports = par.process_batch(&samples, &ThreadPool::exact(threads));
            assert_eq!(par_reports, seq_reports, "threads={threads}");
            assert_eq!(par.db(), seq.db(), "threads={threads}");
            assert_eq!(par.samples_processed(), seq.samples_processed());
        }
    }

    #[test]
    fn process_batch_fires_actions_in_sample_order() {
        let fired = Arc::new(std::sync::Mutex::new(Vec::new()));
        let fired2 = fired.clone();
        let mut m = monitor();
        m.on_severity(Severity::new(1.5), move |_, r: &SampleReport| {
            fired2.lock().unwrap().push(r.sample);
        });
        let samples = vec![-500, 1, -300, 2, -900];
        m.process_batch(&samples, &ThreadPool::exact(4));
        assert_eq!(*fired.lock().unwrap(), vec![0, 2, 4]);
    }

    #[test]
    fn process_batch_then_process_continues_the_stream() {
        let mut m = monitor();
        m.process_batch(&[-1, 2], &ThreadPool::exact(2));
        let r = m.process(&-3);
        assert_eq!(r.sample, 2);
        assert_eq!(m.db().num_samples(), 3);
    }

    #[test]
    fn sparse_report_lookup_falls_back() {
        // Hand-built sparse report: outcome index != assertion id.
        let r = SampleReport {
            sample: 0,
            outcomes: vec![(AssertionId(3), Severity::FIRED)],
        };
        assert!(r.fired(AssertionId(3)));
        assert!(!r.fired(AssertionId(0)));
        assert_eq!(r.severity(AssertionId(3)), Some(Severity::FIRED));
        assert_eq!(r.severity(AssertionId(1)), None);
    }

    #[test]
    fn monitor_is_send() {
        // Compile-time: a monitor (assertions, db, and boxed `FnMut +
        // Send` hooks) can move to another thread whenever its sample
        // type can.
        fn assert_send<T: Send>() {}
        assert_send::<Monitor<i32>>();
        assert_send::<Monitor<Vec<String>>>();
        // AssertionSet is additionally Sync (shared by batch workers).
        fn assert_sync<T: Sync>() {}
        assert_sync::<AssertionSet<i32>>();
        assert_send::<AssertionSet<i32>>();
    }
}
