use std::fmt;

/// The score returned by a model assertion.
///
/// Per §2.1 of the paper, an assertion returns a continuous value
/// indicating the severity of a specific error type; **`0` represents an
/// abstention** and Boolean assertions return only `0` or `1`. Scores need
/// not be calibrated — downstream algorithms (BAL's severity-rank sampling)
/// use only their relative ordering.
///
/// Severities are finite and non-negative by construction.
///
/// # Example
///
/// ```
/// use omg_core::Severity;
///
/// assert!(!Severity::ABSTAIN.fired());
/// assert!(Severity::from_bool(true).fired());
/// assert_eq!(Severity::from_count(3).value(), 3.0);
/// assert!(Severity::new(2.5) > Severity::new(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Severity(f64);

impl Severity {
    /// The abstention value: the assertion makes no claim on this sample.
    pub const ABSTAIN: Severity = Severity(0.0);

    /// A fired Boolean assertion (`1.0`).
    pub const FIRED: Severity = Severity(1.0);

    /// Creates a severity from a raw score.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, NaN, or infinite — assertion authors
    /// should map their signal into `[0, ∞)` explicitly.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "severity must be finite and non-negative, got {value}"
        );
        Severity(value)
    }

    /// `FIRED` for `true`, `ABSTAIN` for `false` — the Boolean assertion
    /// convention.
    pub fn from_bool(fired: bool) -> Self {
        if fired {
            Self::FIRED
        } else {
            Self::ABSTAIN
        }
    }

    /// A count-valued severity (e.g. "number of boxes that flicker").
    pub fn from_count(count: usize) -> Self {
        Severity(count as f64)
    }

    /// The raw score.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Whether the assertion fired (any non-zero severity).
    pub fn fired(&self) -> bool {
        self.0 > 0.0
    }

    /// The larger of two severities.
    pub fn max(self, other: Severity) -> Severity {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fired() {
            write!(f, "severity {}", self.0)
        } else {
            write!(f, "abstain")
        }
    }
}

impl From<bool> for Severity {
    fn from(fired: bool) -> Self {
        Severity::from_bool(fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstain_and_fired() {
        assert!(!Severity::ABSTAIN.fired());
        assert!(Severity::FIRED.fired());
        assert_eq!(Severity::default(), Severity::ABSTAIN);
    }

    #[test]
    fn from_bool_and_count() {
        assert_eq!(Severity::from_bool(true), Severity::FIRED);
        assert_eq!(Severity::from_bool(false), Severity::ABSTAIN);
        assert_eq!(Severity::from_count(0), Severity::ABSTAIN);
        assert_eq!(Severity::from_count(5).value(), 5.0);
        assert_eq!(Severity::from(true), Severity::FIRED);
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Severity::new(2.0) > Severity::new(1.0));
        assert!(Severity::ABSTAIN < Severity::FIRED);
        assert_eq!(Severity::new(1.0).max(Severity::new(3.0)).value(), 3.0);
        assert_eq!(Severity::new(4.0).max(Severity::new(3.0)).value(), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        Severity::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        Severity::new(f64::NAN);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Severity::ABSTAIN.to_string(), "abstain");
        assert_eq!(Severity::new(2.0).to_string(), "severity 2");
    }
}
