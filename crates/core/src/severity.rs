use std::fmt;

/// The score returned by a model assertion.
///
/// Per §2.1 of the paper, an assertion returns a continuous value
/// indicating the severity of a specific error type; **`0` represents an
/// abstention** and Boolean assertions return only `0` or `1`. Scores need
/// not be calibrated — downstream algorithms (BAL's severity-rank sampling)
/// use only their relative ordering.
///
/// Severities are finite and non-negative by construction.
///
/// # Example
///
/// ```
/// use omg_core::Severity;
///
/// assert!(!Severity::ABSTAIN.fired());
/// assert!(Severity::from_bool(true).fired());
/// assert_eq!(Severity::from_count(3).value(), 3.0);
/// assert!(Severity::new(2.5) > Severity::new(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Severity(f64);

impl Severity {
    /// The abstention value: the assertion makes no claim on this sample.
    pub const ABSTAIN: Severity = Severity(0.0);

    /// A fired Boolean assertion (`1.0`).
    pub const FIRED: Severity = Severity(1.0);

    /// Creates a severity from a raw score.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, NaN, or infinite — assertion authors
    /// should map their signal into `[0, ∞)` explicitly.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "severity must be finite and non-negative, got {value}"
        );
        Severity(value)
    }

    /// `FIRED` for `true`, `ABSTAIN` for `false` — the Boolean assertion
    /// convention.
    pub fn from_bool(fired: bool) -> Self {
        if fired {
            Self::FIRED
        } else {
            Self::ABSTAIN
        }
    }

    /// A count-valued severity (e.g. "number of boxes that flicker").
    pub fn from_count(count: usize) -> Self {
        Severity(count as f64)
    }

    /// The raw score.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Whether the assertion fired (any non-zero severity).
    pub fn fired(&self) -> bool {
        self.0 > 0.0
    }

    /// The larger of two severities.
    pub fn max(self, other: Severity) -> Severity {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fired() {
            write!(f, "severity {}", self.0)
        } else {
            write!(f, "abstain")
        }
    }
}

impl From<bool> for Severity {
    fn from(fired: bool) -> Self {
        Severity::from_bool(fired)
    }
}

/// A window-major, columnar (SoA) severity store: `rows × width` raw
/// severity values in **one contiguous `Vec<f64>`**, where row `i` is
/// window `i`'s severity vector in assertion-id order.
///
/// This is the batch/stream scoring output format: the single-thread
/// path fills it row-by-row with no per-window allocation (so the inner
/// scoring loop vectorizes over a flat buffer), and the parallel path
/// merges chunk-local matrices by disjoint range-copy
/// ([`SeverityMatrix::append`]) instead of stitching `Vec<Vec<_>>` rows.
/// Values are raw [`Severity::value`]s; `Severity::new(v)` round-trips
/// them exactly (f64 is copied bit-for-bit), so reconstructing
/// `(AssertionId, Severity)` outcome rows from a matrix row is lossless.
///
/// The width (assertion count) is fixed by the first pushed row; every
/// later row must match it. A matrix with zero rows accepts any width.
///
/// # Example
///
/// ```
/// use omg_core::SeverityMatrix;
///
/// let mut m = SeverityMatrix::new();
/// m.push_row(&[1.0, 0.0]);
/// m.push_row(&[0.5, 2.0]);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.width(), 2);
/// assert_eq!(m.row(1), &[0.5, 2.0]);
/// assert_eq!(m.values(), &[1.0, 0.0, 0.5, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeverityMatrix {
    /// Row-major (window-major) severity values, `rows * width` long.
    values: Vec<f64>,
    /// Columns per row; meaningful once the first row is pushed.
    width: usize,
    /// Number of rows (kept explicitly so `width == 0` rows still count).
    rows: usize,
}

impl SeverityMatrix {
    /// An empty matrix; the first pushed row fixes the width.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty matrix with row capacity preallocated for `rows` rows of
    /// `width` columns.
    pub fn with_capacity(rows: usize, width: usize) -> Self {
        Self {
            values: Vec::with_capacity(rows * width),
            width,
            rows: 0,
        }
    }

    /// Appends one window's severity row.
    ///
    /// # Panics
    ///
    /// Panics if `row`'s length differs from the established width.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 {
            self.width = row.len();
        } else {
            assert_eq!(
                row.len(),
                self.width,
                "severity row width mismatch: expected {}, got {}",
                self.width,
                row.len()
            );
        }
        self.values.extend_from_slice(row);
        self.rows += 1;
    }

    /// Window `i`'s severity vector, in assertion-id order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        // PANIC: i + 1 <= rows, so the slice stays inside values.
        &self.values[i * self.width..(i + 1) * self.width]
    }

    /// Number of rows (windows).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Columns per row (the assertion count); `0` until a row is pushed
    /// unless set by [`SeverityMatrix::with_capacity`].
    pub fn width(&self) -> usize {
        self.width
    }

    /// The flat row-major value buffer, `len() * width()` long.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates the rows in window order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |i| &self.values[i * self.width..(i + 1) * self.width])
    }

    /// Moves every row of `other` onto the end of `self` — the parallel
    /// merge: one contiguous range-copy per chunk, no per-row stitching.
    ///
    /// # Panics
    ///
    /// Panics if both matrices are non-empty with different widths.
    pub fn append(&mut self, other: &SeverityMatrix) {
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            self.width = other.width;
        } else {
            assert_eq!(
                other.width, self.width,
                "severity matrix width mismatch: expected {}, got {}",
                self.width, other.width
            );
        }
        self.values.extend_from_slice(&other.values);
        self.rows += other.rows;
    }

    /// The matrix as owned per-window rows (`Vec<Vec<f64>>`), for
    /// callers that need the AoS shape.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }
}

/// Matrices are equal when they hold the same rows: same row count, same
/// values, and (for non-empty matrices) the same width. Two empty
/// matrices are equal regardless of preallocated width.
impl PartialEq for SeverityMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.values == other.values
            && (self.rows == 0 || self.width == other.width)
    }
}

impl std::ops::Index<usize> for SeverityMatrix {
    type Output = [f64];

    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstain_and_fired() {
        assert!(!Severity::ABSTAIN.fired());
        assert!(Severity::FIRED.fired());
        assert_eq!(Severity::default(), Severity::ABSTAIN);
    }

    #[test]
    fn from_bool_and_count() {
        assert_eq!(Severity::from_bool(true), Severity::FIRED);
        assert_eq!(Severity::from_bool(false), Severity::ABSTAIN);
        assert_eq!(Severity::from_count(0), Severity::ABSTAIN);
        assert_eq!(Severity::from_count(5).value(), 5.0);
        assert_eq!(Severity::from(true), Severity::FIRED);
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Severity::new(2.0) > Severity::new(1.0));
        assert!(Severity::ABSTAIN < Severity::FIRED);
        assert_eq!(Severity::new(1.0).max(Severity::new(3.0)).value(), 3.0);
        assert_eq!(Severity::new(4.0).max(Severity::new(3.0)).value(), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        Severity::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        Severity::new(f64::NAN);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Severity::ABSTAIN.to_string(), "abstain");
        assert_eq!(Severity::new(2.0).to_string(), "severity 2");
    }

    #[test]
    fn matrix_rows_round_trip() {
        let mut m = SeverityMatrix::new();
        assert!(m.is_empty());
        m.push_row(&[1.0, 0.25, 0.0]);
        m.push_row(&[0.0, 2.0, 3.5]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.width(), 3);
        assert_eq!(m.row(0), &[1.0, 0.25, 0.0]);
        assert_eq!(m[1], [0.0, 2.0, 3.5]);
        assert_eq!(m.values(), &[1.0, 0.25, 0.0, 0.0, 2.0, 3.5]);
        assert_eq!(m.to_rows(), vec![vec![1.0, 0.25, 0.0], vec![0.0, 2.0, 3.5]]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn matrix_rejects_ragged_rows() {
        let mut m = SeverityMatrix::new();
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[1.0]);
    }

    #[test]
    fn matrix_append_is_range_copy_merge() {
        let mut a = SeverityMatrix::new();
        a.push_row(&[1.0, 2.0]);
        let mut b = SeverityMatrix::new();
        b.push_row(&[3.0, 4.0]);
        b.push_row(&[5.0, 6.0]);
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Appending an empty matrix is a no-op; appending onto an empty
        // matrix adopts the other's width.
        a.append(&SeverityMatrix::new());
        assert_eq!(a.len(), 3);
        let mut c = SeverityMatrix::new();
        c.append(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn matrix_equality_ignores_preallocated_width() {
        assert_eq!(SeverityMatrix::new(), SeverityMatrix::with_capacity(8, 4));
        let mut a = SeverityMatrix::with_capacity(1, 2);
        a.push_row(&[1.0, 2.0]);
        let mut b = SeverityMatrix::new();
        b.push_row(&[1.0, 2.0]);
        assert_eq!(a, b);
        b.push_row(&[9.0, 9.0]);
        assert_ne!(a, b);
    }

    #[test]
    fn matrix_zero_width_rows_still_count() {
        let mut m = SeverityMatrix::new();
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.width(), 0);
        assert_eq!(m.row(1), &[] as &[f64]);
        assert_eq!(m.iter_rows().count(), 2);
        assert_eq!(m.to_rows(), vec![Vec::<f64>::new(); 2]);
    }
}
