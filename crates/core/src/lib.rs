//! `omg-core` — the model-assertion engine.
//!
//! This crate is a Rust implementation of **OMG**, the library introduced in
//! *Model Assertions for Monitoring and Improving ML Models* (Kang et al.,
//! MLSys 2020). A *model assertion* is an arbitrary function over a model's
//! inputs and outputs that returns a severity score indicating when an
//! error may be occurring (§2.1 of the paper). The engine is agnostic to
//! what produced the outputs — an ML model, a sensor pipeline, or a human
//! labeler.
//!
//! # Architecture
//!
//! * [`Severity`] — the score an assertion returns. `0` is an abstention;
//!   only the *relative order* of non-zero scores is meaningful.
//! * [`Assertion`] — the assertion trait over a domain *sample* type `S`
//!   (typically a short window of recent inputs and outputs, mirroring
//!   OMG's `flickering(recent_frames, recent_outputs) -> Float`
//!   signature). [`FnAssertion`] adapts closures, which is the equivalent
//!   of OMG's `AddAssertion(func)`.
//! * [`AssertionSet`] — an ordered registry of assertions; its
//!   [`AssertionId`]s index the per-assertion severity vectors that the
//!   bandit-based active-learning algorithm (BAL, `omg-active`) consumes
//!   as contexts.
//! * [`AssertionDb`] — the append-only "assertion database" of the paper's
//!   Figure 2: every checked sample's outcomes, queryable by assertion,
//!   fire count, or severity rank.
//! * [`Monitor`] — runtime monitoring: runs the registered assertions
//!   after each model invocation, records outcomes, and invokes
//!   corrective-action hooks whose severity threshold is crossed (the
//!   paper's "automatically trigger corrective actions, e.g., shutting
//!   down an autopilot"). `Monitor::process_batch` scores whole batches
//!   in parallel over a [`runtime::ThreadPool`], bit-for-bit equal to
//!   the sequential path.
//! * [`runtime`] — the dependency-free **persistent** worker-thread pool
//!   behind the batch and streaming paths: long-lived workers parked on
//!   a condvar, jobs (not spawns) per scoring call, deterministic
//!   input-order merging.
//! * [`stream`] — the incremental streaming engine: the [`stream::Prepare`]
//!   shared window-preparation layer (expensive derivations run once per
//!   window, shared by every assertion via
//!   [`AssertionSet::check_all_prepared`]), the zero-copy window sliders
//!   ([`stream::SlidingSpans`] index spans over the caller's slice;
//!   [`stream::SlidingWindows`] borrowed windows over a mirror buffer
//!   of moved-in items), and [`stream::StreamMonitor`] — all bit-for-bit
//!   equal to the batch reference at any thread count.
//! * [`consistency`] — the high-level consistency-assertion API of §4:
//!   from an identifier function, an attributes function, and a temporal
//!   threshold `T`, OMG generates Boolean assertions *and* correction
//!   rules that propose weak labels.
//! * [`taxonomy`] — the assertion taxonomy of the paper's Table 5.
//!
//! # Example
//!
//! ```
//! use omg_core::{FnAssertion, Monitor, Severity};
//!
//! // The domain sample: consecutive classifier outputs.
//! struct Sample { recent: Vec<usize> }
//!
//! // An assertion: the prediction should not oscillate A -> B -> A.
//! let flip_flop = FnAssertion::new("flip-flop", |s: &Sample| {
//!     let w = &s.recent;
//!     let oscillations = w.windows(3)
//!         .filter(|t| t[0] == t[2] && t[0] != t[1])
//!         .count();
//!     Severity::from_count(oscillations)
//! });
//!
//! let mut monitor = Monitor::new();
//! let id = monitor.assertions_mut().add(flip_flop);
//! let report = monitor.process(&Sample { recent: vec![0, 1, 0, 0] });
//! assert!(report.fired(id));
//! assert_eq!(monitor.db().fire_count(id), 1);
//! ```

// `deny`, not `forbid`: the persistent pool's lifetime-erased job cell
// (see `runtime`) is the one audited exception, opted in via scoped
// `#[allow(unsafe_code)]`. Everything else in the crate is safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod assertion;
pub mod consistency;
mod database;
pub mod float;
mod monitor;
mod registry;
pub mod runtime;
mod severity;
pub mod stream;
pub mod sync;
pub mod taxonomy;

pub use assertion::{Assertion, FnAssertion};
pub use database::{AssertionDb, Record};
pub use monitor::{Monitor, SampleReport};
pub use registry::{AssertionId, AssertionSet};
pub use severity::{Severity, SeverityMatrix};
