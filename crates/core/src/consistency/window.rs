/// A time-ordered window of model outputs — the sample type consistency
/// assertions are checked over.
///
/// Each entry is one model invocation: a timestamp in seconds and the
/// outputs produced at that time (zero or more, e.g. all boxes in a video
/// frame). Timestamps must be strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistencyWindow<O> {
    times: Vec<f64>,
    outputs: Vec<Vec<O>>,
}

impl<O> ConsistencyWindow<O> {
    /// Creates an empty window.
    pub fn new() -> Self {
        Self {
            times: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Appends one invocation's outputs at `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or not strictly greater than the
    /// previous timestamp.
    pub fn push(&mut self, time: f64, outputs: Vec<O>) {
        assert!(time.is_finite(), "timestamps must be finite");
        if let Some(&last) = self.times.last() {
            assert!(
                time > last,
                "timestamps must be strictly increasing ({time} after {last})"
            );
        }
        self.times.push(time);
        self.outputs.push(outputs);
    }

    /// Number of invocations in the window.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The timestamp of invocation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn time(&self, i: usize) -> f64 {
        // PANIC: documented accessor contract — i < len().
        self.times[i]
    }

    /// All timestamps in order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The outputs of invocation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn outputs_at(&self, i: usize) -> &[O] {
        // PANIC: documented accessor contract — i < len().
        &self.outputs[i]
    }

    /// Iterates over `(time, outputs)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[O])> {
        self.times
            .iter()
            .zip(&self.outputs)
            .map(|(&t, o)| (t, o.as_slice()))
    }

    /// Total number of outputs across all invocations.
    pub fn total_outputs(&self) -> usize {
        self.outputs.iter().map(Vec::len).sum()
    }

    /// Builds a window from `(time, outputs)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the timestamps are not strictly increasing.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (f64, Vec<O>)>,
    {
        let mut w = Self::new();
        for (t, o) in pairs {
            w.push(t, o);
        }
        w
    }
}

impl<O> Default for ConsistencyWindow<O> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut w = ConsistencyWindow::new();
        w.push(0.0, vec!["a"]);
        w.push(0.5, vec![]);
        w.push(1.0, vec!["b", "c"]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.time(1), 0.5);
        assert_eq!(w.outputs_at(2), &["b", "c"]);
        assert_eq!(w.total_outputs(), 3);
        assert_eq!(w.times(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn iter_pairs() {
        let w = ConsistencyWindow::from_pairs(vec![(0.0, vec![1]), (1.0, vec![2, 3])]);
        let collected: Vec<(f64, Vec<i32>)> = w.iter().map(|(t, o)| (t, o.to_vec())).collect();
        assert_eq!(collected, vec![(0.0, vec![1]), (1.0, vec![2, 3])]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_rejected() {
        let mut w = ConsistencyWindow::new();
        w.push(1.0, vec![1]);
        w.push(1.0, vec![2]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let mut w: ConsistencyWindow<i32> = ConsistencyWindow::new();
        w.push(f64::NAN, vec![]);
    }

    #[test]
    fn empty_window() {
        let w: ConsistencyWindow<i32> = ConsistencyWindow::default();
        assert!(w.is_empty());
        assert_eq!(w.total_outputs(), 0);
    }
}
