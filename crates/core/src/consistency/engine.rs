use std::collections::BTreeMap;
use std::sync::Arc;

use crate::{Assertion, Severity};

use super::{AttrValue, ConsistencySpec, ConsistencyWindow};

/// A consistency violation found in a window.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation<Id> {
    /// Outputs sharing `id` disagree on attribute `key`.
    AttributeMismatch {
        /// The identifier whose outputs disagree.
        id: Id,
        /// The attribute key in question.
        key: String,
        /// The most common value (the correction rule's proposal).
        majority: AttrValue,
        /// `(time_index, output_index)` positions whose value differs from
        /// the majority.
        dissenting: Vec<(usize, usize)>,
    },
    /// An identifier made two presence transitions less than `T` seconds
    /// apart — it appeared/disappeared too quickly (flicker or blip).
    TemporalTransition {
        /// The identifier that flickered.
        id: Id,
        /// Time of the first transition, seconds.
        first: f64,
        /// Time of the second transition, seconds.
        second: f64,
        /// `true` if the identifier was *absent* between the transitions
        /// (it disappeared and re-appeared: a flicker gap); `false` if it
        /// was present (it blipped into existence: a spurious appearance).
        gap: bool,
    },
}

impl<Id> Violation<Id> {
    /// The attribute key, for attribute violations.
    pub fn key(&self) -> Option<&str> {
        match self {
            Violation::AttributeMismatch { key, .. } => Some(key),
            Violation::TemporalTransition { .. } => None,
        }
    }

    /// Whether this is a temporal violation.
    pub fn is_temporal(&self) -> bool {
        matches!(self, Violation::TemporalTransition { .. })
    }
}

/// The engine behind `AddConsistencyAssertion(Id, Attrs, T)`.
///
/// Wraps a [`ConsistencySpec`] and (optionally) a temporal threshold `T`
/// in seconds; checks windows for violations, generates one Boolean
/// assertion per attribute key plus a temporal assertion, and proposes
/// corrections (see [`ConsistencyEngine::corrections`]).
///
/// See the [module docs](super) for a worked example.
#[derive(Debug, Clone)]
pub struct ConsistencyEngine<P> {
    spec: P,
    temporal_threshold: Option<f64>,
}

impl<P: ConsistencySpec> ConsistencyEngine<P> {
    /// Creates an engine with no temporal constraint.
    pub fn new(spec: P) -> Self {
        Self {
            spec,
            temporal_threshold: None,
        }
    }

    /// Sets the temporal threshold `T` in seconds: each identifier must
    /// not make more than one presence transition within any `T`-second
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive and finite.
    pub fn with_temporal_threshold(mut self, t: f64) -> Self {
        assert!(
            t.is_finite() && t > 0.0,
            "temporal threshold must be positive"
        );
        self.temporal_threshold = Some(t);
        self
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &P {
        &self.spec
    }

    /// The configured temporal threshold, if any.
    pub fn temporal_threshold(&self) -> Option<f64> {
        self.temporal_threshold
    }

    /// Positions of every output in the window, grouped by identifier:
    /// `id -> [(time_index, output_index)]` in time order.
    pub fn occurrences(
        &self,
        window: &ConsistencyWindow<P::Output>,
    ) -> BTreeMap<P::Id, Vec<(usize, usize)>> {
        let mut occ: BTreeMap<P::Id, Vec<(usize, usize)>> = BTreeMap::new();
        for ti in 0..window.len() {
            for (oi, out) in window.outputs_at(ti).iter().enumerate() {
                occ.entry(self.spec.id(out)).or_default().push((ti, oi));
            }
        }
        occ
    }

    /// Checks the window and returns all violations.
    pub fn check(&self, window: &ConsistencyWindow<P::Output>) -> Vec<Violation<P::Id>> {
        let mut violations = Vec::new();
        let occurrences = self.occurrences(window);
        self.check_attributes(window, &occurrences, &mut violations);
        if self.temporal_threshold.is_some() {
            self.check_temporal(window, &occurrences, &mut violations);
        }
        violations
    }

    /// The window's overall severity: the number of violations
    /// (a count-valued score as recommended in §2.1).
    pub fn severity(&self, window: &ConsistencyWindow<P::Output>) -> Severity {
        Severity::from_count(self.check(window).len())
    }

    fn check_attributes(
        &self,
        window: &ConsistencyWindow<P::Output>,
        occurrences: &BTreeMap<P::Id, Vec<(usize, usize)>>,
        violations: &mut Vec<Violation<P::Id>>,
    ) {
        // key -> [(position, value)] in time order.
        type PerKey = BTreeMap<String, Vec<((usize, usize), AttrValue)>>;
        for (id, positions) in occurrences {
            let mut per_key: PerKey = BTreeMap::new();
            for &(ti, oi) in positions {
                // PANIC: occurrences was built by enumerating this same
                // window, so (ti, oi) addresses an existing output.
                let out = &window.outputs_at(ti)[oi];
                for (key, value) in self.spec.attrs(out) {
                    per_key.entry(key).or_default().push(((ti, oi), value));
                }
            }
            for (key, entries) in per_key {
                let mut counts: BTreeMap<&AttrValue, usize> = BTreeMap::new();
                for (_, v) in &entries {
                    *counts.entry(v).or_insert(0) += 1;
                }
                if counts.len() <= 1 {
                    continue;
                }
                // PANIC: counts.len() > 1 was checked just above.
                let majority = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(&v, _)| v.clone())
                    .expect("non-empty counts");
                let dissenting: Vec<(usize, usize)> = entries
                    .iter()
                    .filter(|(_, v)| *v != majority)
                    .map(|(pos, _)| *pos)
                    .collect();
                violations.push(Violation::AttributeMismatch {
                    id: id.clone(),
                    key,
                    majority,
                    dissenting,
                });
            }
        }
    }

    /// Presence vector of one identifier across the window's invocations.
    pub(super) fn presence(window_len: usize, positions: &[(usize, usize)]) -> Vec<bool> {
        let mut present = vec![false; window_len];
        // PANIC: positions index invocations of a window of window_len.
        for &(ti, _) in positions {
            present[ti] = true;
        }
        present
    }

    fn check_temporal(
        &self,
        window: &ConsistencyWindow<P::Output>,
        occurrences: &BTreeMap<P::Id, Vec<(usize, usize)>>,
        violations: &mut Vec<Violation<P::Id>>,
    ) {
        // PANIC: check() only dispatches here when the threshold is set.
        let t_thresh = self.temporal_threshold.expect("checked by caller");
        for (id, positions) in occurrences {
            let present = Self::presence(window.len(), positions);
            // Two consecutive transitions always bound a maximal constant
            // run, so "two transitions within T" is equivalent to "an
            // interior run shorter than T". The run's state tells flicker
            // gaps (absent) apart from spurious blips (present).
            // PANIC: interior_runs returns positions inside `present`.
            for (start, end) in interior_runs(&present) {
                let first = window.time(start);
                let second = window.time(end + 1);
                if second - first < t_thresh {
                    violations.push(Violation::TemporalTransition {
                        id: id.clone(),
                        first,
                        second,
                        gap: !present[start],
                    });
                }
            }
        }
    }
}

/// Maximal constant runs `[start, end]` of `xs` that do not touch either
/// boundary (so both surrounding transitions are inside the window).
pub(super) fn interior_runs(xs: &[bool]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let n = xs.len();
    if n < 3 {
        return runs;
    }
    let mut start = 0;
    // PANIC: xs[i] is guarded by the i == n short-circuit; start < n.
    for i in 1..=n {
        if i == n || xs[i] != xs[start] {
            if start > 0 && i < n {
                runs.push((start, i - 1));
            }
            start = i;
        }
    }
    runs
}

impl<P> ConsistencyEngine<P>
where
    P: ConsistencySpec + 'static,
{
    /// Generates the Boolean assertions this spec implies: one per
    /// attribute key (named `{prefix}-{key}`) plus, if a temporal
    /// threshold is set, one temporal assertion (named
    /// `{prefix}-temporal`).
    ///
    /// `extract` adapts the domain's sample type `S` into a window of this
    /// spec's outputs; it is cloned into each generated assertion. The
    /// returned assertions can be registered on any
    /// [`AssertionSet`](crate::AssertionSet)/[`Monitor`](crate::Monitor)
    /// exactly like hand-written ones — "these assertions are treated the
    /// same as user-provided ones in the rest of the system" (§4.2).
    pub fn generate_assertions<S, F>(
        self: &Arc<Self>,
        prefix: &str,
        extract: F,
    ) -> Vec<Box<dyn Assertion<S>>>
    where
        F: Fn(&S) -> ConsistencyWindow<P::Output> + Clone + Send + Sync + 'static,
    {
        struct GeneratedAssertion<P, F> {
            name: String,
            engine: Arc<ConsistencyEngine<P>>,
            extract: F,
            /// `Some(key)` counts attribute violations for that key;
            /// `None` counts temporal violations.
            key: Option<String>,
        }

        impl<S, P, F> Assertion<S> for GeneratedAssertion<P, F>
        where
            P: ConsistencySpec + 'static,
            F: Fn(&S) -> ConsistencyWindow<P::Output> + Send + Sync,
        {
            fn name(&self) -> &str {
                &self.name
            }

            fn check(&self, sample: &S) -> Severity {
                let window = (self.extract)(sample);
                let violations = self.engine.check(&window);
                let count = match &self.key {
                    Some(key) => violations
                        .iter()
                        .filter(|v| v.key() == Some(key.as_str()))
                        .count(),
                    None => violations.iter().filter(|v| v.is_temporal()).count(),
                };
                Severity::from_count(count)
            }
        }

        let mut out: Vec<Box<dyn Assertion<S>>> = Vec::new();
        for key in self.spec.attr_keys() {
            out.push(Box::new(GeneratedAssertion {
                name: format!("{prefix}-{key}"),
                engine: Arc::clone(self),
                extract: extract.clone(),
                key: Some(key),
            }));
        }
        if self.temporal_threshold.is_some() {
            out.push(Box::new(GeneratedAssertion {
                name: format!("{prefix}-temporal"),
                engine: Arc::clone(self),
                extract,
                key: None,
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AssertionSet;

    /// Test output: (identifier, class attribute).
    #[derive(Debug, Clone, PartialEq)]
    struct Out {
        id: u32,
        class: usize,
    }

    struct Spec;

    impl ConsistencySpec for Spec {
        type Output = Out;
        type Id = u32;

        fn id(&self, o: &Out) -> u32 {
            o.id
        }

        fn attrs(&self, o: &Out) -> Vec<(String, AttrValue)> {
            vec![("class".to_string(), AttrValue::class(o.class))]
        }

        fn attr_keys(&self) -> Vec<String> {
            vec!["class".to_string()]
        }
    }

    fn o(id: u32, class: usize) -> Out {
        Out { id, class }
    }

    #[test]
    fn consistent_window_has_no_violations() {
        let engine = ConsistencyEngine::new(Spec);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![o(1, 0)]),
            (2.0, vec![o(1, 0)]),
        ]);
        assert!(engine.check(&w).is_empty());
        assert!(!engine.severity(&w).fired());
    }

    #[test]
    fn attribute_mismatch_detected_with_majority() {
        let engine = ConsistencyEngine::new(Spec);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 2)]),
            (1.0, vec![o(1, 2)]),
            (2.0, vec![o(1, 5)]), // dissent
        ]);
        let v = engine.check(&w);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::AttributeMismatch {
                id,
                key,
                majority,
                dissenting,
            } => {
                assert_eq!(*id, 1);
                assert_eq!(key, "class");
                assert_eq!(*majority, AttrValue::class(2));
                assert_eq!(dissenting, &vec![(2, 0)]);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn separate_ids_do_not_interfere() {
        let engine = ConsistencyEngine::new(Spec);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0), o(2, 3)]),
            (1.0, vec![o(1, 0), o(2, 3)]),
        ]);
        assert!(engine.check(&w).is_empty());
    }

    #[test]
    fn flicker_within_threshold_fires_temporal() {
        // Present at t=0, absent at t=1, present at t=2: two transitions
        // 1 s apart; with T = 5 s that's a violation.
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![]),
            (2.0, vec![o(1, 0)]),
        ]);
        let v = engine.check(&w);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::TemporalTransition {
                id,
                first,
                second,
                gap,
            } => {
                assert_eq!(*id, 1);
                assert_eq!(*first, 1.0);
                assert_eq!(*second, 2.0);
                assert!(*gap, "disappear-reappear is a gap-type violation");
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn slow_transitions_are_legal() {
        // Disappears for 10 s with T = 5 s: transitions are 10 s apart, OK.
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (5.0, vec![]),
            (15.0, vec![o(1, 0)]),
        ]);
        assert!(engine.check(&w).is_empty());
    }

    #[test]
    fn appearing_once_is_legal() {
        // A single appearance transition: "an identifier appearing is
        // valid" (§4.2).
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![]),
            (1.0, vec![o(1, 0)]),
            (2.0, vec![o(1, 0)]),
        ]);
        assert!(engine.check(&w).is_empty());
    }

    #[test]
    fn blip_is_a_violation() {
        // Absent, present for one invocation, absent: appear+disappear
        // within T.
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w =
            ConsistencyWindow::from_pairs(vec![(0.0, vec![]), (1.0, vec![o(9, 0)]), (2.0, vec![])]);
        let v = engine.check(&w);
        assert_eq!(v.len(), 1);
        assert!(v[0].is_temporal());
        assert!(matches!(
            v[0],
            Violation::TemporalTransition { gap: false, .. }
        ));
    }

    #[test]
    fn no_temporal_check_without_threshold() {
        let engine = ConsistencyEngine::new(Spec);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![]),
            (2.0, vec![o(1, 0)]),
        ]);
        assert!(engine.check(&w).is_empty());
        assert_eq!(engine.temporal_threshold(), None);
    }

    #[test]
    fn ecg_style_oscillation() {
        // The paper's ECG assertion: classification flips A -> B -> A in
        // under 30 s. Identifier = predicted class, no attributes.
        struct EcgSpec;
        impl ConsistencySpec for EcgSpec {
            type Output = usize; // predicted rhythm class for one window
            type Id = usize;
            fn id(&self, o: &usize) -> usize {
                *o
            }
            fn attrs(&self, _o: &usize) -> Vec<(String, AttrValue)> {
                vec![]
            }
            fn attr_keys(&self) -> Vec<String> {
                vec![]
            }
        }
        let engine = ConsistencyEngine::new(EcgSpec).with_temporal_threshold(30.0);
        // Class 0 for 10 s, class 1 for 10 s, class 0 again: class 1's
        // presence blips for 10 s < 30 s, and class 0 disappears for 10 s.
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![0usize]),
            (10.0, vec![1usize]),
            (20.0, vec![0usize]),
        ]);
        let v = engine.check(&w);
        assert_eq!(v.len(), 2, "both class presences flicker: {v:?}");
        // A stable rhythm raises nothing.
        let stable = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![0usize]),
            (10.0, vec![0usize]),
            (20.0, vec![0usize]),
        ]);
        assert!(engine.check(&stable).is_empty());
    }

    #[test]
    fn generated_assertions_register_and_fire() {
        let engine = Arc::new(ConsistencyEngine::new(Spec).with_temporal_threshold(5.0));
        // Sample type: the window itself.
        let assertions =
            engine.generate_assertions("video", |w: &ConsistencyWindow<Out>| w.clone());
        assert_eq!(assertions.len(), 2);
        let mut set: AssertionSet<ConsistencyWindow<Out>> = AssertionSet::new();
        for a in assertions {
            set.add_boxed(a);
        }
        assert_eq!(set.names(), vec!["video-class", "video-temporal"]);

        // Attribute violation only.
        let w = ConsistencyWindow::from_pairs(vec![(0.0, vec![o(1, 0)]), (1.0, vec![o(1, 1)])]);
        let outcomes = set.check_all(&w);
        assert!(outcomes[0].1.fired());
        assert!(!outcomes[1].1.fired());

        // Temporal violation only.
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![]),
            (2.0, vec![o(1, 0)]),
        ]);
        let outcomes = set.check_all(&w);
        assert!(!outcomes[0].1.fired());
        assert!(outcomes[1].1.fired());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        ConsistencyEngine::new(Spec).with_temporal_threshold(0.0);
    }
}
