//! The consistency-assertion API (§4 of the paper).
//!
//! Many assertions fit one high-level pattern: *attributes of a model's
//! outputs that share an identifier should match, and identifiers should
//! not appear or disappear too quickly*. The paper's API is
//! `AddConsistencyAssertion(Id, Attrs, T)`:
//!
//! * **`Id`** — a function returning an identifier for each output (a TV
//!   host's identity, a tracked vehicle's track id, an ECG rhythm class);
//! * **`Attrs`** — a function returning named attributes expected to be
//!   consistent per identifier (gender, hair color, vehicle class);
//! * **`T`** — a temporal threshold in seconds: "each identifier should
//!   not appear or disappear for intervals less than T seconds", enforced
//!   as *at most one presence transition per `T`-second window*.
//!
//! From a [`ConsistencySpec`] the [`ConsistencyEngine`] generates:
//!
//! 1. **Boolean assertions** — one per attribute key plus one temporal
//!    assertion ([`ConsistencyEngine::generate_assertions`]), registered
//!    like any hand-written assertion;
//! 2. **Correction rules** ([`ConsistencyEngine::corrections`]) that
//!    propose weak labels for failing outputs: replace an inconsistent
//!    attribute with the identifier's most common value, remove spurious
//!    blips, or add synthesized outputs for flickered-out intervals (the
//!    user supplies the synthesis function, e.g. box interpolation).
//!
//! # Example
//!
//! ```
//! use omg_core::consistency::{
//!     AttrValue, ConsistencyEngine, ConsistencySpec, ConsistencyWindow, Violation,
//! };
//!
//! // TV-news face detections: (scene-person identifier, gender).
//! #[derive(Clone)]
//! struct Face { person: u32, gender: &'static str }
//!
//! struct NewsSpec;
//! impl ConsistencySpec for NewsSpec {
//!     type Output = Face;
//!     type Id = u32;
//!     fn id(&self, f: &Face) -> u32 { f.person }
//!     fn attrs(&self, f: &Face) -> Vec<(String, AttrValue)> {
//!         vec![("gender".into(), AttrValue::text(f.gender))]
//!     }
//!     fn attr_keys(&self) -> Vec<String> { vec!["gender".into()] }
//! }
//!
//! let engine = ConsistencyEngine::new(NewsSpec);
//! let mut w = ConsistencyWindow::new();
//! w.push(0.0, vec![Face { person: 7, gender: "F" }]);
//! w.push(1.0, vec![Face { person: 7, gender: "F" }]);
//! w.push(2.0, vec![Face { person: 7, gender: "M" }]); // inconsistent!
//! let violations = engine.check(&w);
//! assert_eq!(violations.len(), 1);
//! assert!(matches!(&violations[0], Violation::AttributeMismatch { key, .. } if key == "gender"));
//! ```

mod attr;
mod correction;
mod engine;
mod spec;
mod window;

pub use attr::AttrValue;
pub use correction::Correction;
pub use engine::{ConsistencyEngine, Violation};
pub use spec::ConsistencySpec;
pub use window::ConsistencyWindow;
