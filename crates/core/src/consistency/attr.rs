use std::fmt;

/// The value of a named output attribute.
///
/// Attributes are the per-identifier quantities that consistency
/// assertions require to match: a class index, a gender string, a flag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrValue {
    /// An integral attribute (e.g. a class index).
    Int(i64),
    /// A textual attribute (e.g. an identity name or hair color).
    Text(String),
    /// A Boolean attribute.
    Flag(bool),
}

impl AttrValue {
    /// Convenience constructor for text attributes.
    pub fn text<S: Into<String>>(s: S) -> Self {
        AttrValue::Text(s.into())
    }

    /// Convenience constructor for integral attributes (e.g. class ids).
    pub fn class(c: usize) -> Self {
        AttrValue::Int(c as i64)
    }

    /// The integral payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The textual payload, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The Boolean payload, if this is a `Flag`.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            AttrValue::Flag(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Text(s) => write!(f, "{s}"),
            AttrValue::Flag(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_string())
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Flag(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(AttrValue::class(3).as_int(), Some(3));
        assert_eq!(AttrValue::text("red").as_text(), Some("red"));
        assert_eq!(AttrValue::from(true).as_flag(), Some(true));
        assert_eq!(AttrValue::from(7i64), AttrValue::Int(7));
        assert_eq!(AttrValue::from("x"), AttrValue::Text("x".into()));
    }

    #[test]
    fn cross_type_accessors_are_none() {
        assert_eq!(AttrValue::Int(1).as_text(), None);
        assert_eq!(AttrValue::text("a").as_int(), None);
        assert_eq!(AttrValue::Int(1).as_flag(), None);
    }

    #[test]
    fn equality_and_hash_usable_as_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(AttrValue::text("blonde"), 2);
        assert_eq!(m[&AttrValue::text("blonde")], 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrValue::Int(5).to_string(), "5");
        assert_eq!(AttrValue::text("brown").to_string(), "brown");
        assert_eq!(AttrValue::Flag(false).to_string(), "false");
    }
}
