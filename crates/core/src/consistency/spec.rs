use std::fmt::Debug;
use std::hash::Hash;

use super::AttrValue;

/// The user-provided half of `AddConsistencyAssertion(Id, Attrs, T)`.
///
/// Implementors describe *what should be consistent* about one domain's
/// model outputs; the [`ConsistencyEngine`](super::ConsistencyEngine)
/// supplies the generic checking and correction machinery.
///
/// The paper's three worked examples map directly onto this trait
/// (§4.1):
///
/// * **TV news** — `Output` is a face detection; `id` returns the detected
///   identity; `attrs` returns gender and hair color.
/// * **Traffic video** — `Output` is a tracked box; `id` returns the track
///   identifier assigned by an `omg-track` tracker; `attrs` returns the
///   predicted class; `T` catches flicker.
/// * **ECG** — `Output` is a window classification; `id` returns the
///   predicted rhythm class; `T = 30 s` enforces the European Society of
///   Cardiology persistence guideline.
pub trait ConsistencySpec: Send + Sync {
    /// One model output (a detection, a classification, ...).
    type Output;

    /// The identifier outputs are grouped by. "Simply an opaque value"
    /// (§4.1) — the engine only compares, hashes, and reports it.
    type Id: Eq + Ord + Hash + Clone + Debug + Send + Sync;

    /// The identifier of an output.
    fn id(&self, output: &Self::Output) -> Self::Id;

    /// Named attributes of an output that must be consistent within its
    /// identifier. May be empty for purely temporal specs (like ECG).
    fn attrs(&self, output: &Self::Output) -> Vec<(String, AttrValue)>;

    /// The full set of attribute keys this spec can emit. The engine
    /// generates one Boolean assertion per key, so the set must be known
    /// up front (it is part of the assertion database schema).
    fn attr_keys(&self) -> Vec<String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UnitSpec;

    impl ConsistencySpec for UnitSpec {
        type Output = (u32, usize);
        type Id = u32;

        fn id(&self, output: &(u32, usize)) -> u32 {
            output.0
        }

        fn attrs(&self, output: &(u32, usize)) -> Vec<(String, AttrValue)> {
            vec![("class".to_string(), AttrValue::class(output.1))]
        }

        fn attr_keys(&self) -> Vec<String> {
            vec!["class".to_string()]
        }
    }

    #[test]
    fn spec_is_usable_as_trait_object_bound() {
        fn takes_spec<P: ConsistencySpec>(spec: &P, o: &P::Output) -> P::Id {
            spec.id(o)
        }
        assert_eq!(takes_spec(&UnitSpec, &(7, 1)), 7);
        assert_eq!(UnitSpec.attrs(&(7, 2))[0].1, AttrValue::class(2));
        assert_eq!(UnitSpec.attr_keys(), vec!["class"]);
    }
}
