use super::engine::interior_runs;
use super::{AttrValue, ConsistencyEngine, ConsistencySpec, ConsistencyWindow, Violation};

/// A proposed correction for a consistency violation — the raw material of
/// weak supervision (§4.2): "OMG will propose to remove, modify, or add
/// predictions."
#[derive(Debug, Clone, PartialEq)]
pub enum Correction<O, Id> {
    /// Replace a dissenting attribute with the identifier's most common
    /// value ("we simply use the most common value", §4).
    SetAttr {
        /// The identifier whose output is corrected.
        id: Id,
        /// Invocation index within the window.
        time_index: usize,
        /// Output index within that invocation.
        output_index: usize,
        /// The attribute to replace.
        key: String,
        /// The proposed (majority) value.
        value: AttrValue,
    },
    /// Remove a spurious output: the identifier appeared and disappeared
    /// within less than `T` seconds (a blip).
    Remove {
        /// The identifier being removed.
        id: Id,
        /// Invocation index within the window.
        time_index: usize,
        /// Output index within that invocation.
        output_index: usize,
    },
    /// Add a synthesized output: the identifier disappeared for less than
    /// `T` seconds (a flicker gap). The output is produced by the
    /// user-supplied `WeakLabel` function, "since it may require domain
    /// specific logic, e.g., averaging the locations of the object on
    /// nearby video frames" (§4.2).
    Add {
        /// The identifier being restored.
        id: Id,
        /// Invocation index the output is added at.
        time_index: usize,
        /// The synthesized output.
        output: O,
    },
}

impl<O, Id> Correction<O, Id> {
    /// The invocation index this correction applies to.
    pub fn time_index(&self) -> usize {
        match self {
            Correction::SetAttr { time_index, .. }
            | Correction::Remove { time_index, .. }
            | Correction::Add { time_index, .. } => *time_index,
        }
    }
}

impl<P: ConsistencySpec> ConsistencyEngine<P> {
    /// Proposes corrections for every violation in the window.
    ///
    /// * Attribute mismatches become [`Correction::SetAttr`] (majority
    ///   vote) for each dissenting output.
    /// * Interior *absent* runs shorter than `T` (flicker gaps) become
    ///   [`Correction::Add`] at each missing invocation, with the output
    ///   synthesized by `weak_label`; invocations where `weak_label`
    ///   returns `None` are skipped.
    /// * Interior *present* runs shorter than `T` (blips) become
    ///   [`Correction::Remove`] for each of the identifier's outputs in
    ///   the run.
    ///
    /// Runs touching the window boundary are not corrected — the window
    /// does not show both transitions, so the evidence is incomplete.
    pub fn corrections<W>(
        &self,
        window: &ConsistencyWindow<P::Output>,
        weak_label: W,
    ) -> Vec<Correction<P::Output, P::Id>>
    where
        W: Fn(&ConsistencyWindow<P::Output>, &P::Id, usize) -> Option<P::Output>,
    {
        let mut out = Vec::new();
        let occurrences = self.occurrences(window);

        // 1. Attribute corrections from the violation list.
        for violation in self.check(window) {
            if let Violation::AttributeMismatch {
                id,
                key,
                majority,
                dissenting,
            } = violation
            {
                for (time_index, output_index) in dissenting {
                    out.push(Correction::SetAttr {
                        id: id.clone(),
                        time_index,
                        output_index,
                        key: key.clone(),
                        value: majority.clone(),
                    });
                }
            }
        }

        // 2. Temporal corrections from presence-run analysis.
        let Some(t_thresh) = self.temporal_threshold() else {
            return out;
        };
        for (id, positions) in &occurrences {
            let present = Self::presence(window.len(), positions);
            for (start, end) in interior_runs(&present) {
                // Transition into the run happens at `start`, out of it at
                // `end + 1`; the run's duration is the time between them.
                let duration = window.time(end + 1) - window.time(start);
                if duration >= t_thresh {
                    continue;
                }
                if present[start] {
                    // A blip: remove this id's outputs in the run.
                    for &(ti, oi) in positions {
                        if ti >= start && ti <= end {
                            out.push(Correction::Remove {
                                id: id.clone(),
                                time_index: ti,
                                output_index: oi,
                            });
                        }
                    }
                } else {
                    // A flicker gap: add synthesized outputs.
                    for ti in start..=end {
                        if let Some(output) = weak_label(window, id, ti) {
                            out.push(Correction::Add {
                                id: id.clone(),
                                time_index: ti,
                                output,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Out {
        id: u32,
        class: usize,
    }

    struct Spec;

    impl ConsistencySpec for Spec {
        type Output = Out;
        type Id = u32;

        fn id(&self, o: &Out) -> u32 {
            o.id
        }

        fn attrs(&self, o: &Out) -> Vec<(String, AttrValue)> {
            vec![("class".to_string(), AttrValue::class(o.class))]
        }

        fn attr_keys(&self) -> Vec<String> {
            vec!["class".to_string()]
        }
    }

    fn o(id: u32, class: usize) -> Out {
        Out { id, class }
    }

    fn no_weak_label(_: &ConsistencyWindow<Out>, _: &u32, _: usize) -> Option<Out> {
        None
    }

    #[test]
    fn interior_runs_basic() {
        assert_eq!(interior_runs(&[true, false, true]), vec![(1, 1)]);
        assert_eq!(
            interior_runs(&[true, false, false, true, true]),
            vec![(1, 2), (3, 4)]
                .into_iter()
                .filter(|&(_, e)| e < 4)
                .collect::<Vec<_>>()
        );
        assert!(interior_runs(&[true, true]).is_empty());
        assert!(interior_runs(&[]).is_empty());
    }

    #[test]
    fn majority_vote_correction() {
        let engine = ConsistencyEngine::new(Spec);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 2)]),
            (1.0, vec![o(1, 2)]),
            (2.0, vec![o(1, 7)]),
        ]);
        let c = engine.corrections(&w, no_weak_label);
        assert_eq!(c.len(), 1);
        match &c[0] {
            Correction::SetAttr {
                id,
                time_index,
                output_index,
                key,
                value,
            } => {
                assert_eq!(*id, 1);
                assert_eq!(*time_index, 2);
                assert_eq!(*output_index, 0);
                assert_eq!(key, "class");
                assert_eq!(*value, AttrValue::class(2));
            }
            other => panic!("unexpected correction {other:?}"),
        }
    }

    #[test]
    fn flicker_gap_produces_adds_via_weak_label() {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![]),
            (2.0, vec![o(1, 0)]),
        ]);
        let c = engine.corrections(&w, |_w, id, ti| {
            Some(Out {
                id: *id,
                class: 100 + ti,
            })
        });
        assert_eq!(c.len(), 1);
        match &c[0] {
            Correction::Add {
                id,
                time_index,
                output,
            } => {
                assert_eq!(*id, 1);
                assert_eq!(*time_index, 1);
                assert_eq!(output.class, 101);
            }
            other => panic!("unexpected correction {other:?}"),
        }
    }

    #[test]
    fn weak_label_none_skips_add() {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![]),
            (2.0, vec![o(1, 0)]),
        ]);
        let c = engine.corrections(&w, no_weak_label);
        assert!(c.is_empty());
    }

    #[test]
    fn blip_produces_remove() {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w =
            ConsistencyWindow::from_pairs(vec![(0.0, vec![]), (1.0, vec![o(9, 3)]), (2.0, vec![])]);
        let c = engine.corrections(&w, no_weak_label);
        assert_eq!(c.len(), 1);
        match &c[0] {
            Correction::Remove {
                id,
                time_index,
                output_index,
            } => {
                assert_eq!(*id, 9);
                assert_eq!(*time_index, 1);
                assert_eq!(*output_index, 0);
            }
            other => panic!("unexpected correction {other:?}"),
        }
    }

    #[test]
    fn long_gaps_are_not_corrected() {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (10.0, vec![]),
            (20.0, vec![o(1, 0)]),
        ]);
        let c = engine.corrections(&w, |_w, id, _ti| Some(o(*id, 0)));
        assert!(c.is_empty(), "10 s gap with T = 5 s is legal: {c:?}");
    }

    #[test]
    fn boundary_runs_are_left_alone() {
        // The object disappears at the end of the window: no second
        // transition, so no correction.
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w =
            ConsistencyWindow::from_pairs(vec![(0.0, vec![o(1, 0)]), (1.0, vec![]), (2.0, vec![])]);
        let c = engine.corrections(&w, |_w, id, _ti| Some(o(*id, 0)));
        assert!(c.is_empty());
    }

    #[test]
    fn combined_attribute_and_temporal_corrections() {
        let engine = ConsistencyEngine::new(Spec).with_temporal_threshold(5.0);
        let w = ConsistencyWindow::from_pairs(vec![
            (0.0, vec![o(1, 0)]),
            (1.0, vec![o(1, 4)]),          // class dissent
            (2.0, vec![o(1, 0), o(9, 1)]), // 9 blips in
            (3.0, vec![o(1, 0)]),
        ]);
        let c = engine.corrections(&w, no_weak_label);
        let set_attrs = c
            .iter()
            .filter(|c| matches!(c, Correction::SetAttr { .. }))
            .count();
        let removes = c
            .iter()
            .filter(|c| matches!(c, Correction::Remove { .. }))
            .count();
        assert_eq!(set_attrs, 1);
        assert_eq!(removes, 1);
    }

    #[test]
    fn time_index_accessor() {
        let c: Correction<Out, u32> = Correction::Remove {
            id: 1,
            time_index: 4,
            output_index: 0,
        };
        assert_eq!(c.time_index(), 4);
    }
}
