//! The synchronization **facade** the worker pool is written against.
//!
//! In production builds this module is nothing but re-exports of
//! `std::sync` plus inlined no-op hooks — the pool compiles to exactly
//! the code it would with direct `std` imports. Under
//! `RUSTFLAGS="--cfg omg_model"` every primitive swaps for its
//! `omg-verify` model twin: mutex acquires, condvar waits, atomic
//! accesses, and thread spawns all become visible steps of a DFS
//! interleaving scheduler, and the job-cell hooks feed a liveness
//! registry that turns the pool's one `unsafe` hazard — a worker
//! dereferencing the submitter's stack after retraction — into a
//! deterministic, schedule-attributed model failure.
//!
//! The point of the indirection is that the *production* pool source
//! is what gets model-checked: `omg-verify`'s pool suite exercises
//! [`crate::runtime::ThreadPool`] itself, not a hand-maintained
//! replica of it. See `crates/verify` and `DESIGN.md` §"Verification".

#[cfg(not(omg_model))]
pub use std::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(not(omg_model))]
pub use std::sync::{Condvar, Mutex};

#[cfg(omg_model)]
pub use omg_verify::sync::{AtomicBool, AtomicUsize, Condvar, Mutex};

/// The slice of `std::thread` the pool uses, model-swappable.
pub mod thread {
    /// Handle to a pool worker thread.
    #[cfg(not(omg_model))]
    pub type JoinHandle = std::thread::JoinHandle<()>;

    #[cfg(omg_model)]
    pub use omg_verify::thread::JoinHandle;

    /// Spawns a named worker thread.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn the thread.
    #[cfg(not(omg_model))]
    pub fn spawn_named<F>(name: String, f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        // PANIC: OS thread-spawn failure at pool startup is fatal by
        // design — there is no degraded mode without workers.
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("spawn pool worker")
    }

    #[cfg(omg_model)]
    pub use omg_verify::thread::spawn_named;

    /// The machine's available parallelism (1 if unknown). Under the
    /// model this is a fixed small count so core-count capping in the
    /// code under test is deterministic on any host.
    #[cfg(not(omg_model))]
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    #[cfg(omg_model)]
    pub use omg_verify::thread::available_parallelism;
}

/// Liveness hooks around the pool's lifetime-erased job cell. No-ops
/// in production; under the model they feed the registry that catches
/// use-after-retract and drain-handshake violations with the exact
/// interleaving that produced them.
pub mod job_cell {
    /// Job published: the cell now points into the submitter's frame.
    #[cfg(not(omg_model))]
    #[inline(always)]
    pub fn publish(_ptr: *const ()) {}

    /// Job retracted: no worker may touch the cell from here on.
    #[cfg(not(omg_model))]
    #[inline(always)]
    pub fn retract(_ptr: *const ()) {}

    /// A thread is about to read through the cell; `_what` names the
    /// site in model failure reports.
    #[cfg(not(omg_model))]
    #[inline(always)]
    pub fn assert_live(_ptr: *const (), _what: &'static str) {}

    /// A worker entered the job (is now holding a reference into the
    /// submitter's frame).
    #[cfg(not(omg_model))]
    #[inline(always)]
    pub fn enter(_ptr: *const (), _what: &'static str) {}

    /// The matching exit for [`enter`].
    #[cfg(not(omg_model))]
    #[inline(always)]
    pub fn exit(_ptr: *const ()) {}

    /// Zero-sized production stand-in for the model's frame canary.
    #[cfg(not(omg_model))]
    #[derive(Debug)]
    pub struct FrameGuard;

    /// Arms a canary for the frame that owns the job cell; under the
    /// model, dropping it while the job is published or occupied is a
    /// reported drain violation.
    #[cfg(not(omg_model))]
    #[inline(always)]
    pub fn frame_guard(_ptr: *const ()) -> FrameGuard {
        FrameGuard
    }

    #[cfg(omg_model)]
    pub use omg_verify::cell::{
        assert_live, enter, exit, frame_guard, publish, retract, FrameGuard,
    };
}

/// True when the named seeded mutation is enabled — always `false` in
/// production builds (the call sites fold away), and under the model
/// only when the running `omg_verify::Config` asks for that mutation.
/// See `omg_verify::mutations`.
#[cfg(not(omg_model))]
#[inline(always)]
pub fn mutation_enabled(_name: &str) -> bool {
    false
}

#[cfg(omg_model)]
pub use omg_verify::mutations::enabled as mutation_enabled;
