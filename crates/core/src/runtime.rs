//! A dependency-free scoped-thread runtime for data-parallel assertion
//! checking.
//!
//! The paper's §7 argues assertion monitoring is cheap enough to run
//! inline with deployment ("can be run … over every model invocation");
//! scaling that to many streams and large assertion sets means scoring
//! independent `(sample, assertion)` pairs on every core. [`ThreadPool`]
//! provides exactly that: a fixed worker count, [`std::thread::scope`]
//! under the hood (so borrowed data crosses into workers without `Arc` or
//! `'static` bounds), and **deterministic, input-order merging** of
//! results.
//!
//! # Determinism
//!
//! [`ThreadPool::map_indexed`] self-schedules contiguous index chunks
//! onto workers via an atomic cursor, so *which* thread computes an item
//! is nondeterministic — but every item is a pure function of its index
//! and the merged output is always in index order. Callers that keep
//! their closures pure therefore get bit-for-bit identical results at any
//! thread count, which the engine's determinism property tests enforce.
//!
//! # Example
//!
//! ```
//! use omg_core::runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map_indexed(5, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//! // Identical to the sequential path, at any thread count.
//! assert_eq!(squares, ThreadPool::sequential().map_indexed(5, |i| i * i));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size scoped-thread pool.
///
/// The pool is a lightweight handle (just a thread count): workers are
/// spawned per batch inside [`std::thread::scope`], so no threads idle
/// between batches and no join handles outlive a call. For the batch
/// sizes the monitor processes (hundreds to millions of windows), spawn
/// cost is noise next to assertion checking; for tiny batches
/// [`ThreadPool::map_indexed`] short-circuits to the sequential path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with the given worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one thread");
        Self { threads }
    }

    /// The single-threaded pool: every `map_indexed` call runs inline on
    /// the caller's thread. Useful as a default and as the reference
    /// implementation the parallel path must match bit-for-bit.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// A pool sized to the machine's available parallelism (1 if the
    /// runtime cannot tell).
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self { threads }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes `f(0), f(1), …, f(n - 1)` across the pool's workers and
    /// returns the results **in index order**.
    ///
    /// Work is self-scheduled in contiguous chunks (an atomic cursor
    /// hands the next chunk to whichever worker is free), so uneven item
    /// costs balance across threads. `f` must be a pure function of the
    /// index for the output to be deterministic; all engine callers are.
    ///
    /// # Panics
    ///
    /// Panics if any invocation of `f` panics (the first worker panic is
    /// propagated after all workers stop picking up new chunks).
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Chunks ~4x the worker count balance load without shredding
        // cache locality; a chunk is never empty.
        self.map_with_chunk(n, n.div_ceil(self.threads * 4).max(1), f)
    }

    /// Like [`ThreadPool::map_indexed`], but each work unit is a single
    /// index: the atomic cursor hands out indices one at a time instead
    /// of contiguous chunks.
    ///
    /// Use this when each index is already a *coarse* unit of work — a
    /// whole session's backlog, a whole file — where per-item scheduling
    /// overhead is noise but a fat chunk would serialize several big
    /// units onto one worker (the per-window fan-out regression that
    /// motivated per-session work division). The output is still merged
    /// in index order.
    pub fn map_indexed_coarse<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_with_chunk(n, 1, f)
    }

    fn map_with_chunk<T, F>(&self, n: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n < 2 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n.div_ceil(chunk));
        let cursor = AtomicUsize::new(0);
        let f = &f;
        let cursor = &cursor;
        let mut chunks: Vec<(usize, Vec<T>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            mine.push((start, (start..end).map(f).collect::<Vec<T>>()));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(chunks) => chunks,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        // Chunks arrive in per-worker completion order; restore global
        // index order. Starts are distinct, so the sort is total.
        chunks.sort_unstable_by_key(|&(start, _)| start);
        debug_assert_eq!(chunks.iter().map(|(_, c)| c.len()).sum::<usize>(), n);
        chunks.into_iter().flat_map(|(_, c)| c).collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ThreadPool::new(0);
    }

    #[test]
    fn sequential_and_default_are_one_thread() {
        assert_eq!(ThreadPool::sequential().threads(), 1);
        assert_eq!(ThreadPool::default(), ThreadPool::sequential());
        assert!(ThreadPool::available().threads() >= 1);
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for n in [0, 1, 2, 7, 64, 1000] {
                let got = pool.map_indexed(n, |i| 3 * i + 1);
                let want: Vec<usize> = (0..n).map(|i| 3 * i + 1).collect();
                assert_eq!(got, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        // Early indices are much more expensive than late ones, so chunk
        // completion order differs wildly from index order.
        let pool = ThreadPool::new(4);
        let got = pool.map_indexed(200, |i| {
            let spins = if i < 10 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(got.len(), 200);
        for (idx, &(i, _)) in got.iter().enumerate() {
            assert_eq!(i, idx);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let pool = ThreadPool::new(16);
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn coarse_map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for n in [0, 1, 2, 7, 64] {
                let got = pool.map_indexed_coarse(n, |i| 5 * i + 2);
                let want: Vec<usize> = (0..n).map(|i| 5 * i + 2).collect();
                assert_eq!(got, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn coarse_map_runs_every_index_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let runs: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPool::new(8);
        pool.map_indexed_coarse(runs.len(), |i| runs[i].fetch_add(1, Ordering::SeqCst));
        assert!(runs.iter().all(|r| r.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.map_indexed(8, |i| {
                assert!(i != 5, "boom at 5");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn borrows_non_static_data() {
        let data = [10, 20, 30, 40];
        let pool = ThreadPool::new(2);
        let doubled = pool.map_indexed(data.len(), |i| data[i] * 2);
        assert_eq!(doubled, vec![20, 40, 60, 80]);
    }
}
